// Blast-radius analysis: after deploying an application, rank the shared
// infrastructure (power supplies, border switches, the deployment's own
// racks) by how much reliability the deployment would lose if that
// component went down — the proactive version of the paper's §1 incident
// stories (GitHub's power disruption, Azure's storage tier).
#include <chrono>
#include <cstdio>

#include "assess/criticality.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/extended_dagger.hpp"

int main() {
    using namespace recloud;

    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    const application app = application::k_of_n(3, 4);

    // Deploy with reCloud first.
    re_cloud system{infra};
    deployment_request request;
    request.app = app;
    request.desired_reliability = 1.0;
    request.max_search_time = std::chrono::seconds{3};
    const deployment_response response = system.find_deployment(request);
    std::printf("deployed 3-of-4 at reliability %.5f\n\n",
                response.stats.reliability);

    // Candidates: every power supply, every border switch, and the racks
    // hosting the plan.
    std::vector<component_id> candidates = infra.power().supplies;
    for (const node_id border : infra.topology().border_switches) {
        candidates.push_back(border);
    }
    for (const node_id host : response.plan.hosts) {
        candidates.push_back(infra.tree().edge_of_host(host));
    }

    extended_dagger_sampler sampler{infra.registry().probabilities(), 99};
    fat_tree_routing oracle{infra.tree()};
    const criticality_report report = analyze_criticality(
        sampler, &infra.forest(), infra.registry().size(), oracle, app,
        response.plan, candidates, {.rounds = 20000, .seed = 5});

    std::printf("%-28s %16s %10s\n", "component", "R | comp down", "impact");
    for (const criticality_entry& entry : report.entries) {
        std::printf("%-28s %16.5f %10.5f%s\n",
                    infra.registry().name(entry.component).c_str(),
                    entry.conditional_reliability, entry.impact,
                    entry.impact > 0.05 ? "  <-- blast radius!" : "");
    }
    std::printf("\nbaseline reliability: %.5f — components near the top are\n"
                "the shared dependencies to fix (or to avoid at deploy time).\n",
                report.baseline.reliability);
    return 0;
}
