// Dependency discovery end-to-end (§2.1, §3.2.3, §3.4): build a leaf-spine
// data center (reCloud is architecture-agnostic), acquire dependency
// information the way the paper's cited tools would —
//   * HardwareLister  -> hardware profiles & shared firmware,
//   * apt-rdepends    -> package dependency closures per host,
//   * NSDMiner        -> network service dependencies mined from traffic —
// then let reCloud search for a plan that dodges the discovered shared
// dependencies. Finishes with the §3.4 degraded mode: no probabilities at
// all, defaults only.
#include <chrono>
#include <cstdio>

#include "core/recloud.hpp"
#include "deps/hardware_inventory.hpp"
#include "deps/network_deps.hpp"
#include "deps/software_deps.hpp"
#include "routing/bfs_reachability.hpp"
#include "topology/leaf_spine.hpp"

int main() {
    using namespace recloud;

    built_topology topo = build_leaf_spine(
        {.spines = 4, .leaves = 12, .hosts_per_leaf = 8, .border_leaves = 2});
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    std::printf("infrastructure: %s, %zu hosts\n", topo.name.c_str(),
                topo.hosts.size());

    // --- dependency acquisition (simulated acquisition tools) ----------
    const hardware_inventory hardware =
        survey_hardware(topo, registry, forest, {.firmware_versions = 3});
    std::printf("HardwareLister: %zu host profiles, %zu shared firmware images\n",
                hardware.profiles.size(), hardware.firmware_components.size());

    const software_catalog catalog = generate_software_catalog(registry, {});
    const install_report installed = install_software(topo, catalog, forest);
    std::printf("apt-rdepends:   %zu packages in %zu stacks, %zu OS images\n",
                catalog.packages.size(), catalog.stacks.size(),
                catalog.os_images.size());
    (void)installed;

    const network_services services = deploy_network_services(topo, registry, {});
    const auto flows = synthesize_flows(topo, services, {});
    const auto mined = mine_dependencies(flows, 10);
    attach_mined_dependencies(mined, forest);
    std::printf("NSDMiner:       %zu flows observed -> %zu host-service "
                "dependencies mined\n",
                flows.size(), mined.size());

    // Fill in measured probabilities for everything still unknown.
    rng random{77};
    assign_paper_probabilities(registry, random);

    // --- reliable deployment search ------------------------------------
    bfs_reachability oracle{topo};
    const scenario_ptr snapshot = scenario_builder{}
                                      .topology(topo)
                                      .registry(registry)
                                      .forest(forest)
                                      .oracle(oracle)
                                      .freeze();

    recloud_options options;
    options.assessment_rounds = 5000;
    re_cloud system{snapshot, options};

    deployment_request request;
    request.app = application::k_of_n(2, 3);
    // 2-of-3 under the FULL fault model is much harsher than bare hardware:
    // an instance's chain now stacks host (1%), ToR (0.8%), firmware, OS,
    // the ~10-package software closure (CVSS-derived, up to 5% each) and
    // two network services — roughly 20% per instance. The reachable
    // ceiling for 2-of-3 is ~0.9, which is exactly the insight this
    // example surfaces: software dependencies dominate the fault model.
    request.desired_reliability = 0.90;
    request.max_search_time = std::chrono::seconds{5};
    const deployment_response response = system.find_deployment(request);
    std::printf("\nwith full dependency info: fulfilled=%s R=%.5f (+/- %.2e)\n",
                response.fulfilled ? "yes" : "no", response.stats.reliability,
                response.stats.ciw95);

    // --- §3.4: no measured probabilities, defaults only ----------------
    // Same component population (the dependency *structure* is retained),
    // but every measured probability is discarded and replaced by a flat
    // default.
    component_registry degraded = registry;
    for (component_id id = 0; id < degraded.size(); ++id) {
        degraded.set_probability(id, 0.0);
    }
    assign_default_probabilities(degraded, 0.01);
    const scenario_ptr degraded_snapshot = scenario_builder{}
                                               .topology(topo)
                                               .registry(degraded)
                                               .forest(forest)
                                               .oracle(oracle)
                                               .freeze();
    re_cloud degraded_system{degraded_snapshot, options};
    const deployment_response degraded_response =
        degraded_system.find_deployment(request);
    std::printf("degraded mode (default probabilities): fulfilled=%s R=%.5f\n",
                degraded_response.fulfilled ? "yes" : "no",
                degraded_response.stats.reliability);
    std::printf("\nreCloud still avoids shared dependencies when probabilities\n"
                "are crude — the quantitative score just loses calibration.\n");
    return 0;
}
