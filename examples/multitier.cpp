// Multi-tier application deployment (the paper's Figure 6 scenario, grown
// to three tiers): frontend servers must be reachable from the border
// switches, application servers from functional frontends, and databases
// from functional application servers.
//
// Also demonstrates comparing reCloud's plan against the enhanced common
// practice baseline on the same infrastructure.
#include <chrono>
#include <cstdio>

#include "assess/downtime.hpp"
#include "core/recloud.hpp"
#include "search/common_practice.hpp"

int main() {
    using namespace recloud;

    auto infra = fat_tree_infrastructure::build(data_center_scale::small);

    // A 3-tier application: 2-of-3 frontends, 2-of-3 app servers, 1-of-2
    // databases; each tier must reach the previous one.
    application app;
    const app_component_id frontend = app.add_component("frontend", 3);
    const app_component_id appserver = app.add_component("appserver", 3);
    const app_component_id database = app.add_component("database", 2);
    app.require_external(frontend, 2);
    app.require_reachable(appserver, frontend, 2);
    app.require_reachable(database, appserver, 1);
    app.validate();
    std::printf("application: %u instances across %zu tiers\n",
                app.total_instances(), app.components().size());

    // Baseline: enhanced common practice (least-loaded distinct racks,
    // most power-diversified of the top-5 plans).
    const deployment_plan cp = enhanced_common_practice_plan(
        infra.topology(), infra.workloads(), infra.power(),
        app.total_instances());

    recloud_options options;
    options.multi_objective = true;  // balance reliability and host load
    re_cloud system{infra, options};

    const assessment_stats cp_stats = system.assess(app, cp);
    std::printf("\n[common practice]  R=%.5f (%.1f h/yr)  avg load=%.3f\n",
                cp_stats.reliability, annual_downtime_hours(cp_stats.reliability),
                infra.workloads().average(cp.hosts));

    deployment_request request;
    request.app = app;
    request.desired_reliability = 1.0;  // run the full budget
    request.max_search_time = std::chrono::seconds{5};
    const deployment_response response = system.find_deployment(request);
    std::printf("[reCloud]          R=%.5f (%.1f h/yr)  avg load=%.3f\n",
                response.stats.reliability,
                annual_downtime_hours(response.stats.reliability),
                infra.workloads().average(response.plan.hosts));

    const double cp_unrel = 1.0 - cp_stats.reliability;
    const double rc_unrel = 1.0 - response.stats.reliability;
    if (rc_unrel > 0.0) {
        std::printf("\nunreliability improvement: %.1fx\n", cp_unrel / rc_unrel);
    }

    std::printf("\nper-tier placement:\n");
    for (app_component_id c = 0; c < app.components().size(); ++c) {
        std::printf("  %-10s ->", app.components()[c].name.c_str());
        for (const node_id host : instances_of(response.plan, app, c)) {
            std::printf(" host#%u(pod %d)", host, infra.tree().pod_of_host(host));
        }
        std::printf("\n");
    }
    return 0;
}
