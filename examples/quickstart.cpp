// Quickstart: deploy a 4-of-5 redundant application into a small fat-tree
// data center and let reCloud find a reliable placement.
//
//   $ ./quickstart
//
// Walks through the paper's §2.2 workflow: build the provider-side
// infrastructure, state the developer's requirements (N, K, R_desired,
// Tmax), search, and read the quantitative assessment (reliability score
// with a rigorous 95% error bound).
#include <chrono>
#include <cstdio>

#include "assess/downtime.hpp"
#include "core/recloud.hpp"

int main() {
    using namespace recloud;

    // 1. The cloud provider's infrastructure: a k=16 fat-tree (960 hosts)
    //    with 5 shared power supplies and the paper's failure-probability
    //    setting (switches ~N(0.008, 0.001), everything else ~N(0.01, 0.001)).
    auto infra = fat_tree_infrastructure::build(data_center_scale::small);
    std::printf("infrastructure: %s, %zu hosts, %zu components\n",
                infra.topology().name.c_str(), infra.topology().hosts.size(),
                infra.registry().size());

    // 2. The developer's requirements: 5 instances, at least 4 alive,
    //    within ~160 hours/year of downtime, at most 5 seconds of search.
    //    (With this fault model an instance's full chain — host, rack power
    //    supply, ToR switch, ToR power supply — fails ~3.8% of the time, so
    //    the independent 4-of-5 floor sits near 98.7%; a 10^4-round
    //    assessment carries ~±40 h/yr of noise, so leave the target some
    //    headroom above the floor.)
    deployment_request request;
    request.app = application::k_of_n(/*k=*/4, /*n=*/5);
    request.desired_reliability = reliability_for_downtime(/*hours=*/160);
    request.max_search_time = std::chrono::seconds{5};

    // 3. Run the search (extended dagger sampling, 10^4 rounds per
    //    candidate plan, network-transformation symmetry pruning).
    re_cloud system{infra};
    const deployment_response response = system.find_deployment(request);

    // 4. Read the result.
    std::printf("fulfilled: %s\n", response.fulfilled ? "yes" : "no");
    std::printf("deployment plan hosts:");
    for (const node_id host : response.plan.hosts) {
        std::printf(" %u", host);
    }
    std::printf("\nreliability: %.5f  (95%% CI width %.2e)\n",
                response.stats.reliability, response.stats.ciw95);
    std::printf("implied annual downtime: %.1f hours\n",
                annual_downtime_hours(response.stats.reliability));
    std::printf("search: %zu plans generated, %zu assessed, %zu skipped as "
                "symmetric, %.2f s\n",
                response.search.plans_generated, response.search.plans_evaluated,
                response.search.symmetric_skips, response.search.elapsed_seconds);
    return response.fulfilled ? 0 : 1;
}
