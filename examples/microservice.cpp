// Microservices deployment (§3.2.4, §4.2.3): an "X-Y" structured
// application — X fully-meshed core services, each with Y supporting
// services — deployed with per-component redundancy. Demonstrates that
// reCloud handles applications with tens of components and complex
// communication patterns.
#include <chrono>
#include <cstdio>

#include "assess/downtime.hpp"
#include "core/recloud.hpp"

int main() {
    using namespace recloud;

    auto infra = fat_tree_infrastructure::build(data_center_scale::small);

    // A "3-5" microservice app with 2-of-3 redundancy per component:
    // 3 cores + 15 supports = 18 components, 54 instances.
    const application app = application::microservice(
        /*cores=*/3, /*supports=*/5, /*k=*/2, /*n=*/3);
    std::printf("microservice app: %zu components, %u instances, %zu "
                "reachability requirements\n",
                app.components().size(), app.total_instances(),
                app.requirements().size());

    recloud_options options;
    options.assessment_rounds = 10000;
    re_cloud system{infra, options};

    deployment_request request;
    request.app = app;
    // 18 components each needing 2-of-3 alive, with ~3.8% per-instance
    // failure chains, floors overall reliability near (1-3q^2)^18 ~ 0.93;
    // target just below the floor to absorb the ±0.01 assessment noise.
    request.desired_reliability = 0.915;
    request.max_search_time = std::chrono::seconds{10};
    const deployment_response response = system.find_deployment(request);

    std::printf("fulfilled: %s\n", response.fulfilled ? "yes" : "no");
    std::printf("reliability: %.5f (+/- %.2e), %.1f hours/year downtime\n",
                response.stats.reliability, response.stats.ciw95,
                annual_downtime_hours(response.stats.reliability));
    std::printf("search: %zu plans assessed in %.2f s\n",
                response.search.plans_evaluated,
                response.search.elapsed_seconds);

    // How spread out did the mesh cores end up?
    std::printf("\ncore placement (pods):");
    for (app_component_id c = 0; c < 3; ++c) {
        std::printf(" %s[", app.components()[c].name.c_str());
        for (const node_id host : instances_of(response.plan, app, c)) {
            std::printf(" %d", infra.tree().pod_of_host(host));
        }
        std::printf(" ]");
    }
    std::printf("\n");
    return response.fulfilled ? 0 : 1;
}
