// Adaptive re-deployment (§3.3.3, §6): reCloud's 30-second search makes it
// feasible to "periodically recalculate the deployment of an existing
// application to adapt to varying system conditions during service time".
//
// This example simulates several epochs of shifting host workloads and
// component failure probabilities (bathtub-curve aging) and re-runs the
// multi-objective search each epoch, reporting how the chosen plan and its
// score track the changing conditions.
#include <chrono>
#include <cstdio>

#include "core/recloud.hpp"
#include "faults/probability_model.hpp"

int main() {
    using namespace recloud;

    auto infra = fat_tree_infrastructure::build(data_center_scale::tiny);
    const application app = application::k_of_n(2, 3);

    rng epoch_rng{2024};
    deployment_plan previous;
    for (int epoch = 0; epoch < 4; ++epoch) {
        // Conditions drift: workloads are re-measured, and hardware ages
        // along the bathtub curve (probabilities grow with life fraction).
        infra.workloads().refresh(epoch_rng);
        if (epoch > 0) {
            const double life = 0.5 + 0.15 * epoch;  // marching to wear-out
            for (const node_id host : infra.topology().hosts) {
                const double base = infra.registry().probability(host);
                infra.registry().set_probability(
                    host, bathtub_adjusted_probability(base, life));
            }
        }

        recloud_options options;
        options.multi_objective = true;
        options.assessment_rounds = 5000;
        options.seed = 100 + static_cast<std::uint64_t>(epoch);
        re_cloud system{infra, options};

        deployment_request request;
        request.app = app;
        request.desired_reliability = 1.0;
        request.max_search_time = std::chrono::seconds{2};
        const deployment_response response = system.find_deployment(request);

        int moved = 0;
        if (!previous.hosts.empty()) {
            for (std::size_t i = 0; i < response.plan.hosts.size(); ++i) {
                moved += response.plan.hosts[i] != previous.hosts[i] ? 1 : 0;
            }
        }
        std::printf(
            "epoch %d: R=%.5f  utility=%.3f  holistic=%.4f  plans=%zu  "
            "%s%d instance(s) moved\n",
            epoch, response.stats.reliability, response.utility, response.score,
            response.search.plans_evaluated, epoch == 0 ? "initial; " : "",
            moved);
        previous = response.plan;
    }
    std::printf("\nreCloud re-optimizes placement as workloads shift and\n"
                "hardware ages, at a per-epoch cost of seconds.\n");
    return 0;
}
