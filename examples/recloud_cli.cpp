// recloud_cli — scenario-driven command line front end.
//
//   $ ./recloud_cli scenario.conf
//   $ ./recloud_cli --sample-config > scenario.conf
//
// Reads an INI-style scenario (data center, application structure, search
// parameters), runs the reCloud workflow, and prints the resulting plan
// with its quantitative assessment. Demonstrates how a deployment pipeline
// would embed the library without writing C++ per scenario.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "assess/downtime.hpp"
#include "core/recloud.hpp"
#include "service/deployment_service.hpp"
#include "exec/engine.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "routing/bfs_reachability.hpp"
#include "topology/bcube.hpp"
#include "topology/jellyfish.hpp"
#include "topology/leaf_spine.hpp"
#include "topology/vl2.hpp"
#include "report/report.hpp"
#include "util/config.hpp"

namespace {

using namespace recloud;

constexpr const char* sample_config = R"(# reCloud scenario
[datacenter]
topology = fat-tree       # fat-tree | leaf-spine | vl2 | jellyfish | bcube
scale = small             # fat-tree presets: tiny | small | medium | large
power_supplies = 5
model_links = false
seed = 42

[application]
structure = k-of-n        # k-of-n | layered | microservice
k = 4
n = 5
layers = 2                # layered only
cores = 3                 # microservice only
supports = 5              # microservice only

[search]
max_seconds = 5
desired_downtime_hours = 160
rounds = 10000
sampler = dagger          # dagger | monte-carlo | antithetic
backend = serial          # serial | parallel | engine (assessment execution)
threads = 0               # parallel/engine workers; 0 = all hardware threads
max_attempts = 3          # engine only: dispatch attempts per batch before
                          # degrading to master-local route-and-check
deadline_ms = 0           # engine only: per-attempt result deadline; 0 = none
transport = loopback      # engine only: loopback | socket (real recloud_worker
                          # processes; bit-identical results, master respawns
                          # crashed workers)
worker_binary =           # socket transport: worker executable; empty =
                          # $RECLOUD_WORKER_BIN, then next to this binary, then PATH
max_respawns = 16         # socket transport: respawn budget per worker slot
verdict_cache = true      # memoize round verdicts (bit-identical results)
incremental = true        # cross-plan verdict reuse + CRN journal replay
                          # (bit-identical results; needs verdict_cache)
multi_objective = false
symmetry = true
seed = 1
chains = 1                # K independent annealing chains; best plan wins
chain_threads = 0         # threads running chains; 0 = all hardware threads
                          # (the result is bit-identical for any value)
max_iterations = 0        # finite iteration budget; 0 = time-driven only
deterministic = false     # iteration-driven schedule: reruns are bit-identical
                          # (requires max_iterations > 0)

[service]
requests = 0              # > 0: replay the request N times (seeds seed..seed+N-1)
                          # through the concurrent deployment service instead of
                          # one inline search
workers = 2               # concurrent searches per shard
queue_capacity = 64       # admission bound per shard; overflow sheds as `rejected`
shards = 1                # independent queue+worker shards; a scenario's requests
                          # always land on hash(scenario) % shards
tenant_quota = 0          # max in-flight requests per tenant; 0 = unlimited
scheduling = edf          # edf | fifo: deadline-ordered admission with shedding
                          # and cooperative preemption, or strict arrival order
                          # (fifo still measures deadline hits, never enforces)
slo_deadline_ms = 0       # per-request SLO deadline over the whole lifecycle
                          # (queue wait + search + response); 0 = none — the
                          # request is never shed or preempted
min_grant_ms = 0          # admission floor: shed a deadline request that cannot
                          # get at least this much search time before its
                          # deadline; 0 disables admission-time shedding
headroom_ms = 0           # slice of the deadline reserved for response assembly
                          # when arming the search's run budget

[observability]
metrics = true            # metrics registry (counters/gauges/histograms)
trace = false             # scoped-span capture; view at https://ui.perfetto.dev
trace_path = trace.json   # Chrome trace-event JSON, written when tracing is on
# timeline = timeline.jsonl # per-iteration search timeline (JSONL; empty = off)
heartbeat_ms = 1000       # timeline progress heartbeat; 0 disables it
# admin_socket = /tmp/recloud-admin.sock # live introspection endpoint for
                          # [service] runs: HTTP over a Unix socket serving
                          # /metrics (Prometheus), /status, /healthz, /trace
                          #   curl --unix-socket <path> http://localhost/metrics
# RECLOUD_TRACE=1 forces tracing on (0/off/false force it off) and
# RECLOUD_TRACE_PATH overrides trace_path, both without editing this file.

[output]
# json = result.json        # machine-readable deployment report
# trace_csv = trace.csv     # best-score improvements over time
)";

/// Everything the [observability] section switched on for this run.
struct observability_session {
    bool trace = false;
    std::string trace_path;
    std::string timeline_path;
    std::unique_ptr<obs::search_timeline> timeline;
};

observability_session setup_observability(const config& cfg) {
    observability_session session;
    obs::metrics_registry::global().set_enabled(
        cfg.get_bool("observability.metrics", true));
    session.trace = cfg.get_bool("observability.trace", false);
    const int forced = obs::trace_env_override();
    if (forced >= 0) {
        session.trace = forced != 0;
    }
    session.trace_path = obs::trace_env_path(
        cfg.get_string("observability.trace_path", "trace.json"));
    if (session.trace) {
        obs::tracer::global().start();
    }
    session.timeline_path = cfg.get_string("observability.timeline", "");
    if (!session.timeline_path.empty()) {
        session.timeline = std::make_unique<obs::search_timeline>(
            session.timeline_path,
            std::chrono::milliseconds{static_cast<std::int64_t>(
                cfg.get_uint("observability.heartbeat_ms", 1000))});
    }
    return session;
}

/// Stops the capture and writes the artifacts the session asked for.
void finish_observability(observability_session& session) {
    if (session.trace) {
        obs::tracer& tracer = obs::tracer::global();
        tracer.stop();
        if (tracer.export_to_file(session.trace_path)) {
            std::printf("wrote trace to %s (%llu spans, %llu dropped)\n",
                        session.trace_path.c_str(),
                        static_cast<unsigned long long>(tracer.captured()),
                        static_cast<unsigned long long>(tracer.dropped()));
        } else {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         session.trace_path.c_str());
        }
    }
    if (session.timeline != nullptr) {
        std::printf("wrote search timeline to %s (%llu records)\n",
                    session.timeline_path.c_str(),
                    static_cast<unsigned long long>(session.timeline->records()));
    }
}

application build_application(const config& cfg) {
    const std::string structure =
        cfg.get_string("application.structure", "k-of-n");
    const auto k = static_cast<std::uint32_t>(cfg.get_int("application.k", 4));
    const auto n = static_cast<std::uint32_t>(cfg.get_int("application.n", 5));
    if (structure == "k-of-n") {
        return application::k_of_n(k, n);
    }
    if (structure == "layered") {
        return application::layered(
            static_cast<std::uint32_t>(cfg.get_int("application.layers", 2)), k, n);
    }
    if (structure == "microservice") {
        return application::microservice(
            static_cast<std::uint32_t>(cfg.get_int("application.cores", 3)),
            static_cast<std::uint32_t>(cfg.get_int("application.supports", 5)), k,
            n);
    }
    throw config_error{"unknown application.structure: " + structure};
}

assessment_backend_kind parse_backend(const std::string& name) {
    if (name == "serial") {
        return assessment_backend_kind::serial;
    }
    if (name == "parallel") {
        return assessment_backend_kind::parallel;
    }
    if (name == "engine") {
        return assessment_backend_kind::engine;
    }
    throw config_error{"unknown search.backend: " + name};
}

engine_transport_kind parse_transport(const std::string& name) {
    if (name == "loopback") {
        return engine_transport_kind::loopback;
    }
    if (name == "socket") {
        return engine_transport_kind::socket;
    }
    throw config_error{"unknown search.transport: " + name};
}

sampler_kind parse_sampler(const std::string& name) {
    if (name == "dagger") {
        return sampler_kind::extended_dagger;
    }
    if (name == "monte-carlo") {
        return sampler_kind::monte_carlo;
    }
    if (name == "antithetic") {
        return sampler_kind::antithetic;
    }
    throw config_error{"unknown search.sampler: " + name};
}

recloud_options build_options(const config& cfg,
                              const observability_session& session) {
    recloud_options options;
    if (session.timeline != nullptr) {
        obs::search_timeline* timeline = session.timeline.get();
        options.observer = [timeline](const obs::search_iteration_event& event) {
            timeline->on_event(event);
        };
    }
    options.assessment_rounds =
        static_cast<std::size_t>(cfg.get_uint("search.rounds", 10000));
    options.sampler = parse_sampler(cfg.get_string("search.sampler", "dagger"));
    options.backend = parse_backend(cfg.get_string("search.backend", "serial"));
    options.assessment_threads =
        static_cast<std::size_t>(cfg.get_uint("search.threads", 0));
    options.engine_max_attempts =
        static_cast<std::size_t>(cfg.get_uint("search.max_attempts", 3));
    options.engine_batch_deadline = std::chrono::milliseconds{
        static_cast<std::int64_t>(cfg.get_uint("search.deadline_ms", 0))};
    options.engine_transport =
        parse_transport(cfg.get_string("search.transport", "loopback"));
    options.engine_worker_binary = cfg.get_string("search.worker_binary", "");
    options.engine_max_respawns =
        static_cast<std::size_t>(cfg.get_uint("search.max_respawns", 16));
    options.verdict_cache = cfg.get_bool("search.verdict_cache", true);
    options.incremental = cfg.get_bool("search.incremental", true);
    options.multi_objective = cfg.get_bool("search.multi_objective", false);
    options.use_symmetry = cfg.get_bool("search.symmetry", true);
    options.seed = cfg.get_uint("search.seed", 1);
    options.search_chains = static_cast<std::size_t>(
        cfg.get_uint("search.chains", 1));
    options.search_threads = static_cast<std::size_t>(
        cfg.get_uint("search.chain_threads", 0));
    const auto iterations =
        static_cast<std::size_t>(cfg.get_uint("search.max_iterations", 0));
    if (iterations > 0) {
        options.max_iterations = iterations;
    }
    options.deterministic_schedule = cfg.get_bool("search.deterministic", false);
    options.record_trace = !cfg.get_string("output.trace_csv", "").empty();
    return options;
}

deployment_request build_request(const config& cfg, application app) {
    deployment_request request;
    request.app = std::move(app);
    request.desired_reliability = reliability_for_downtime(
        cfg.get_double("search.desired_downtime_hours", 130.0));
    request.max_search_time = std::chrono::milliseconds{static_cast<long long>(
        cfg.get_double("search.max_seconds", 5.0) * 1000.0)};
    return request;
}

void write_outputs(const config& cfg, const deployment_response& response,
                   const component_registry& registry,
                   const obs::telemetry_snapshot& telemetry) {
    const std::string json_path = cfg.get_string("output.json", "");
    if (!json_path.empty()) {
        std::FILE* out = std::fopen(json_path.c_str(), "w");
        if (out == nullptr) {
            throw config_error{"cannot write " + json_path};
        }
        const std::string json = to_json(response, &registry, &telemetry);
        std::fwrite(json.data(), 1, json.size(), out);
        std::fputc('\n', out);
        std::fclose(out);
        std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    const std::string csv_path = cfg.get_string("output.trace_csv", "");
    if (!csv_path.empty()) {
        std::FILE* out = std::fopen(csv_path.c_str(), "w");
        if (out == nullptr) {
            throw config_error{"cannot write " + csv_path};
        }
        const std::string csv = trace_to_csv(response.search);
        std::fwrite(csv.data(), 1, csv.size(), out);
        std::fclose(out);
        std::printf("wrote search trace to %s\n", csv_path.c_str());
    }
}

void report(const deployment_response& response, const built_topology& topo,
            const engine_stats* engine, const verdict_cache_stats* cache,
            std::size_t chains = 1) {
    std::printf("fulfilled:        %s\n", response.fulfilled ? "yes" : "no");
    std::printf("outcome:          %s\n", to_string(response.outcome));
    std::printf("reliability:      %.5f (95%% CI width %.2e)\n",
                response.stats.reliability, response.stats.ciw95);
    std::printf("annual downtime:  %.1f hours\n",
                annual_downtime_hours(response.stats.reliability));
    std::printf("plans: generated=%zu assessed=%zu symmetric-skips=%zu in %.2fs\n",
                response.search.plans_generated, response.search.plans_evaluated,
                response.search.symmetric_skips, response.search.elapsed_seconds);
    if (chains > 1) {
        std::printf("winning chain:    %u of %zu\n", response.winning_chain,
                    chains);
    }
    if (engine != nullptr) {
        std::printf("engine: batches=%llu dispatches=%llu retries=%llu "
                    "re-dispatches=%llu degraded=%llu failures=%llu\n",
                    static_cast<unsigned long long>(engine->batches),
                    static_cast<unsigned long long>(engine->dispatches),
                    static_cast<unsigned long long>(engine->retries),
                    static_cast<unsigned long long>(engine->redispatches),
                    static_cast<unsigned long long>(engine->degraded),
                    static_cast<unsigned long long>(engine->failures()));
        std::printf("engine: sent=%.1f MiB received=%.1f MiB\n",
                    static_cast<double>(engine->bytes_sent) / (1024.0 * 1024.0),
                    static_cast<double>(engine->bytes_received) /
                        (1024.0 * 1024.0));
    }
    if (cache != nullptr) {
        std::printf("verdict cache: hit-rate=%.1f%% (empty=%llu signature=%llu "
                    "of %llu rounds) support=%llu evictions=%llu\n",
                    cache->hit_rate() * 100.0,
                    static_cast<unsigned long long>(cache->empty_hits),
                    static_cast<unsigned long long>(cache->hits),
                    static_cast<unsigned long long>(cache->rounds),
                    static_cast<unsigned long long>(cache->support_size),
                    static_cast<unsigned long long>(cache->evictions));
        if (cache->warm_rebinds > 0) {
            std::printf(
                "  cross-plan: warm=%llu cold=%llu retained=%llu hits=%llu\n",
                static_cast<unsigned long long>(cache->warm_rebinds),
                static_cast<unsigned long long>(cache->cold_rebinds),
                static_cast<unsigned long long>(cache->retained_entries),
                static_cast<unsigned long long>(cache->cross_plan_hits));
        }
    }
    std::printf("placement:\n");
    for (const node_id host : response.plan.hosts) {
        std::printf("  host#%-6u rack=switch#%u\n", host,
                    rack_of(topo.graph, host));
    }
}

/// [service] replay: N developer requests (seeds seed..seed+N-1) race
/// through the bounded-queue deployment service against ONE shared
/// snapshot. Exit 0 iff every request completed with R_desired fulfilled.
int run_service(const config& cfg, const application& app,
                const scenario_ptr& snapshot, recloud_options options,
                const deployment_request& request) {
    const auto count =
        static_cast<std::size_t>(cfg.get_uint("service.requests", 0));
    if (options.observer) {
        // The CLI timeline writer is single-threaded; several request
        // searches share it, so serialize delivery.
        auto gate = std::make_shared<std::mutex>();
        options.observer = [gate, observer = options.observer](
                               const obs::search_iteration_event& event) {
            const std::lock_guard<std::mutex> lock{*gate};
            observer(event);
        };
    }
    service_options service_cfg;
    service_cfg.workers =
        static_cast<std::size_t>(cfg.get_uint("service.workers", 2));
    service_cfg.queue_capacity =
        static_cast<std::size_t>(cfg.get_uint("service.queue_capacity", 64));
    service_cfg.shards =
        static_cast<std::size_t>(cfg.get_uint("service.shards", 1));
    service_cfg.tenant_quota =
        static_cast<std::size_t>(cfg.get_uint("service.tenant_quota", 0));
    const std::string scheduling =
        cfg.get_string("service.scheduling", "edf");
    if (scheduling == "fifo") {
        service_cfg.scheduling = scheduling_policy::fifo;
    } else if (scheduling == "edf") {
        service_cfg.scheduling = scheduling_policy::edf;
    } else {
        throw config_error{"unknown service.scheduling: " + scheduling};
    }
    service_cfg.min_service_grant = std::chrono::milliseconds{
        static_cast<std::int64_t>(cfg.get_uint("service.min_grant_ms", 0))};
    service_cfg.deadline_headroom = std::chrono::milliseconds{
        static_cast<std::int64_t>(cfg.get_uint("service.headroom_ms", 0))};
    const std::chrono::milliseconds slo_deadline{
        static_cast<std::int64_t>(cfg.get_uint("service.slo_deadline_ms", 0))};
    service_cfg.admin_socket =
        cfg.get_string("observability.admin_socket", "");
    service_cfg.defaults = options;
    deployment_service service{service_cfg};
    service.add_scenario(snapshot->name(), snapshot);
    std::printf(
        "service:          %zu requests on %zu shard(s) x %zu workers "
        "(queue %zu/shard, tenant quota %zu)\n",
        count, service_cfg.shards, service_cfg.workers,
        service_cfg.queue_capacity, service_cfg.tenant_quota);
    if (!service_cfg.admin_socket.empty()) {
        std::printf(
            "admin endpoint:   %s (/metrics /status /healthz /trace)\n",
            service_cfg.admin_socket.c_str());
    }

    std::vector<std::future<service_response>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        service_request pending;
        pending.scenario = snapshot->name();
        pending.app = app;
        pending.desired_reliability = request.desired_reliability;
        pending.max_search_time = request.max_search_time;
        pending.slo_deadline = slo_deadline;
        pending.seed = options.seed + i;
        futures.push_back(service.submit(std::move(pending)));
    }
    std::size_t fulfilled = 0;
    bool all_completed = true;
    for (auto& future : futures) {
        const service_response response = future.get();
        if (response.status == request_status::completed) {
            std::printf(
                "  request#%-4llu %-9s R=%.5f outcome=%-17s chain=%u\n",
                static_cast<unsigned long long>(response.request_id),
                to_string(response.status),
                response.result.stats.reliability,
                to_string(response.result.outcome),
                response.result.winning_chain);
            fulfilled += response.result.fulfilled ? 1 : 0;
        } else {
            all_completed = false;
            std::printf("  request#%-4llu %-9s %s\n",
                        static_cast<unsigned long long>(response.request_id),
                        to_string(response.status), response.error.c_str());
        }
    }
    const service_stats stats = service.stats();
    std::printf("service: submitted=%llu completed=%llu rejected=%llu "
                "(queue_full=%llu quota=%llu) failed=%llu peak-queue=%zu\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.shed_queue_full),
                static_cast<unsigned long long>(stats.shed_quota),
                static_cast<unsigned long long>(stats.failed),
                stats.peak_queue_depth);
    if (slo_deadline.count() > 0) {
        std::printf("service: deadlines met=%llu missed=%llu "
                    "shed-unmeetable=%llu preempted=%llu\n",
                    static_cast<unsigned long long>(stats.deadline_met),
                    static_cast<unsigned long long>(stats.deadline_missed),
                    static_cast<unsigned long long>(stats.shed_unmeetable),
                    static_cast<unsigned long long>(stats.preempted));
    }
    return all_completed && fulfilled == count ? 0 : 2;
}

int run_fat_tree(const config& cfg, const application& app,
                 const observability_session& session) {
    infrastructure_options infra_options;
    infra_options.power.supply_count = static_cast<std::size_t>(
        cfg.get_int("datacenter.power_supplies", 5));
    infra_options.model_link_failures =
        cfg.get_bool("datacenter.model_links", false);
    infra_options.seed =
        static_cast<std::uint64_t>(cfg.get_int("datacenter.seed", 42));

    const std::string scale = cfg.get_string("datacenter.scale", "small");
    fat_tree_infrastructure infra = [&] {
        if (scale == "tiny") {
            return fat_tree_infrastructure::build(data_center_scale::tiny,
                                                  infra_options);
        }
        if (scale == "small") {
            return fat_tree_infrastructure::build(data_center_scale::small,
                                                  infra_options);
        }
        if (scale == "medium") {
            return fat_tree_infrastructure::build(data_center_scale::medium,
                                                  infra_options);
        }
        if (scale == "large") {
            return fat_tree_infrastructure::build(data_center_scale::large,
                                                  infra_options);
        }
        return fat_tree_infrastructure::build(
            static_cast<int>(cfg.get_int("datacenter.k", 8)), infra_options);
    }();
    std::printf("infrastructure:   %s (%zu hosts, %zu components)\n",
                infra.topology().name.c_str(), infra.topology().hosts.size(),
                infra.registry().size());

    const scenario_ptr snapshot = make_fat_tree_scenario(infra);
    const recloud_options options = build_options(cfg, session);
    const deployment_request request = build_request(cfg, app);
    if (cfg.get_uint("service.requests", 0) > 0) {
        return run_service(cfg, app, snapshot, options, request);
    }
    re_cloud system{snapshot, options};
    std::printf("assessment:       %s backend\n", system.backend().name());
    const deployment_response response = system.find_deployment(request);
    report(response, infra.topology(), system.execution_stats(),
           system.cache_stats(), options.search_chains);
    write_outputs(cfg, response, infra.registry(), system.telemetry());
    return response.fulfilled ? 0 : 2;
}

int run_generic(const config& cfg, const application& app, built_topology topo,
                const observability_session& session) {
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    const power_assignment power = attach_power_supplies(
        topo, registry, forest,
        {.supply_count = static_cast<std::size_t>(
             cfg.get_int("datacenter.power_supplies", 5))});
    (void)power;
    std::optional<link_attachment> links;
    if (cfg.get_bool("datacenter.model_links", false)) {
        links = attach_link_components(topo, registry);
    }
    rng random{static_cast<std::uint64_t>(cfg.get_int("datacenter.seed", 42))};
    assign_paper_probabilities(registry, random);
    workload_map workloads{topo, random};
    bfs_reachability oracle{topo, links ? &*links : nullptr};

    scenario_builder builder;
    builder.topology(topo).registry(registry).forest(forest).oracle(oracle)
        .workloads(workloads);
    if (links) {
        builder.links(*links);
    }
    const scenario_ptr snapshot = builder.freeze();

    std::printf("infrastructure:   %s (%zu hosts, %zu components)\n",
                topo.name.c_str(), topo.hosts.size(), registry.size());
    const recloud_options options = build_options(cfg, session);
    const deployment_request request = build_request(cfg, app);
    if (cfg.get_uint("service.requests", 0) > 0) {
        return run_service(cfg, app, snapshot, options, request);
    }
    re_cloud system{snapshot, options};
    std::printf("assessment:       %s backend\n", system.backend().name());
    const deployment_response response = system.find_deployment(request);
    report(response, topo, system.execution_stats(), system.cache_stats(),
           options.search_chains);
    write_outputs(cfg, response, registry, system.telemetry());
    return response.fulfilled ? 0 : 2;
}

int dispatch_scenario(const config& cfg, const application& app,
                      const observability_session& session) {
    const std::string topology =
        cfg.get_string("datacenter.topology", "fat-tree");
    if (topology == "fat-tree") {
        return run_fat_tree(cfg, app, session);
    }
    if (topology == "leaf-spine") {
        return run_generic(cfg, app, build_leaf_spine({}), session);
    }
    if (topology == "vl2") {
        return run_generic(cfg, app, build_vl2({}), session);
    }
    if (topology == "jellyfish") {
        return run_generic(cfg, app,
                           build_jellyfish({.switches = 24, .degree = 6,
                                            .hosts_per_switch = 4,
                                            .border_switches = 2}),
                           session);
    }
    if (topology == "bcube") {
        return run_generic(cfg, app, build_bcube({.ports = 4, .levels = 2}),
                           session);
    }
    throw config_error{"unknown datacenter.topology: " + topology};
}

int run_scenario(const config& cfg) {
    std::printf("%s\n", build_info_banner().c_str());
    const application app = build_application(cfg);
    observability_session session = setup_observability(cfg);
    const int code = dispatch_scenario(cfg, app, session);
    finish_observability(session);
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc == 2 && std::strcmp(argv[1], "--sample-config") == 0) {
        std::fputs(sample_config, stdout);
        return 0;
    }
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: %s <scenario.conf>\n"
                     "       %s --sample-config   # print a template\n",
                     argv[0], argv[0]);
        return 64;
    }
    try {
        return run_scenario(recloud::config::parse_file(argv[1]));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
