// Multi-chain annealing: wall-clock vs chain count, and best reliability vs
// search budget (§3.3 restarts over one immutable scenario snapshot).
//
// Two series, both recorded into BENCH_multi_chain.json:
//   * chains-vs-wallclock — K chains on 1 thread vs K threads. On a
//     multi-core host the K-thread row approaches the 1-chain wall-clock;
//     on a 1-core container (the CI box) both rows cost ~K single-chain
//     runs and the table mostly measures coordination overhead.
//   * best-R-vs-budget — at a fixed per-chain iteration budget, K parallel
//     trajectories explore more of the plan space than one; with CRN the
//     inter-chain comparison is noise-free, so best R is monotone in K.
// The determinism contract is asserted live: every (K, threads) cell must
// reproduce the threads=1 result bit-for-bit or the bench exits non-zero.
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"

namespace {

using namespace recloud;

struct cell {
    std::size_t chains = 0;
    std::size_t threads = 0;
    double ms = 0.0;
    double reliability = 0.0;
    double best_score = 0.0;
    std::uint32_t winning_chain = 0;
    std::size_t plans_evaluated = 0;
};

deployment_response run_search(const scenario_ptr& snapshot, std::size_t chains,
                               std::size_t threads, std::size_t iterations,
                               std::size_t rounds) {
    recloud_options options;
    options.assessment_rounds = rounds;
    options.max_iterations = iterations;
    options.deterministic_schedule = true;
    options.search_chains = chains;
    options.search_threads = threads;
    options.seed = 29;
    re_cloud system{snapshot, options};
    deployment_request request;
    request.app = application::k_of_n(4, 5);
    request.desired_reliability = 1.0;  // unreachable: the full budget runs
    request.max_search_time = std::chrono::minutes{10};
    return system.find_deployment(request);
}

bool same_response(const deployment_response& a, const deployment_response& b) {
    return a.plan.hosts == b.plan.hosts && a.stats.reliable == b.stats.reliable &&
           a.winning_chain == b.winning_chain &&
           a.search.plans_evaluated == b.search.plans_evaluated;
}

std::string iso_now() {
    char buffer[32];
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    std::strftime(buffer, sizeof buffer, "%FT%TZ", &utc);
    return buffer;
}

}  // namespace

int main() {
    bench::print_header("Multi-chain annealing: wall-clock and best-R scaling",
                        "§3.3 search restarts (multi-chain extension)");

    const unsigned cores = std::thread::hardware_concurrency();
    const std::size_t iterations = bench::full_scale() ? 200 : 60;
    const std::size_t rounds = bench::full_scale() ? 10'000 : 2'000;
    const scenario_ptr snapshot = make_fat_tree_scenario(
        bench::full_scale() ? data_center_scale::medium
                            : data_center_scale::small);
    std::printf("data center: %s, cores: %u, per-chain budget: %zu iterations "
                "x %zu rounds\n",
                snapshot->name().c_str(), cores, iterations, rounds);
    if (cores < 2) {
        std::printf("NOTE: 1-core container — K chains on K threads cannot run\n"
                    "      concurrently, so the threaded rows measure scheduling\n"
                    "      overhead, not speedup. The determinism assert is\n"
                    "      unaffected (results never depend on the thread count).\n");
    }

    // --- chains vs wall-clock -------------------------------------------
    std::printf("\n%-8s %-8s %12s %12s   R (final)\n", "chains", "threads",
                "time (ms)", "vs 1-chain");
    std::vector<cell> wallclock;
    double single_chain_ms = 0.0;
    for (const std::size_t chains : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
        deployment_response reference;
        for (const std::size_t threads : {std::size_t{1}, chains}) {
            deployment_response response;
            const double ms = bench::time_ms([&] {
                response = run_search(snapshot, chains, threads, iterations,
                                      rounds);
            });
            if (threads == 1) {
                reference = response;
                if (chains == 1) {
                    single_chain_ms = ms;
                }
            } else if (!same_response(response, reference)) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: %zu chains on %zu threads "
                             "diverged from the single-threaded run\n",
                             chains, threads);
                return 1;
            }
            cell c;
            c.chains = chains;
            c.threads = threads;
            c.ms = ms;
            c.reliability = response.stats.reliability;
            c.best_score = response.search.best_evaluation.score;
            c.winning_chain = response.winning_chain;
            c.plans_evaluated = response.search.plans_evaluated;
            wallclock.push_back(c);
            std::printf("%-8zu %-8zu %12.1f %11.2fx   %.5f\n", chains, threads,
                        ms, single_chain_ms > 0.0 ? ms / single_chain_ms : 1.0,
                        response.stats.reliability);
            if (threads == chains) {
                break;  // chains == 1: the two rows coincide
            }
        }
    }

    // --- best R vs per-chain budget --------------------------------------
    std::printf("\n%-12s %-8s %14s %14s   winning chain\n", "iterations",
                "chains", "best score", "R (final)");
    std::vector<cell> budget_series;
    for (const std::size_t budget :
         {iterations / 3, 2 * iterations / 3, iterations}) {
        for (const std::size_t chains : {std::size_t{1}, std::size_t{4}}) {
            const deployment_response response =
                run_search(snapshot, chains, 1, budget, rounds);
            cell c;
            c.chains = chains;
            c.threads = 1;
            c.ms = static_cast<double>(budget);  // budget stored in ms slot
            c.reliability = response.stats.reliability;
            c.best_score = response.search.best_evaluation.score;
            c.winning_chain = response.winning_chain;
            c.plans_evaluated = response.search.plans_evaluated;
            budget_series.push_back(c);
            std::printf("%-12zu %-8zu %14.5f %14.5f   %u\n", budget, chains,
                        c.best_score, c.reliability, c.winning_chain);
        }
    }
    std::printf("\nexpected shape: within a budget row, 4 chains never score\n"
                "                below 1 chain (chain 0 IS the 1-chain run;\n"
                "                extra chains only add trajectories).\n");

    // --- JSON record ------------------------------------------------------
    const char* path = "BENCH_multi_chain.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"date\": \"%s\",\n", iso_now().c_str());
    std::fprintf(out, "    \"num_cpus\": %u,\n", cores);
    std::fprintf(out, "    \"scenario\": \"%s\",\n", snapshot->name().c_str());
    std::fprintf(out, "    \"iterations\": %zu,\n", iterations);
    std::fprintf(out, "    \"assessment_rounds\": %zu,\n", rounds);
    std::fprintf(out,
                 "    \"note\": \"threads only affect wall-clock; results are "
                 "bit-identical (asserted live). On a 1-core host the threaded "
                 "rows measure scheduling overhead, not speedup.\"\n");
    std::fprintf(out, "  },\n  \"chains_vs_wallclock\": [\n");
    for (std::size_t i = 0; i < wallclock.size(); ++i) {
        const cell& c = wallclock[i];
        std::fprintf(out,
                     "    {\"chains\": %zu, \"threads\": %zu, \"ms\": %.1f, "
                     "\"reliability\": %.6f, \"best_score\": %.6f, "
                     "\"winning_chain\": %u, \"plans_evaluated\": %zu}%s\n",
                     c.chains, c.threads, c.ms, c.reliability, c.best_score,
                     c.winning_chain, c.plans_evaluated,
                     i + 1 < wallclock.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"best_r_vs_budget\": [\n");
    for (std::size_t i = 0; i < budget_series.size(); ++i) {
        const cell& c = budget_series[i];
        std::fprintf(out,
                     "    {\"iterations\": %.0f, \"chains\": %zu, "
                     "\"reliability\": %.6f, \"best_score\": %.6f, "
                     "\"winning_chain\": %u, \"plans_evaluated\": %zu}%s\n",
                     c.ms, c.chains, c.reliability, c.best_score,
                     c.winning_chain, c.plans_evaluated,
                     i + 1 < budget_series.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
    return 0;
}
