// Figure 9: reCloud vs enhanced common practice (with multi-objectives).
//
// For 1-of-2 / 2-of-3 / 4-of-5 / 8-of-10 redundancy, compare the
// reliability of:
//   * the enhanced common practice: top-5 non-repeating least-loaded
//     distinct-rack plans, pick the most power-diversified one
//     (negligible search time);
//   * reCloud's multi-objective annealing search (reliability + workload
//     utility, equal weights) at increasing search-time budgets.
// The paper finds reCloud about one order of magnitude more reliable (e.g.
// 99.62% -> 99.97% for 4-of-5) within 30 s on the large data center.
#include <chrono>
#include <cstdio>
#include <vector>

#include "assess/downtime.hpp"
#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "search/common_practice.hpp"

int main() {
    using namespace recloud;
    bench::print_header(
        "Figure 9: reCloud vs enhanced common practice (multi-objective)",
        "Figure 9, §4.2.2");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::medium;
    auto infra = fat_tree_infrastructure::build(scale);
    std::printf("data center: %s\n", to_string(scale));

    struct setting {
        int k;
        int n;
    };
    const std::vector<setting> settings{{1, 2}, {2, 3}, {4, 5}, {8, 10}};
    const std::vector<double> search_seconds =
        bench::full_scale()
            ? std::vector<double>{3, 6, 15, 30, 60, 150, 300}
            : std::vector<double>{0.5, 1, 2, 4};
    const std::size_t rounds = 10000;

    for (const auto& [k, n] : settings) {
        const application app = application::k_of_n(k, n);
        std::printf("\n--- %d-of-%d redundancy ---\n", k, n);

        // Enhanced common practice baseline.
        const deployment_plan cp_plan = enhanced_common_practice_plan(
            infra.topology(), infra.workloads(), infra.power(), n);
        recloud_options assess_options;
        assess_options.assessment_rounds = rounds;
        assess_options.seed = 1;
        re_cloud assess_system{infra, assess_options};
        const assessment_stats cp_stats = assess_system.assess(app, cp_plan);
        std::printf("%-24s reliability=%.5f  (%.1f h/yr downtime)  load=%.3f\n",
                    "[CP] enhanced practice", cp_stats.reliability,
                    annual_downtime_hours(cp_stats.reliability),
                    infra.workloads().average(cp_plan.hosts));

        // reCloud search at increasing budgets: once optimizing reliability
        // alone, once with the multi-objective holistic measure (Eq. 7,
        // equal weights). Under this fault model the reliability gaps
        // between plans are large (shared power supplies cost ~1% R), so
        // the equal-weight optimum genuinely trades some reliability for
        // lighter hosts; the reliability-only series shows the pure search
        // quality the paper's Figure 9 y-axis tracks.
        for (const bool multi_objective : {false, true}) {
            for (const double seconds : search_seconds) {
                recloud_options options;
                options.assessment_rounds = rounds;
                options.multi_objective = multi_objective;  // a = b = 1 (Eq. 7)
                options.seed = 42;
                re_cloud system{infra, options};
                deployment_request request;
                request.app = app;
                request.desired_reliability = 1.0;  // unsatisfiable: run to Tmax
                request.max_search_time = std::chrono::milliseconds{
                    static_cast<long long>(seconds * 1000)};
                const deployment_response response =
                    system.find_deployment(request);
                std::printf(
                    "reCloud[%s] Tmax=%-5.1fs  reliability=%.5f  (%.1f h/yr "
                    "downtime)  load=%.3f  plans=%zu (skipped %zu symmetric)\n",
                    multi_objective ? "rel+util" : "rel-only", seconds,
                    response.stats.reliability,
                    annual_downtime_hours(response.stats.reliability),
                    infra.workloads().average(response.plan.hosts),
                    response.search.plans_generated,
                    response.search.symmetric_skips);
            }
        }
    }
    std::printf(
        "\npaper shape: reCloud's unreliability (1-R) about one order of\n"
        "             magnitude below the enhanced common practice; longer\n"
        "             search times improve the plan; 2-of-3 beats 4-of-5\n");
    return 0;
}
