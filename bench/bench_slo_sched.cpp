// SLO scheduling: EDF admission + cooperative preemption vs plain FIFO
// under a saturating open-loop mix of deadlines, recorded into
// BENCH_slo_sched.json.
//
// The workload interleaves HEAVY searches (long Tmax, loose deadline) with
// LIGHT ones (tiny Tmax, tight deadline) arriving on a fixed timer faster
// than the fleet can drain them. Under FIFO a light request queues behind
// every heavy search that arrived first, each of which burns its full Tmax
// — by mid-run the queue wait alone exceeds the light deadlines. Under EDF
// the light requests pop first, expired requests are shed instead of run,
// and a heavy search that would blow ITS deadline is cooperatively
// preempted at deadline-minus-headroom, returning its anytime best-so-far
// plan in time.
//
// The bench runs the SAME arrival schedule through both policies on fresh
// services and ASSERTS the win live: if EDF+preemption does not strictly
// beat FIFO's deadline hit rate, it exits non-zero.
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "core/scenario.hpp"
#include "service/deployment_service.hpp"

namespace {

using namespace recloud;

std::string iso_now() {
    char buffer[32];
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    std::strftime(buffer, sizeof buffer, "%FT%TZ", &utc);
    return buffer;
}

// Shaped so the two policies differ STRUCTURALLY, not by timing luck:
// under FIFO the queue wait behind full-Tmax heavy searches exceeds the
// light deadline from the fourth light request on and the late heavy
// arrivals blow their own deadlines, while under EDF a light request waits
// at most one heavy residual (~heavy_tmax < light_deadline) and an
// over-budget heavy is preempted into an on-time anytime response.
struct workload_shape {
    std::size_t requests = 16;                    ///< heavy/light alternating
    std::chrono::milliseconds inter_arrival{80};
    std::chrono::milliseconds heavy_tmax{800};
    std::chrono::milliseconds heavy_deadline{2200};
    std::chrono::milliseconds light_tmax{30};
    std::chrono::milliseconds light_deadline{900};
};

struct policy_result {
    std::string policy;
    double ms = 0.0;
    std::uint64_t hits = 0;       ///< responses ready by their deadline
    std::uint64_t misses = 0;     ///< ran (or shed) but resolved late/never
    service_stats stats;

    [[nodiscard]] double hit_rate() const noexcept {
        const std::uint64_t total = hits + misses;
        return total > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    }
};

policy_result run_policy(scheduling_policy policy, const scenario_ptr& snapshot,
                         const workload_shape& shape) {
    service_options options;
    options.workers = 2;
    options.shards = 1;
    options.scheduling = policy;
    if (policy == scheduling_policy::edf) {
        options.min_service_grant = std::chrono::milliseconds{20};
        options.deadline_headroom = std::chrono::milliseconds{100};
    }
    options.defaults.assessment_rounds = 200;  // time-driven searches
    deployment_service service{options};
    service.add_scenario("dc", snapshot);

    policy_result result;
    result.policy = to_string(policy);
    std::vector<std::future<service_response>> futures;
    futures.reserve(shape.requests);
    stopwatch watch;
    for (std::size_t i = 0; i < shape.requests; ++i) {
        const bool heavy = i % 2 == 0;
        service_request request;
        request.scenario = "dc";
        request.tenant = "bench";
        request.app = application::k_of_n(2, 3);
        request.desired_reliability = 2.0;  // unreachable: Tmax-bound search
        request.max_search_time = heavy ? shape.heavy_tmax : shape.light_tmax;
        request.slo_deadline = heavy ? shape.heavy_deadline
                                     : shape.light_deadline;
        request.seed = 1000 + i;
        futures.push_back(service.submit(std::move(request)));
        std::this_thread::sleep_for(shape.inter_arrival);
    }
    for (auto& future : futures) {
        const service_response response = future.get();
        const bool hit = response.status == request_status::completed &&
                         response.deadline_met;
        result.hits += hit ? 1 : 0;
        result.misses += hit ? 0 : 1;
    }
    result.ms = watch.elapsed_ms();
    result.stats = service.stats();
    return result;
}

}  // namespace

int main() {
    using recloud::bench::full_scale;
    recloud::bench::print_header(
        "SLO scheduling: EDF + preemption vs FIFO under mixed deadlines",
        "deadline-ordered admission, unmeetable shedding, anytime preemption");

    workload_shape shape;
    if (full_scale()) {
        shape.requests = 24;
        shape.inter_arrival = std::chrono::milliseconds{120};
        shape.heavy_tmax = std::chrono::milliseconds{1200};
        shape.heavy_deadline = std::chrono::milliseconds{3300};
        shape.light_tmax = std::chrono::milliseconds{50};
        shape.light_deadline = std::chrono::milliseconds{1400};
    }
    const recloud::scenario_ptr snapshot = recloud::make_fat_tree_scenario(4);

    const policy_result fifo =
        run_policy(recloud::scheduling_policy::fifo, snapshot, shape);
    const policy_result edf =
        run_policy(recloud::scheduling_policy::edf, snapshot, shape);

    std::printf("\n%-6s %8s %8s %10s %10s %10s %12s %8s\n", "policy", "hits",
                "misses", "hit rate", "preempted", "shed", "late (miss)", "ms");
    for (const policy_result* result : {&fifo, &edf}) {
        std::printf("%-6s %8llu %8llu %9.1f%% %10llu %10llu %12llu %8.0f\n",
                    result->policy.c_str(),
                    static_cast<unsigned long long>(result->hits),
                    static_cast<unsigned long long>(result->misses),
                    result->hit_rate() * 100.0,
                    static_cast<unsigned long long>(result->stats.preempted),
                    static_cast<unsigned long long>(
                        result->stats.shed_unmeetable),
                    static_cast<unsigned long long>(
                        result->stats.deadline_missed),
                    result->ms);
    }

    const char* path = "BENCH_slo_sched.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"date\": \"%s\",\n", iso_now().c_str());
    std::fprintf(out, "    \"num_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"requests\": %zu,\n", shape.requests);
    std::fprintf(out, "    \"inter_arrival_ms\": %lld,\n",
                 static_cast<long long>(shape.inter_arrival.count()));
    std::fprintf(out, "    \"heavy_tmax_ms\": %lld,\n",
                 static_cast<long long>(shape.heavy_tmax.count()));
    std::fprintf(out, "    \"heavy_deadline_ms\": %lld,\n",
                 static_cast<long long>(shape.heavy_deadline.count()));
    std::fprintf(out, "    \"light_tmax_ms\": %lld,\n",
                 static_cast<long long>(shape.light_tmax.count()));
    std::fprintf(out, "    \"light_deadline_ms\": %lld,\n",
                 static_cast<long long>(shape.light_deadline.count()));
    std::fprintf(out, "    \"full_scale\": %s\n",
                 full_scale() ? "true" : "false");
    std::fprintf(out, "  },\n  \"policies\": [\n");
    bool first = true;
    for (const policy_result* result : {&fifo, &edf}) {
        std::fprintf(
            out,
            "%s    {\"policy\": \"%s\", \"hits\": %llu, \"misses\": %llu, "
            "\"hit_rate\": %.4f, \"ms\": %.1f, \"deadline_met\": %llu, "
            "\"deadline_missed\": %llu, \"shed_unmeetable\": %llu, "
            "\"preempted\": %llu}",
            first ? "" : ",\n", result->policy.c_str(),
            static_cast<unsigned long long>(result->hits),
            static_cast<unsigned long long>(result->misses),
            result->hit_rate(), result->ms,
            static_cast<unsigned long long>(result->stats.deadline_met),
            static_cast<unsigned long long>(result->stats.deadline_missed),
            static_cast<unsigned long long>(result->stats.shed_unmeetable),
            static_cast<unsigned long long>(result->stats.preempted));
        first = false;
    }
    std::fprintf(out, "\n  ],\n  \"edf_beats_fifo\": %s\n}\n",
                 edf.hit_rate() > fifo.hit_rate() ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", path);

    if (edf.hit_rate() <= fifo.hit_rate()) {
        std::fprintf(stderr,
                     "FAIL: EDF+preemption hit rate %.1f%% does not beat "
                     "FIFO's %.1f%%\n",
                     edf.hit_rate() * 100.0, fifo.hit_rate() * 100.0);
        return 1;
    }
    return 0;
}
