// Assessment-backend comparison: serial vs deterministic parallel vs the
// wire-format MapReduce engine (§3.2.1, §4.2.4).
//
// The parallel backend removes the engine's serialization and per-assessment
// context setup AND moves sampling into the workers (each round batch draws
// its own forked substream), so it scales on both paper workloads — while
// staying bit-deterministic for any worker count. Expected on a >= 4-core
// host: >= 3x speedup over serial at 10^5 rounds.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "assess/backend.hpp"
#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "exec/engine.hpp"
#include "sampling/extended_dagger.hpp"
#include "search/neighbor.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Assessment backends: serial vs parallel vs engine",
                        "§3.2.1 parallel route-and-check (cf. Figure 12)");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::medium;
    auto infra = fat_tree_infrastructure::build(scale);
    const unsigned cores = std::thread::hardware_concurrency();
    const std::size_t rounds = 100'000;
    std::printf("data center: %s, host cpu cores: %u, rounds: %zu\n",
                to_string(scale), cores, rounds);
    if (cores < 4) {
        std::printf("NOTE: < 4 cores — wall-clock speedup is physically capped\n"
                    "      at the core count; the table then mostly measures\n"
                    "      the backends' coordination overhead.\n");
    }
    std::printf("\n");

    const oracle_factory factory = [&infra] {
        return std::make_unique<fat_tree_routing>(infra.tree());
    };

    std::vector<std::size_t> worker_counts{1, 2, 4};
    if (cores > 4) {
        worker_counts.push_back(cores);
    }

    struct workload {
        const char* label;
        application app;
    };
    const workload workloads[] = {
        {"4-of-5 (paper default)", application::k_of_n(4, 5)},
        {"microservice 5-10", application::microservice(5, 10, 4, 5)},
    };

    for (const auto& w : workloads) {
        neighbor_generator neighbors{infra.topology(), anti_affinity::none, 31};
        const deployment_plan plan =
            neighbors.initial_plan(w.app.total_instances());
        std::printf("--- %s ---\n", w.label);
        std::printf("%-22s %12s %10s   reliability\n", "backend", "time (ms)",
                    "speedup");

        // Serial reference.
        extended_dagger_sampler serial_sampler{infra.registry().probabilities(), 3};
        round_state rs{infra.registry().size(), &infra.forest()};
        fat_tree_routing oracle{infra.tree()};
        serial_backend serial{infra.registry().size(), &infra.forest(), oracle,
                              serial_sampler};
        assessment_stats serial_stats;
        const double serial_ms = bench::time_ms(
            [&] { serial_stats = serial.assess(w.app, plan, rounds); });
        std::printf("%-22s %12.1f %9.2fx   %.5f\n", serial.name(), serial_ms, 1.0,
                    serial_stats.reliability);

        // Deterministic parallel backend at increasing worker counts.
        std::size_t reference_reliable = 0;
        bool have_reference = false;
        for (const std::size_t workers : worker_counts) {
            extended_dagger_sampler sampler{infra.registry().probabilities(), 3};
            parallel_backend parallel{infra.registry().size(), &infra.forest(),
                                      factory, sampler,
                                      {.threads = workers, .batch_rounds = 1024}};
            (void)parallel.assess(w.app, plan, 500);  // warm the pool
            parallel.reset_stream(3);
            assessment_stats stats;
            const double ms = bench::time_ms(
                [&] { stats = parallel.assess(w.app, plan, rounds); });
            char label[64];
            std::snprintf(label, sizeof label, "parallel (%zu workers)", workers);
            std::printf("%-22s %12.1f %9.2fx   %.5f\n", label, ms,
                        serial_ms / ms, stats.reliability);
            // The determinism contract, checked live: every worker count must
            // judge the identical rounds.
            if (!have_reference) {
                reference_reliable = stats.reliable;
                have_reference = true;
            } else if (stats.reliable != reference_reliable) {
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: %zu workers -> %zu reliable "
                             "rounds, expected %zu\n",
                             workers, stats.reliable, reference_reliable);
                return 1;
            }
        }

        // Wire-format engine for contrast (master-side sampling + real
        // serialization costs).
        std::size_t engine_reliable = 0;
        for (const std::size_t workers : worker_counts) {
            extended_dagger_sampler sampler{infra.registry().probabilities(), 3};
            engine_backend engine{infra.registry().size(), &infra.forest(),
                                  factory, sampler,
                                  {.workers = workers, .batch_rounds = 1000}};
            (void)engine.assess(w.app, plan, 500);  // warm the pool
            sampler.reset(3);
            assessment_stats stats;
            const double ms = bench::time_ms(
                [&] { stats = engine.assess(w.app, plan, rounds); });
            char label[64];
            std::snprintf(label, sizeof label, "engine (%zu workers)", workers);
            std::printf("%-22s %12.1f %9.2fx   %.5f\n", label, ms,
                        serial_ms / ms, stats.reliability);
            engine_reliable = stats.reliable;
        }

        // Fault-injected engine: >= 20% of dispatch attempts crash or
        // corrupt their result frame; the recovery layer (retry,
        // re-dispatch, degrade) must reproduce the fault-free counts
        // bit-for-bit while paying the repair cost.
        {
            const chaos_schedule chaos{{.seed = 0xc405,
                                        .crash_rate = 0.12,
                                        .corrupt_rate = 0.08,
                                        .truncate_rate = 0.05}};
            extended_dagger_sampler sampler{infra.registry().probabilities(), 3};
            engine_backend engine{infra.registry().size(), &infra.forest(),
                                  factory, sampler,
                                  {.workers = 4,
                                   .batch_rounds = 1000,
                                   .max_attempts = 6,
                                   .chaos = &chaos}};
            (void)engine.assess(w.app, plan, 500);  // warm the pool
            sampler.reset(3);
            assessment_stats stats;
            const double ms = bench::time_ms(
                [&] { stats = engine.assess(w.app, plan, rounds); });
            std::printf("%-22s %12.1f %9.2fx   %.5f\n",
                        "engine (4 w, 25% chaos)", ms, serial_ms / ms,
                        stats.reliability);
            const engine_stats& es = engine.stats();
            std::printf(
                "    chaos recovery: %llu failures -> %llu retries, %llu "
                "re-dispatches, %llu degraded of %llu batches\n",
                static_cast<unsigned long long>(es.failures()),
                static_cast<unsigned long long>(es.retries),
                static_cast<unsigned long long>(es.redispatches),
                static_cast<unsigned long long>(es.degraded),
                static_cast<unsigned long long>(es.batches));
            if (stats.reliable != engine_reliable) {
                std::fprintf(stderr,
                             "RECOVERY DETERMINISM VIOLATION: chaos run -> %zu "
                             "reliable rounds, fault-free engine -> %zu\n",
                             stats.reliable, engine_reliable);
                return 1;
            }
        }
        std::printf("\n");
    }
    std::printf(
        "expected shape: parallel tracks core count (no serialization, sampling\n"
        "                inside workers); engine pays Figure 12's wire + context\n"
        "                costs; all parallel rows report identical reliability.\n");
    return 0;
}
