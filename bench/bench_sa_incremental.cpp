// Cross-plan incremental assessment: end-to-end SA wall-clock with
// RECLOUD_INCREMENTAL off vs on, at EQUAL trajectories (pinned seed +
// deterministic schedule), recorded into BENCH_sa_incremental.json.
//
// The incremental machinery (DESIGN.md §11) is a pure speed knob: the
// verdict cache rebinds warm across the annealer's single-slot plan swaps
// and the serial assessor replays its CRN round journal instead of
// re-sampling. This bench ASSERTS that promise live — the winning plan, its
// assessment stats and every search counter must be bit-identical between
// the two runs, or the bench exits non-zero. The headline number is the
// speedup of the full find_deployment call.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"

namespace {

using namespace recloud;

std::string iso_now() {
    char buffer[32];
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    std::strftime(buffer, sizeof buffer, "%FT%TZ", &utc);
    return buffer;
}

struct run_result {
    double ms = 0.0;
    deployment_response response;
    verdict_cache_stats cache{};
};

struct regime {
    const char* name;
    /// Per-component failure probabilities (probability_model_options means).
    double switch_mean;
    double other_mean;
};

run_result run_search(const fat_tree_infrastructure& infra,
                      const recloud_options& options, bool incremental) {
    // The env vars override recloud_options, so pin both explicitly — the
    // bench must measure what it says it measures even under CI's forced
    // settings.
    ::setenv("RECLOUD_VERDICT_CACHE", "1", 1);
    ::setenv("RECLOUD_INCREMENTAL", incremental ? "1" : "0", 1);
    run_result result;
    re_cloud system{infra, options};
    deployment_request request{application::k_of_n(4, 5), 1.0,
                               std::chrono::seconds{600}};
    result.ms = recloud::bench::time_ms(
        [&] { result.response = system.find_deployment(request); });
    if (const verdict_cache_stats* stats = system.cache_stats()) {
        result.cache = *stats;
    }
    return result;
}

bool bit_identical(const deployment_response& a, const deployment_response& b) {
    return a.plan == b.plan && a.fulfilled == b.fulfilled &&
           a.stats.rounds == b.stats.rounds &&
           a.stats.reliable == b.stats.reliable &&
           a.stats.reliability == b.stats.reliability &&
           a.stats.variance == b.stats.variance &&
           a.stats.ciw95 == b.stats.ciw95 &&
           a.search.plans_evaluated == b.search.plans_evaluated &&
           a.search.plans_generated == b.search.plans_generated &&
           a.search.symmetric_skips == b.search.symmetric_skips;
}

void print_cache_line(const char* label, const verdict_cache_stats& c) {
    std::printf(
        "%-14s rounds=%llu hit_rate=%.3f warm=%llu cold=%llu retained=%llu "
        "cross_hits=%llu\n",
        label, static_cast<unsigned long long>(c.rounds), c.hit_rate(),
        static_cast<unsigned long long>(c.warm_rebinds),
        static_cast<unsigned long long>(c.cold_rebinds),
        static_cast<unsigned long long>(c.retained_entries),
        static_cast<unsigned long long>(c.cross_plan_hits));
}

}  // namespace

int main() {
    using recloud::bench::full_scale;
    recloud::bench::print_header(
        "cross-plan incremental assessment: SA inner-loop speedup",
        "sublinear-in-plan-changes assessment; equal-trajectory bit-identity");

    const data_center_scale scale = data_center_scale::medium;
    std::printf("data center: %s (k=%d)\n", to_string(scale),
                fat_tree_k_for(scale));

    recloud_options options;
    // The incremental on-path pays two irreducible full assessments (the
    // cold recording pass and the winner re-assessment on a fresh stream),
    // so speedup at n iterations is ~(n+1)F / (2F + (n-1)r) — too few
    // iterations understates the steady-state F/r. 80 iterations is still
    // a short SA run; real searches amortize the fixed cost further.
    options.assessment_rounds = full_scale() ? 10'000 : 4'000;
    options.max_iterations = full_scale() ? 200 : 80;
    options.seed = 17;
    options.deterministic_schedule = true;
    options.backend = assessment_backend_kind::serial;
    std::printf("rounds/assessment: %zu  iterations: %zu  seed: %llu\n",
                options.assessment_rounds, options.max_iterations,
                static_cast<unsigned long long>(options.seed));

    // Two probability regimes. "paper" is §4.1's evaluation setting (~1%
    // per component: every round carries a near-unique failure signature —
    // the incremental win is mostly the skipped re-sampling). "realistic"
    // is the 10^-3..10^-4 regime the verdict cache is designed for
    // (production AFR-scale rates): signatures repeat heavily, so journal
    // grouping and cross-plan retention collapse whole assessments into
    // hash probes. No regime below 5e-4: the probability model rounds to 4
    // decimals and clamps at 1e-4, so lower means degenerate to a uniform
    // distribution whose symmetry skips empty the candidate set.
    const regime regimes[] = {
        {"paper", 0.008, 0.01},
        {"realistic", 0.0005, 0.0005},
    };

    struct regime_result {
        const regime* r;
        run_result off;
        run_result on;
        bool identical = false;
        double speedup = 0.0;
    };
    std::vector<regime_result> results;
    bool all_identical = true;
    for (const regime& r : regimes) {
        infrastructure_options infra_options;
        infra_options.probabilities.switch_mean = r.switch_mean;
        infra_options.probabilities.switch_stddev = r.switch_mean / 8.0;
        infra_options.probabilities.other_mean = r.other_mean;
        infra_options.probabilities.other_stddev = r.other_mean / 8.0;
        auto infra = fat_tree_infrastructure::build(scale, infra_options);

        regime_result out;
        out.r = &r;
        out.off = run_search(infra, options, false);
        out.on = run_search(infra, options, true);
        out.identical = bit_identical(out.off.response, out.on.response);
        out.speedup = out.on.ms > 0.0 ? out.off.ms / out.on.ms : 0.0;
        all_identical = all_identical && out.identical;

        std::printf("\n-- regime %-10s (switch p=%.4g, other p=%.4g) --\n",
                    r.name, r.switch_mean, r.other_mean);
        std::printf("%-14s %12s %14s %14s\n", "mode", "search(ms)", "R",
                    "plans");
        std::printf("%-14s %12.1f %14.6f %14llu\n", "incremental=0",
                    out.off.ms, out.off.response.stats.reliability,
                    static_cast<unsigned long long>(
                        out.off.response.search.plans_evaluated));
        std::printf("%-14s %12.1f %14.6f %14llu\n", "incremental=1",
                    out.on.ms, out.on.response.stats.reliability,
                    static_cast<unsigned long long>(
                        out.on.response.search.plans_evaluated));
        std::printf("speedup: %.2fx   bit-identical: %s\n", out.speedup,
                    out.identical ? "yes" : "NO - BUG");
        print_cache_line("incremental=0", out.off.cache);
        print_cache_line("incremental=1", out.on.cache);
        results.push_back(out);
    }
    ::unsetenv("RECLOUD_VERDICT_CACHE");
    ::unsetenv("RECLOUD_INCREMENTAL");

    const char* path = "BENCH_sa_incremental.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"date\": \"%s\",\n", iso_now().c_str());
    std::fprintf(out, "    \"num_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"scale\": \"%s\",\n", to_string(scale));
    std::fprintf(out, "    \"assessment_rounds\": %zu,\n",
                 options.assessment_rounds);
    std::fprintf(out, "    \"max_iterations\": %zu,\n", options.max_iterations);
    std::fprintf(out, "    \"seed\": %llu,\n",
                 static_cast<unsigned long long>(options.seed));
    std::fprintf(out, "    \"full_scale\": %s\n",
                 full_scale() ? "true" : "false");
    std::fprintf(out, "  },\n  \"regimes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const regime_result& rr = results[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"switch_p\": %g, "
                     "\"other_p\": %g, \"speedup\": %.3f, "
                     "\"bit_identical\": %s, \"runs\": [\n",
                     rr.r->name, rr.r->switch_mean, rr.r->other_mean,
                     rr.speedup, rr.identical ? "true" : "false");
        const run_result* runs[] = {&rr.off, &rr.on};
        for (int j = 0; j < 2; ++j) {
            const run_result& r = *runs[j];
            std::fprintf(
                out,
                "      {\"incremental\": %s, \"search_ms\": %.2f, "
                "\"reliability\": %.9f, \"plans_evaluated\": %llu, "
                "\"cache\": {\"rounds\": %llu, \"hit_rate\": %.4f, "
                "\"warm_rebinds\": %llu, \"cold_rebinds\": %llu, "
                "\"retained_entries\": %llu, \"cross_plan_hits\": %llu}}%s\n",
                j == 1 ? "true" : "false", r.ms, r.response.stats.reliability,
                static_cast<unsigned long long>(
                    r.response.search.plans_evaluated),
                static_cast<unsigned long long>(r.cache.rounds),
                r.cache.hit_rate(),
                static_cast<unsigned long long>(r.cache.warm_rebinds),
                static_cast<unsigned long long>(r.cache.cold_rebinds),
                static_cast<unsigned long long>(r.cache.retained_entries),
                static_cast<unsigned long long>(r.cache.cross_plan_hits),
                j == 0 ? "," : "");
        }
        std::fprintf(out, "    ]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"bit_identical\": %s\n}\n",
                 all_identical ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote %s\n", path);

    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: incremental run diverged from the reference "
                     "trajectory\n");
        return 1;
    }
    return 0;
}
