// Ablation C: sampler choice — Monte-Carlo (INDaaS strawman) vs extended
// dagger (reCloud) vs antithetic variates (extension).
//
// Two views: (1) time to generate + route-and-check a 10^4-round
// assessment; (2) empirical standard deviation of the reliability estimate
// over repeated independent assessments of the SAME plan — the
// variance-reduction effect §3.2.2 claims for dagger sampling, measured
// end-to-end through the full pipeline.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/antithetic.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"
#include "search/neighbor.hpp"
#include "util/stats.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Ablation C: sampler comparison (time & variance)",
                        "§3.2.2's variance-reduction claim");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::medium;
    auto infra = fat_tree_infrastructure::build(scale);
    std::printf("data center: %s\n\n", to_string(scale));

    const application app = application::k_of_n(4, 5);
    neighbor_generator neighbors{infra.topology(), anti_affinity::rack, 19};
    const deployment_plan plan = neighbors.initial_plan(5);

    const std::size_t rounds = 10000;
    const int repetitions = bench::full_scale() ? 40 : 20;

    struct sampler_entry {
        const char* label;
        std::unique_ptr<failure_sampler> sampler;
    };
    sampler_entry entries[] = {
        {"monte-carlo", std::make_unique<monte_carlo_sampler>(
                            infra.registry().probabilities(), 1)},
        {"ext-dagger", std::make_unique<extended_dagger_sampler>(
                           infra.registry().probabilities(), 1)},
        {"antithetic", std::make_unique<antithetic_sampler>(
                           infra.registry().probabilities(), 1)},
    };

    std::printf("%-12s %16s %14s %16s\n", "sampler", "assess(ms)",
                "mean R", "stddev of R-hat");
    for (auto& entry : entries) {
        fat_tree_routing oracle{infra.tree()};
        reliability_assessor assessor{infra.registry().size(), &infra.forest(),
                                      oracle, *entry.sampler};
        const double assess_ms = bench::time_ms(
            [&] { (void)assessor.assess(app, plan, rounds); });

        running_stats estimates;
        for (int rep = 0; rep < repetitions; ++rep) {
            entry.sampler->reset(100 + static_cast<std::uint64_t>(rep));
            estimates.add(assessor.assess(app, plan, rounds).reliability);
        }
        std::printf("%-12s %16.1f %14.5f %16.2e\n", entry.label, assess_ms,
                    estimates.mean(), estimates.stddev());
    }
    std::printf(
        "\nexpected: dagger assessments are fastest AND have the lowest\n"
        "          estimator spread at equal round counts (the §3.2.2\n"
        "          variance-reduction effect, end to end). Antithetic pairs\n"
        "          cancel within-pair noise of smooth estimands but barely\n"
        "          move this K-of-N threshold indicator — which is exactly\n"
        "          why the paper picked dagger over classic alternatives.\n");
    return 0;
}
