// Fleet observability-plane overhead: the whole plane on (metrics registry
// + tracer + a telemetry harvest per assessment) versus everything off, on
// the acceptance configuration — 8 recloud_worker processes over Unix
// sockets assessing the medium fat-tree. Recorded into
// BENCH_obs_harvest.json.
//
// Three live asserts (the bench exits non-zero on any):
//   * §6 purity: both arms' assessment_stats are bit-identical, rep by rep;
//   * harvest equivalence (DESIGN §12): the counters pulled back from the
//     socket fleet equal what a same-seed loopback fleet writes into the
//     shared registry directly;
//   * the <2% gate: median obs-on wall time within 2% of obs-off.
//
// Worker binary resolution: $RECLOUD_WORKER_BIN when set, else the
// build-tree path baked in at compile time.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/bfs_reachability.hpp"
#include "sampling/extended_dagger.hpp"
#include "topology/fat_tree.hpp"

namespace {

using namespace recloud;

std::string iso_now() {
    char buffer[32];
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    std::strftime(buffer, sizeof buffer, "%FT%TZ", &utc);
    return buffer;
}

double median(std::vector<double> values) {
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

bool identical(const assessment_stats& a, const assessment_stats& b) {
    return a.rounds == b.rounds && a.reliable == b.reliable &&
           a.reliability == b.reliability && a.variance == b.variance &&
           a.ciw95 == b.ciw95;
}

}  // namespace

int main() {
    using recloud::bench::full_scale;
    recloud::bench::print_header(
        "fleet observability plane overhead (8 socket workers, harvest on)",
        "§6 purity + DESIGN §12 <2% overhead gate");

    const fat_tree tree = fat_tree::build(data_center_scale::medium);
    const built_topology& topo = tree.topology();
    component_registry registry{topo.graph};
    fault_tree_forest forest{topo.graph.node_count()};
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) != component_kind::external) {
            registry.set_probability(id, 0.002);
        }
    }
    const application app = application::k_of_n(2, 4);
    deployment_plan plan;
    plan.hosts = {topo.hosts[0], topo.hosts[700], topo.hosts[1500],
                  topo.hosts[3000]};
    // Enough rounds that the per-assessment harvest round-trip amortizes
    // the way it does in production (one pull per assessment or scrape,
    // not per batch); at the test suite's 1500 rounds the fixed ~3 ms
    // harvest would dominate a ~50 ms assessment.
    const std::size_t rounds = full_scale() ? 20'000 : 10'000;
    const std::size_t reps = full_scale() ? 9 : 5;
    constexpr std::size_t workers = 8;
    constexpr std::uint64_t seed = 777;

    engine_options options;
    options.workers = workers;
    options.batch_rounds = 128;
    options.transport = transport_kind::socket;
    options.topology = &topo;
    if (const char* bin = std::getenv("RECLOUD_WORKER_BIN");
        bin != nullptr && bin[0] != '\0') {
        options.socket.worker_binary = bin;
    } else {
        options.socket.worker_binary = RECLOUD_WORKER_BIN;
    }

    const auto factory = [&topo] {
        return std::make_unique<bfs_reachability>(topo);
    };

    auto& reg = obs::metrics_registry::global();
    auto& tracer = obs::tracer::global();

    // One arm: fresh engine, one timed assessment (+ harvest when the plane
    // is on). Spawn/shutdown stay outside the stopwatch — the plane's cost
    // is per-assessment, the fleet is long-lived in production.
    // route.floods is the equivalence probe: it is incremented inside the
    // worker contexts (remote for sockets), so it only reaches this
    // registry through the harvest.
    std::uint64_t harvested_floods = 0;
    const auto run_arm = [&](bool obs_on, std::vector<double>& ms_out,
                             std::vector<assessment_stats>& stats_out) {
        reg.reset();
        reg.set_enabled(obs_on);
        if (obs_on) {
            tracer.start();
        }
        {
            assessment_engine engine{registry.size(), &forest, factory,
                                     options};
            {
                extended_dagger_sampler warmup{registry.probabilities(), seed};
                (void)engine.assess(warmup, app, plan, rounds);
            }
            for (std::size_t rep = 0; rep < reps; ++rep) {
                // Fresh sampler per rep: every rep assesses the identical
                // stream, so the arms compare rep by rep.
                extended_dagger_sampler sampler{registry.probabilities(),
                                                seed};
                stopwatch watch;
                stats_out.push_back(
                    engine.assess(sampler, app, plan, rounds));
                if (obs_on) {
                    engine.harvest_telemetry();
                }
                ms_out.push_back(watch.elapsed_ms());
            }
        }
        if (obs_on) {
            harvested_floods = reg.snapshot().value("route.floods");
            tracer.stop();
            tracer.reset();
        }
        reg.set_enabled(false);
        reg.reset();
    };

    std::vector<double> off_ms;
    std::vector<double> on_ms;
    std::vector<assessment_stats> off_stats;
    std::vector<assessment_stats> on_stats;
    run_arm(false, off_ms, off_stats);
    run_arm(true, on_ms, on_stats);

    bool bit_identical = true;
    std::printf("\n%-6s %12s %12s %8s\n", "rep", "off ms", "on ms", "same");
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const bool same = identical(off_stats[rep], on_stats[rep]);
        bit_identical = bit_identical && same;
        std::printf("%-6zu %12.1f %12.1f %8s\n", rep, off_ms[rep], on_ms[rep],
                    same ? "yes" : "NO");
    }

    // Harvest equivalence: a same-seed loopback fleet (same warmup + reps
    // shape) writes the registry directly; the socket harvests must have
    // pulled back the identical totals across the process boundary.
    std::uint64_t loopback_floods = 0;
    {
        reg.reset();
        reg.set_enabled(true);
        engine_options loopback;
        loopback.workers = workers;
        loopback.batch_rounds = options.batch_rounds;
        assessment_engine engine{registry.size(), &forest, factory, loopback};
        for (std::size_t rep = 0; rep < reps + 1; ++rep) {  // warmup + reps
            extended_dagger_sampler sampler{registry.probabilities(), seed};
            (void)engine.assess(sampler, app, plan, rounds);
        }
        loopback_floods = reg.snapshot().value("route.floods");
        reg.set_enabled(false);
        reg.reset();
    }
    const bool harvest_equivalent =
        harvested_floods == loopback_floods && harvested_floods > 0;

    const double off_median = median(off_ms);
    const double on_median = median(on_ms);
    const double overhead_pct =
        off_median > 0.0 ? 100.0 * (on_median - off_median) / off_median
                         : 0.0;
    constexpr double gate_pct = 2.0;
    std::printf("\nmedian: off %.1f ms, on %.1f ms -> overhead %+.2f%% "
                "(gate < %.1f%%)\n",
                off_median, on_median, overhead_pct, gate_pct);
    std::printf("harvested route.floods %llu, loopback %llu (%s)\n",
                static_cast<unsigned long long>(harvested_floods),
                static_cast<unsigned long long>(loopback_floods),
                harvest_equivalent ? "equivalent" : "MISMATCH");

    const char* path = "BENCH_obs_harvest.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"date\": \"%s\",\n", iso_now().c_str());
    std::fprintf(out, "    \"num_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"topology\": \"fat-tree medium (k=24)\",\n");
    std::fprintf(out, "    \"workers\": %zu,\n", workers);
    std::fprintf(out, "    \"transport\": \"socket\",\n");
    std::fprintf(out, "    \"rounds\": %zu,\n", rounds);
    std::fprintf(out, "    \"reps\": %zu,\n", reps);
    std::fprintf(out, "    \"full_scale\": %s\n",
                 full_scale() ? "true" : "false");
    std::fprintf(out, "  },\n  \"samples_ms\": {\n    \"obs_off\": [");
    for (std::size_t i = 0; i < off_ms.size(); ++i) {
        std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", off_ms[i]);
    }
    std::fprintf(out, "],\n    \"obs_on\": [");
    for (std::size_t i = 0; i < on_ms.size(); ++i) {
        std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", on_ms[i]);
    }
    std::fprintf(out, "]\n  },\n  \"summary\": {\n");
    std::fprintf(out, "    \"off_median_ms\": %.2f,\n", off_median);
    std::fprintf(out, "    \"on_median_ms\": %.2f,\n", on_median);
    std::fprintf(out, "    \"overhead_pct\": %.3f,\n", overhead_pct);
    std::fprintf(out, "    \"gate_pct\": %.1f,\n", gate_pct);
    std::fprintf(out, "    \"bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(out, "    \"harvested_route_floods\": %llu,\n",
                 static_cast<unsigned long long>(harvested_floods));
    std::fprintf(out, "    \"loopback_route_floods\": %llu,\n",
                 static_cast<unsigned long long>(loopback_floods));
    std::fprintf(out, "    \"harvest_equivalent\": %s\n",
                 harvest_equivalent ? "true" : "false");
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);

    if (!bit_identical) {
        std::fprintf(stderr, "FAIL: obs-on stats diverged from obs-off\n");
        return 1;
    }
    if (!harvest_equivalent) {
        std::fprintf(stderr, "FAIL: harvested counters != loopback fleet\n");
        return 1;
    }
    if (overhead_pct >= gate_pct) {
        std::fprintf(stderr, "FAIL: observability overhead %.2f%% >= %.1f%%\n",
                     overhead_pct, gate_pct);
        return 1;
    }
    return 0;
}
