// Ablation A: reCloud's log-ratio acceptance delta (Eq. 5) vs the classic
// absolute-difference delta of textbook simulated annealing (§3.3.2).
//
// The paper argues the classic setting "fits badly" because reliability
// differences live on a log scale: 0.999 vs 0.99 is an order of magnitude,
// not 0.009. This ablation runs the same searches under both modes and
// compares the best plans found within the same budget.
#include <chrono>
#include <cstdio>
#include <vector>

#include "assess/downtime.hpp"
#include "bench_util.hpp"
#include "core/recloud.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Ablation A: Eq.5 log-ratio delta vs classic |delta|",
                        "design choice of §3.3.2");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::small;
    auto infra = fat_tree_infrastructure::build(scale);
    std::printf("data center: %s\n\n", to_string(scale));

    const application app = application::k_of_n(4, 5);
    const double budget_seconds = bench::full_scale() ? 15.0 : 2.0;
    const std::vector<std::uint64_t> seeds{11, 22, 33};

    std::printf("%-12s %6s %14s %16s %10s %12s\n", "delta-mode", "seed",
                "reliability", "downtime(h/yr)", "plans", "worse-moves");
    for (const delta_mode mode : {delta_mode::log_ratio, delta_mode::absolute}) {
        double unreliability_sum = 0.0;
        for (const std::uint64_t seed : seeds) {
            recloud_options options;
            options.assessment_rounds = 10000;
            options.delta = mode;
            options.seed = seed;
            re_cloud system{infra, options};
            deployment_request request;
            request.app = app;
            request.desired_reliability = 1.0;
            request.max_search_time = std::chrono::milliseconds{
                static_cast<long long>(budget_seconds * 1000)};
            const deployment_response response = system.find_deployment(request);
            unreliability_sum += 1.0 - response.stats.reliability;
            std::printf("%-12s %6llu %14.5f %16.1f %10zu %12zu\n",
                        mode == delta_mode::log_ratio ? "log-ratio" : "absolute",
                        static_cast<unsigned long long>(seed),
                        response.stats.reliability,
                        annual_downtime_hours(response.stats.reliability),
                        response.search.plans_evaluated,
                        response.search.accepted_worse);
        }
        std::printf("%-12s  mean unreliability (1-R) = %.5f\n\n",
                    mode == delta_mode::log_ratio ? "log-ratio" : "absolute",
                    unreliability_sum / static_cast<double>(seeds.size()));
    }
    std::printf("expected: log-ratio accepts fewer catastrophic downhill moves\n"
                "          near convergence and lands at comparable-or-lower\n"
                "          unreliability for the same budget\n");
    return 0;
}
