// Figure 7: dagger sampling vs Monte-Carlo sampling.
//
// Time to generate the failure states of all infrastructure components for
// 10^3 / 10^4 / 10^5 rounds, across the four data center scales. The paper
// reports dagger sampling more than one order of magnitude faster at large
// scale (53 ms vs 1,487 ms for 10^4 rounds).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Figure 7: dagger vs Monte-Carlo sampling time",
                        "Figure 7, §4.2.1");

    std::vector<std::size_t> round_counts{1000, 10000, 100000};

    std::printf("%-8s %10s %12s %15s %15s %9s\n", "scale", "#comps", "rounds",
                "dagger(ms)", "monte-carlo(ms)", "speedup");
    for (const data_center_scale scale : bench::all_scales()) {
        const auto infra = fat_tree_infrastructure::build(scale);
        const auto probabilities = infra.registry().probabilities();
        for (const std::size_t rounds : round_counts) {
            extended_dagger_sampler dagger{probabilities, 1};
            monte_carlo_sampler monte_carlo{probabilities, 1};
            std::vector<component_id> failed;

            const double dagger_ms = bench::time_ms([&] {
                for (std::size_t r = 0; r < rounds; ++r) {
                    dagger.next_round(failed);
                }
            });
            const double mc_ms = bench::time_ms([&] {
                for (std::size_t r = 0; r < rounds; ++r) {
                    monte_carlo.next_round(failed);
                }
            });
            std::printf("%-8s %10zu %12zu %15.2f %15.2f %8.1fx\n",
                        to_string(scale), probabilities.size(), rounds,
                        dagger_ms, mc_ms, mc_ms / (dagger_ms > 0 ? dagger_ms : 0.01));
        }
    }
    std::printf("\npaper shape: dagger >10x faster than Monte-Carlo at large scale,\n"
                "             gap widening with data center size\n");
    return 0;
}
