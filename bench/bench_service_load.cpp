// Deployment-service load shedding: open-loop arrivals against the sharded
// service (service/deployment_service.hpp), recorded into
// BENCH_service_load.json.
//
// Open loop means arrivals do NOT wait for completions — the bench submits
// on a timer like independent developers would, so when the offered rate
// exceeds the service rate the only steady states are (a) an unbounded
// queue or (b) admission control shedding the excess. The service promises
// (b): every shard queue is bounded by queue_capacity and overflow resolves
// as `rejected` in O(1). The bench drives a light phase and a saturating
// phase and ASSERTS the bound live — if any sampled depth (or the
// service's own peak_queue_depth) ever exceeds queue_capacity, it exits
// non-zero. Shed counts come from the service's split counters
// (shed_queue_full / shed_quota, also "service.shed.*" metrics).
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "service/deployment_service.hpp"

namespace {

using namespace recloud;

std::string iso_now() {
    char buffer[32];
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    std::strftime(buffer, sizeof buffer, "%FT%TZ", &utc);
    return buffer;
}

service_request request_for(std::string scenario, std::uint64_t seed) {
    service_request request;
    request.scenario = std::move(scenario);
    request.tenant = "bench";
    request.app = application::k_of_n(2, 3);
    request.desired_reliability = 1.0;  // unreachable: the full budget runs
    request.max_search_time = std::chrono::seconds{5};
    request.seed = seed;
    return request;
}

struct phase_result {
    std::string name;
    std::size_t offered = 0;
    double inter_arrival_us = 0.0;
    double ms = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::size_t max_depth_sampled = 0;  ///< total across shards, at submits
    std::vector<std::size_t> depth_timeline;  ///< every 8th submission
};

phase_result run_phase(deployment_service& service,
                       const std::vector<std::string>& scenarios,
                       std::string name, std::size_t offered,
                       std::chrono::microseconds inter_arrival,
                       std::uint64_t seed_base) {
    phase_result result;
    result.name = std::move(name);
    result.offered = offered;
    result.inter_arrival_us = static_cast<double>(inter_arrival.count());

    std::vector<std::future<service_response>> futures;
    futures.reserve(offered);
    stopwatch watch;
    for (std::size_t i = 0; i < offered; ++i) {
        futures.push_back(service.submit(
            request_for(scenarios[i % scenarios.size()], seed_base + i)));
        const std::size_t depth = service.queue_depth();
        result.max_depth_sampled = std::max(result.max_depth_sampled, depth);
        if (i % 8 == 0) {
            result.depth_timeline.push_back(depth);
        }
        if (inter_arrival.count() > 0) {
            std::this_thread::sleep_for(inter_arrival);
        }
    }
    for (auto& future : futures) {
        const service_response response = future.get();
        if (response.status == request_status::completed) {
            ++result.completed;
        } else {
            ++result.shed;
        }
    }
    result.ms = watch.elapsed_ms();
    return result;
}

}  // namespace

int main() {
    using recloud::bench::full_scale;
    recloud::bench::print_header(
        "deployment-service open-loop load (sharded admission control)",
        "§2.2 service workflow; bounded queues under overload");

    service_options options;
    options.workers = 2;
    options.shards = 2;
    options.queue_capacity = 16;
    options.defaults.assessment_rounds = full_scale() ? 1000 : 100;
    options.defaults.max_iterations = full_scale() ? 40 : 6;
    options.defaults.deterministic_schedule = true;
    // CI scrapes the live introspection endpoint while this load runs:
    // RECLOUD_ADMIN_SOCKET names a Unix socket to serve /metrics and
    // /status on (scripts/validate_prometheus.py checks the scrape).
    if (const char* admin = std::getenv("RECLOUD_ADMIN_SOCKET");
        admin != nullptr && admin[0] != '\0') {
        recloud::obs::metrics_registry::global().set_enabled(true);
        options.admin_socket = admin;
        std::printf("admin endpoint: %s\n", admin);
    }
    deployment_service service{options};

    // Two scenario names on different shards so the open-loop stream
    // exercises the whole fleet, not one shard.
    const scenario_ptr snapshot = recloud::make_fat_tree_scenario(4);
    std::vector<std::string> scenarios{"dc-0"};
    service.add_scenario("dc-0", snapshot);
    for (int i = 1; i < 64; ++i) {
        const std::string candidate = "dc-" + std::to_string(i);
        if (service.shard_of(candidate) != service.shard_of(scenarios[0])) {
            service.add_scenario(candidate, snapshot);
            scenarios.push_back(candidate);
            break;
        }
    }

    const std::size_t light_n = full_scale() ? 200 : 60;
    const std::size_t burst_n = full_scale() ? 1000 : 300;
    std::vector<phase_result> phases;
    // Light: arrivals slower than the service rate — little to no shedding.
    phases.push_back(run_phase(service, scenarios, "light", light_n,
                               std::chrono::microseconds{5000}, 1));
    // Saturating: back-to-back arrivals — the queues must clamp at
    // capacity and the excess must shed, not pile up.
    phases.push_back(run_phase(service, scenarios, "saturating", burst_n,
                               std::chrono::microseconds{0}, 100'000));

    const recloud::service_stats stats = service.stats();
    const std::size_t bound = options.queue_capacity;  // per shard
    bool bounded = stats.peak_queue_depth <= bound;
    for (const phase_result& phase : phases) {
        // queue_depth() sums the shards, so the open-loop samples are
        // bounded by shards * capacity.
        bounded = bounded &&
                  phase.max_depth_sampled <= options.shards * bound;
    }

    std::printf("\n%-12s %8s %10s %10s %10s %12s\n", "phase", "offered",
                "completed", "shed", "ms", "max depth");
    for (const phase_result& phase : phases) {
        std::printf("%-12s %8zu %10llu %10llu %10.1f %12zu\n",
                    phase.name.c_str(), phase.offered,
                    static_cast<unsigned long long>(phase.completed),
                    static_cast<unsigned long long>(phase.shed), phase.ms,
                    phase.max_depth_sampled);
    }
    std::printf("peak shard queue depth %zu (capacity %zu)  shed: queue_full=%llu quota=%llu\n",
                stats.peak_queue_depth, bound,
                static_cast<unsigned long long>(stats.shed_queue_full),
                static_cast<unsigned long long>(stats.shed_quota));

    const char* path = "BENCH_service_load.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out, "{\n  \"context\": {\n");
    std::fprintf(out, "    \"date\": \"%s\",\n", iso_now().c_str());
    std::fprintf(out, "    \"num_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "    \"workers_per_shard\": %zu,\n", options.workers);
    std::fprintf(out, "    \"shards\": %zu,\n", options.shards);
    std::fprintf(out, "    \"queue_capacity\": %zu,\n", options.queue_capacity);
    std::fprintf(out, "    \"assessment_rounds\": %zu,\n",
                 options.defaults.assessment_rounds);
    std::fprintf(out, "    \"full_scale\": %s\n", full_scale() ? "true" : "false");
    std::fprintf(out, "  },\n  \"phases\": [\n");
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const phase_result& phase = phases[p];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"offered\": %zu, "
                     "\"inter_arrival_us\": %.0f, \"ms\": %.2f, "
                     "\"completed\": %llu, \"shed\": %llu, "
                     "\"throughput_rps\": %.1f, \"max_depth_sampled\": %zu, "
                     "\"depth_timeline\": [",
                     phase.name.c_str(), phase.offered, phase.inter_arrival_us,
                     phase.ms, static_cast<unsigned long long>(phase.completed),
                     static_cast<unsigned long long>(phase.shed),
                     phase.ms > 0.0 ? 1000.0 * static_cast<double>(phase.completed) / phase.ms
                                    : 0.0,
                     phase.max_depth_sampled);
        for (std::size_t i = 0; i < phase.depth_timeline.size(); ++i) {
            std::fprintf(out, "%s%zu", i == 0 ? "" : ", ",
                         phase.depth_timeline[i]);
        }
        std::fprintf(out, "]}%s\n", p + 1 < phases.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"totals\": {\n");
    std::fprintf(out, "    \"submitted\": %llu,\n",
                 static_cast<unsigned long long>(stats.submitted));
    std::fprintf(out, "    \"completed\": %llu,\n",
                 static_cast<unsigned long long>(stats.completed));
    std::fprintf(out, "    \"rejected\": %llu,\n",
                 static_cast<unsigned long long>(stats.rejected));
    std::fprintf(out, "    \"shed_queue_full\": %llu,\n",
                 static_cast<unsigned long long>(stats.shed_queue_full));
    std::fprintf(out, "    \"shed_quota\": %llu,\n",
                 static_cast<unsigned long long>(stats.shed_quota));
    std::fprintf(out, "    \"peak_queue_depth\": %zu,\n", stats.peak_queue_depth);
    std::fprintf(out, "    \"queue_bounded\": %s\n", bounded ? "true" : "false");
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);

    if (!bounded) {
        std::fprintf(stderr,
                     "FAIL: queue depth exceeded its bound (peak %zu > %zu)\n",
                     stats.peak_queue_depth, bound);
        return 1;
    }
    return 0;
}
