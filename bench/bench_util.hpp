// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series of one table or figure from the
// paper's evaluation (§4). By default the benches run at reduced budgets so
// the whole suite finishes in a few minutes; set RECLOUD_FULL=1 in the
// environment for paper-scale budgets (§4.1: Tmax = 30 s, 10^4 rounds,
// search sweeps up to 300 s).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "topology/fat_tree.hpp"
#include "util/stopwatch.hpp"

namespace recloud::bench {

/// True when RECLOUD_FULL=1: run paper-scale budgets.
inline bool full_scale() {
    const char* env = std::getenv("RECLOUD_FULL");
    return env != nullptr && std::string{env} == "1";
}

inline const std::vector<data_center_scale>& all_scales() {
    static const std::vector<data_center_scale> scales{
        data_center_scale::tiny, data_center_scale::small,
        data_center_scale::medium, data_center_scale::large};
    return scales;
}

/// Scales used by default; the large DC is included everywhere but callers
/// may choose to shrink per-scale budgets with default_scale_factor().
inline std::vector<data_center_scale> bench_scales() {
    return all_scales();
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s%s\n", paper_ref,
                full_scale() ? "  [RECLOUD_FULL=1: paper-scale budgets]"
                             : "  [reduced budgets; RECLOUD_FULL=1 for paper scale]");
    std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
    std::printf("================================================================\n");
}

/// Times a callable once and returns milliseconds.
template <typename F>
double time_ms(F&& fn) {
    stopwatch watch;
    fn();
    return watch.elapsed_ms();
}

}  // namespace recloud::bench
