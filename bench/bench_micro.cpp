// Micro-benchmarks (google-benchmark) for the inner-loop primitives every
// experiment leans on: sampling one round, routing-oracle queries, the
// per-round context setup, and fault-tree evaluation. Useful for spotting
// regressions that the table/figure benches would smear out.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "app/requirement_eval.hpp"
#include "assess/verdict_cache.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"
#include "search/neighbor.hpp"
#include "search/symmetry.hpp"

namespace {

using namespace recloud;

fat_tree_infrastructure& shared_infra(data_center_scale scale) {
    static auto tiny = fat_tree_infrastructure::build(data_center_scale::tiny);
    static auto medium = fat_tree_infrastructure::build(data_center_scale::medium);
    return scale == data_center_scale::tiny ? tiny : medium;
}

void bm_dagger_round(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 1};
    std::vector<component_id> failed;
    for (auto _ : state) {
        sampler.next_round(failed);
        benchmark::DoNotOptimize(failed.data());
    }
}
BENCHMARK(bm_dagger_round);

void bm_monte_carlo_round(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    monte_carlo_sampler sampler{infra.registry().probabilities(), 1};
    std::vector<component_id> failed;
    for (auto _ : state) {
        sampler.next_round(failed);
        benchmark::DoNotOptimize(failed.data());
    }
}
BENCHMARK(bm_monte_carlo_round);

void bm_round_context_setup(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 2};
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree()};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    for (auto _ : state) {
        rs.begin_round(failed);
        oracle.begin_round(rs);
        benchmark::DoNotOptimize(rs.epoch());
    }
}
BENCHMARK(bm_round_context_setup);

void bm_border_reachable(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 3};
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree()};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    rs.begin_round(failed);
    oracle.begin_round(rs);
    const auto& hosts = infra.topology().hosts;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.border_reachable(hosts[i]));
        i = (i + 37) % hosts.size();
    }
}
BENCHMARK(bm_border_reachable);

void bm_host_to_host(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 4};
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree()};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    rs.begin_round(failed);
    oracle.begin_round(rs);
    const auto& hosts = infra.topology().hosts;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            oracle.host_to_host(hosts[i], hosts[(i * 7 + 13) % hosts.size()]));
        i = (i + 41) % hosts.size();
    }
}
BENCHMARK(bm_host_to_host);

void bm_fault_tree_effective(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    round_state rs{infra.registry().size(), &infra.forest()};
    const std::vector<component_id> failed{infra.power().supplies[0]};
    const auto& hosts = infra.topology().hosts;
    std::size_t i = 0;
    for (auto _ : state) {
        rs.begin_round(failed);  // memoization reset each iteration
        benchmark::DoNotOptimize(rs.failed(hosts[i]));
        i = (i + 29) % hosts.size();
    }
}
BENCHMARK(bm_fault_tree_effective);

// ---- verdict cache (assess/verdict_cache.hpp) ---------------------------
//
// The route-and-check judge loop under realistic per-component failure
// probabilities (1e-3..1e-5 instead of the paper's stress-test ~1e-2):
// most dagger-sampled rounds then have an empty support-filtered failure
// set and the memoized path never touches the oracle. Rounds are
// pre-sampled once — the MapReduce master samples ahead of the judges too —
// so both arms measure judging, not sampling.

fat_tree_infrastructure realistic_infra_build(data_center_scale scale) {
    infrastructure_options options;
    options.probabilities.switch_mean = 2e-4;
    options.probabilities.switch_stddev = 5e-5;
    options.probabilities.other_mean = 5e-4;
    options.probabilities.other_stddev = 1e-4;
    options.probabilities.min_probability = 1e-5;
    options.probabilities.round_decimals = 6;
    return fat_tree_infrastructure::build(scale, options);
}

fat_tree_infrastructure& realistic_infra(data_center_scale scale) {
    switch (scale) {
        case data_center_scale::small: {
            static auto infra = realistic_infra_build(scale);
            return infra;
        }
        case data_center_scale::large: {
            static auto infra = realistic_infra_build(scale);
            return infra;
        }
        default: {
            static auto infra = realistic_infra_build(data_center_scale::medium);
            return infra;
        }
    }
}

std::vector<std::vector<component_id>> dagger_rounds_build(
    data_center_scale scale) {
    extended_dagger_sampler sampler{
        realistic_infra(scale).registry().probabilities(), 11};
    std::vector<std::vector<component_id>> rounds(std::size_t{1} << 14);
    for (auto& round : rounds) {
        sampler.next_round(round);
    }
    return rounds;
}

const std::vector<std::vector<component_id>>& dagger_rounds(
    data_center_scale scale) {
    switch (scale) {
        case data_center_scale::small: {
            static auto rounds = dagger_rounds_build(scale);
            return rounds;
        }
        case data_center_scale::large: {
            static auto rounds = dagger_rounds_build(scale);
            return rounds;
        }
        default: {
            static auto rounds = dagger_rounds_build(data_center_scale::medium);
            return rounds;
        }
    }
}

void bm_route_and_check(benchmark::State& state, data_center_scale scale,
                        bool cached) {
    auto& infra = realistic_infra(scale);
    const auto& rounds = dagger_rounds(scale);
    const application app = application::k_of_n(4, 5);
    deployment_plan plan;
    const auto& hosts = infra.topology().hosts;
    for (std::uint32_t i = 0; i < app.total_instances(); ++i) {
        plan.hosts.push_back(hosts[i * hosts.size() / app.total_instances()]);
    }
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree(), infra.links()};
    requirement_evaluator evaluator{app, plan};
    std::optional<verdict_support> support;
    std::optional<verdict_cache> cache;
    if (cached) {
        support.emplace(infra.topology(), infra.registry().size(),
                        &infra.forest(), infra.links());
        cache.emplace(*support);
        cache->bind(app, plan);
    }
    verdict_cache* vc = cache ? &*cache : nullptr;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cached_reliable_in_round(vc, rounds[i], rs, oracle, plan, evaluator));
        i = (i + 1) & (rounds.size() - 1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    if (vc != nullptr) {
        const verdict_cache_stats& stats = vc->stats();
        if (stats.rounds > 0) {
            state.counters["empty_frac"] =
                static_cast<double>(stats.empty_hits) /
                static_cast<double>(stats.rounds);
        }
        state.counters["hit_rate"] = stats.hit_rate();
        state.counters["support"] = static_cast<double>(stats.support_size);
    }
}
BENCHMARK_CAPTURE(bm_route_and_check, small_uncached, data_center_scale::small,
                  false);
BENCHMARK_CAPTURE(bm_route_and_check, small_cached, data_center_scale::small,
                  true);
BENCHMARK_CAPTURE(bm_route_and_check, medium_uncached,
                  data_center_scale::medium, false);
BENCHMARK_CAPTURE(bm_route_and_check, medium_cached, data_center_scale::medium,
                  true);
BENCHMARK_CAPTURE(bm_route_and_check, large_uncached, data_center_scale::large,
                  false);
BENCHMARK_CAPTURE(bm_route_and_check, large_cached, data_center_scale::large,
                  true);

// ---- telemetry overhead (obs/metrics.hpp + obs/trace.hpp) ---------------
//
// Acceptance gate for the observability layer: with a span + counter site
// compiled into the judged-round loop but telemetry DISABLED, the medium
// route-and-check loop must stay within 2% of the uninstrumented baseline
// (each disabled site costs one relaxed load + predictable branch). The
// enabled arm is informational: it bounds a full capture's per-round cost
// (one ring slot store + one sharded counter bump).

enum class obs_mode { baseline, disabled, enabled };

void bm_route_and_check_obs(benchmark::State& state, obs_mode mode) {
    auto& infra = realistic_infra(data_center_scale::medium);
    const auto& rounds = dagger_rounds(data_center_scale::medium);
    const application app = application::k_of_n(4, 5);
    deployment_plan plan;
    const auto& hosts = infra.topology().hosts;
    for (std::uint32_t i = 0; i < app.total_instances(); ++i) {
        plan.hosts.push_back(hosts[i * hosts.size() / app.total_instances()]);
    }
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree(), infra.links()};
    requirement_evaluator evaluator{app, plan};
    auto& registry = obs::metrics_registry::global();
    auto& tracer = obs::tracer::global();
    const bool was_enabled = registry.enabled();
    registry.set_enabled(mode == obs_mode::enabled);
    if (mode == obs_mode::enabled) {
        tracer.start();
    } else {
        tracer.stop();
    }
    std::size_t i = 0;
    for (auto _ : state) {
        if (mode == obs_mode::baseline) {
            benchmark::DoNotOptimize(cached_reliable_in_round(
                nullptr, rounds[i], rs, oracle, plan, evaluator));
        } else {
            RECLOUD_SPAN("bench.judge_round");
            RECLOUD_COUNTER_INC("bench.rounds_judged");
            benchmark::DoNotOptimize(cached_reliable_in_round(
                nullptr, rounds[i], rs, oracle, plan, evaluator));
        }
        i = (i + 1) & (rounds.size() - 1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    tracer.stop();
    tracer.reset();
    registry.reset();
    registry.set_enabled(was_enabled);
}
BENCHMARK_CAPTURE(bm_route_and_check_obs, medium_baseline, obs_mode::baseline);
BENCHMARK_CAPTURE(bm_route_and_check_obs, medium_obs_disabled,
                  obs_mode::disabled);
BENCHMARK_CAPTURE(bm_route_and_check_obs, medium_obs_enabled,
                  obs_mode::enabled);

void bm_symmetry_signature(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    const symmetry_checker checker{infra.topology(), infra.registry(),
                                   &infra.forest()};
    neighbor_generator gen{infra.topology(), anti_affinity::none, 9};
    const deployment_plan plan = gen.initial_plan(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(checker.signature(plan));
    }
}
BENCHMARK(bm_symmetry_signature);

void bm_neighbor_generation(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    neighbor_generator gen{infra.topology(), anti_affinity::rack, 10};
    deployment_plan plan = gen.initial_plan(5);
    for (auto _ : state) {
        plan = gen.neighbor_of(plan);
        benchmark::DoNotOptimize(plan.hosts.data());
    }
}
BENCHMARK(bm_neighbor_generation);

}  // namespace

BENCHMARK_MAIN();
