// Micro-benchmarks (google-benchmark) for the inner-loop primitives every
// experiment leans on: sampling one round, routing-oracle queries, the
// per-round context setup, and fault-tree evaluation. Useful for spotting
// regressions that the table/figure benches would smear out.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/recloud.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"
#include "search/neighbor.hpp"
#include "search/symmetry.hpp"

namespace {

using namespace recloud;

fat_tree_infrastructure& shared_infra(data_center_scale scale) {
    static auto tiny = fat_tree_infrastructure::build(data_center_scale::tiny);
    static auto medium = fat_tree_infrastructure::build(data_center_scale::medium);
    return scale == data_center_scale::tiny ? tiny : medium;
}

void bm_dagger_round(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 1};
    std::vector<component_id> failed;
    for (auto _ : state) {
        sampler.next_round(failed);
        benchmark::DoNotOptimize(failed.data());
    }
}
BENCHMARK(bm_dagger_round);

void bm_monte_carlo_round(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    monte_carlo_sampler sampler{infra.registry().probabilities(), 1};
    std::vector<component_id> failed;
    for (auto _ : state) {
        sampler.next_round(failed);
        benchmark::DoNotOptimize(failed.data());
    }
}
BENCHMARK(bm_monte_carlo_round);

void bm_round_context_setup(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 2};
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree()};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    for (auto _ : state) {
        rs.begin_round(failed);
        oracle.begin_round(rs);
        benchmark::DoNotOptimize(rs.epoch());
    }
}
BENCHMARK(bm_round_context_setup);

void bm_border_reachable(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 3};
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree()};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    rs.begin_round(failed);
    oracle.begin_round(rs);
    const auto& hosts = infra.topology().hosts;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.border_reachable(hosts[i]));
        i = (i + 37) % hosts.size();
    }
}
BENCHMARK(bm_border_reachable);

void bm_host_to_host(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    extended_dagger_sampler sampler{infra.registry().probabilities(), 4};
    round_state rs{infra.registry().size(), &infra.forest()};
    fat_tree_routing oracle{infra.tree()};
    std::vector<component_id> failed;
    sampler.next_round(failed);
    rs.begin_round(failed);
    oracle.begin_round(rs);
    const auto& hosts = infra.topology().hosts;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            oracle.host_to_host(hosts[i], hosts[(i * 7 + 13) % hosts.size()]));
        i = (i + 41) % hosts.size();
    }
}
BENCHMARK(bm_host_to_host);

void bm_fault_tree_effective(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    round_state rs{infra.registry().size(), &infra.forest()};
    const std::vector<component_id> failed{infra.power().supplies[0]};
    const auto& hosts = infra.topology().hosts;
    std::size_t i = 0;
    for (auto _ : state) {
        rs.begin_round(failed);  // memoization reset each iteration
        benchmark::DoNotOptimize(rs.failed(hosts[i]));
        i = (i + 29) % hosts.size();
    }
}
BENCHMARK(bm_fault_tree_effective);

void bm_symmetry_signature(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    const symmetry_checker checker{infra.topology(), infra.registry(),
                                   &infra.forest()};
    neighbor_generator gen{infra.topology(), anti_affinity::none, 9};
    const deployment_plan plan = gen.initial_plan(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(checker.signature(plan));
    }
}
BENCHMARK(bm_symmetry_signature);

void bm_neighbor_generation(benchmark::State& state) {
    auto& infra = shared_infra(data_center_scale::medium);
    neighbor_generator gen{infra.topology(), anti_affinity::rack, 10};
    deployment_plan plan = gen.initial_plan(5);
    for (auto _ : state) {
        plan = gen.neighbor_of(plan);
        benchmark::DoNotOptimize(plan.hosts.data());
    }
}
BENCHMARK(bm_neighbor_generation);

}  // namespace

BENCHMARK_MAIN();
