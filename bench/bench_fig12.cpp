// Figure 12: parallel execution.
//
// Assessment time with the MapReduce-style execution engine for 1-4 worker
// nodes and 10^3 / 10^4 / 10^5 rounds on the large data center. The paper
// finds that parallel execution only pays off for very large round counts:
// at small counts, serialization/transfer and per-worker context setup eat
// the gains.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "exec/engine.hpp"
#include "sampling/extended_dagger.hpp"
#include "search/neighbor.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Figure 12: parallel execution", "Figure 12, §4.2.4");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::medium;
    auto infra = fat_tree_infrastructure::build(scale);
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("data center: %s, host cpu cores: %u\n", to_string(scale), cores);
    if (cores < 4) {
        std::printf("NOTE: fewer cores than workers — wall-clock speedup is\n"
                    "      physically impossible on this host; the series then\n"
                    "      measure the engine's serialization + context-setup\n"
                    "      overhead (the paper's small-round-count effect).\n");
    }
    std::printf("\n");

    const std::vector<std::size_t> round_counts =
        bench::full_scale()
            ? std::vector<std::size_t>{1000, 10000, 100000}
            : std::vector<std::size_t>{1000, 10000, 50000};

    const oracle_factory factory = [&infra] {
        return std::make_unique<fat_tree_routing>(infra.tree());
    };

    // Two application weights. The paper's Java route-and-check was the
    // dominant per-round cost, so workers scaled; this C++ fat-tree oracle
    // answers a 4-of-5 round in ~1 us, leaving the (sequential) master
    // sampling + serialization as the bottleneck — the flat series below.
    // The microservice app restores the paper's compute balance: its
    // route-and-check is ~50x heavier per round than the master's work, so
    // worker scaling appears exactly where the paper sees it.
    struct workload {
        const char* label;
        application app;
    };
    const workload workloads[] = {
        {"4-of-5 (paper default)", application::k_of_n(4, 5)},
        {"microservice 5-10", application::microservice(5, 10, 4, 5)},
    };

    for (const auto& w : workloads) {
        neighbor_generator neighbors{infra.topology(), anti_affinity::none, 31};
        const deployment_plan plan =
            neighbors.initial_plan(w.app.total_instances());
        std::printf("--- %s ---\n", w.label);
        std::printf("%-10s", "rounds");
        for (int workers = 1; workers <= 4; ++workers) {
            std::printf(" %9d-wkr", workers);
        }
        std::printf("   (assessment time, ms)\n");
        for (const std::size_t rounds : round_counts) {
            std::printf("%-10zu", rounds);
            for (std::size_t workers = 1; workers <= 4; ++workers) {
                extended_dagger_sampler sampler{infra.registry().probabilities(),
                                                3};
                engine_backend backend{
                    infra.registry().size(), &infra.forest(), factory, sampler,
                    {.workers = workers, .batch_rounds = 1000}};
                // Warm-up the pool threads, then measure.
                (void)backend.assess(w.app, plan, 500);
                const double ms = bench::time_ms(
                    [&] { (void)backend.assess(w.app, plan, rounds); });
                std::printf(" %13.1f", ms);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf(
        "paper shape: little/no benefit at 10^3-10^4 rounds (serialization &\n"
        "             context setup dominate); parallel workers pay off once\n"
        "             route-and-check dominates (10^5 rounds / heavy app)\n");
    return 0;
}
