// Ablation B: network-transformation symmetry check on vs off (§3.3.1
// Step 3). With the check on, neighbors that are equivalent under data
// center symmetry + probability classes are skipped without assessment,
// letting the same time budget cover more *distinct* plans.
//
// To make the symmetry pronounced (as in a freshly-provisioned data
// center), probabilities are uniform per component type here; the paper's
// per-component noise makes skips rarer but the mechanism identical.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Ablation B: symmetry check (network transformations)",
                        "design choice of §3.3.1 step 3");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::small;
    auto infra = fat_tree_infrastructure::build(scale);
    // Uniform per-type probabilities: the symmetric-fabric regime.
    for (component_id id = 0; id < infra.registry().size(); ++id) {
        switch (infra.registry().kind(id)) {
            case component_kind::external:
                break;
            case component_kind::host:
            case component_kind::power_supply:
                infra.registry().set_probability(id, 0.01);
                break;
            default:
                infra.registry().set_probability(id, 0.008);
        }
    }
    std::printf("data center: %s (uniform per-type probabilities)\n\n",
                to_string(scale));

    const application app = application::k_of_n(4, 5);
    const double budget_seconds = bench::full_scale() ? 15.0 : 2.0;

    std::printf("%-10s %6s %14s %12s %12s %10s\n", "symmetry", "seed",
                "reliability", "generated", "assessed", "skipped");
    for (const bool use_symmetry : {true, false}) {
        for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
            recloud_options options;
            options.assessment_rounds = 10000;
            options.use_symmetry = use_symmetry;
            options.seed = seed;
            re_cloud system{infra, options};
            deployment_request request;
            request.app = app;
            request.desired_reliability = 1.0;
            request.max_search_time = std::chrono::milliseconds{
                static_cast<long long>(budget_seconds * 1000)};
            const deployment_response response = system.find_deployment(request);
            std::printf("%-10s %6llu %14.5f %12zu %12zu %10zu\n",
                        use_symmetry ? "on" : "off",
                        static_cast<unsigned long long>(seed),
                        response.stats.reliability,
                        response.search.plans_generated,
                        response.search.plans_evaluated,
                        response.search.symmetric_skips);
        }
    }
    std::printf("\nexpected: with symmetry on, many generated neighbors are\n"
                "          skipped unassessed, so the budget covers more\n"
                "          distinct placements per second\n");
    return 0;
}
