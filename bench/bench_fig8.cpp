// Figure 8: accuracy of deployment assessment.
//
// 95% confidence interval width (Eq. 3) of the assessed reliability score
// versus the number of sampling rounds, for 1-of-2 / 2-of-3 / 4-of-5 /
// 8-of-10 redundancy in the large data center. The paper finds 10^4 rounds
// lands the CIW around 1e-4.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/extended_dagger.hpp"
#include "search/neighbor.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Figure 8: accuracy of deployment assessment",
                        "Figure 8, §4.2.1");

    const data_center_scale scale =
        bench::full_scale() ? data_center_scale::large : data_center_scale::medium;
    auto infra = fat_tree_infrastructure::build(scale);
    std::printf("data center: %s\n\n", to_string(scale));

    struct setting {
        int k;
        int n;
    };
    const std::vector<setting> settings{{1, 2}, {2, 3}, {4, 5}, {8, 10}};
    const std::vector<std::size_t> round_counts =
        bench::full_scale()
            ? std::vector<std::size_t>{1000, 3000, 10000, 30000, 100000}
            : std::vector<std::size_t>{1000, 3000, 10000, 30000};

    fat_tree_routing oracle{infra.tree()};
    extended_dagger_sampler sampler{infra.registry().probabilities(), 7};
    reliability_assessor assessor{infra.registry().size(), &infra.forest(),
                                  oracle, sampler};
    neighbor_generator neighbors{infra.topology(), anti_affinity::rack, 11};

    std::printf("%-12s %10s %14s %14s\n", "redundancy", "rounds", "reliability",
                "CIW95");
    for (const auto& [k, n] : settings) {
        const application app = application::k_of_n(k, n);
        const deployment_plan plan = neighbors.initial_plan(n);
        for (const std::size_t rounds : round_counts) {
            const assessment_stats stats = assessor.assess(app, plan, rounds);
            std::printf("%d-of-%-8d %10zu %14.5f %14.2e\n", k, n, rounds,
                        stats.reliability, stats.ciw95);
        }
        std::printf("\n");
    }
    std::printf("paper shape: CIW95 decreases with rounds (~1/sqrt(n));\n"
                "             10^4 rounds -> CIW95 around 1e-3..1e-4\n");
    return 0;
}
