// Figure 10: time to evolve and assess one deployment plan, single-layer
// application, across data center scales and redundancy settings —
// WITHOUT the help of network transformations (symmetry off), as in the
// paper. The paper reports <= 270 ms per plan at the large scale with 10^4
// rounds, and that K/N barely matters (context setup per round dominates).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/extended_dagger.hpp"
#include "search/neighbor.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Figure 10: evolve+assess time per plan (K-of-N)",
                        "Figure 10, §4.2.3");

    struct setting {
        int k;
        int n;
    };
    const std::vector<setting> settings{{1, 2}, {2, 3}, {4, 5}, {8, 10}};
    const std::size_t rounds = 10000;
    const int plans_per_cell = bench::full_scale() ? 10 : 5;

    std::printf("%-8s %-12s %18s\n", "scale", "redundancy",
                "evolve+assess(ms)");
    for (const data_center_scale scale : bench::all_scales()) {
        auto infra = fat_tree_infrastructure::build(scale);
        fat_tree_routing oracle{infra.tree()};
        extended_dagger_sampler sampler{infra.registry().probabilities(), 3};
        reliability_assessor assessor{infra.registry().size(), &infra.forest(),
                                      oracle, sampler};
        for (const auto& [k, n] : settings) {
            const application app = application::k_of_n(k, n);
            neighbor_generator neighbors{infra.topology(), anti_affinity::none,
                                         17};
            deployment_plan plan = neighbors.initial_plan(n);
            // Warm-up: one assessment to page in the caches.
            (void)assessor.assess(app, plan, 1000);

            const double total_ms = bench::time_ms([&] {
                for (int p = 0; p < plans_per_cell; ++p) {
                    plan = neighbors.neighbor_of(plan);  // evolve
                    (void)assessor.assess(app, plan, rounds);  // assess
                }
            });
            std::printf("%-8s %d-of-%-8d %18.1f\n", to_string(scale), k, n,
                        total_ms / plans_per_cell);
        }
    }
    std::printf("\npaper shape: <= ~270 ms per plan at large scale; K and N have\n"
                "             little impact (per-round context setup dominates)\n");
    return 0;
}
