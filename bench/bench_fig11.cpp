// Figure 11: complex application structures.
//
// Time to evolve and assess one plan for multi-layer applications (1-4
// layers, 4-of-5 per layer) and microservice applications ("X-Y": X fully
// meshed cores, Y supports per core, 4-of-5 each), across data center
// scales, without network transformations. The paper reports that the
// number of layers barely matters and that even the 10-20 structure (210
// components) stays under 1 s per plan at the large scale.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sampling/extended_dagger.hpp"
#include "search/neighbor.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Figure 11: complex application structures",
                        "Figure 11, §4.2.3");

    struct structure {
        std::string label;
        application app;
    };
    std::vector<structure> structures;
    for (int layers = 1; layers <= 4; ++layers) {
        structures.push_back({std::to_string(layers) + "-layer",
                              application::layered(layers, 4, 5)});
    }
    structures.push_back({"micro(3-5)", application::microservice(3, 5, 4, 5)});
    structures.push_back({"micro(5-10)", application::microservice(5, 10, 4, 5)});
    structures.push_back({"micro(10-20)", application::microservice(10, 20, 4, 5)});

    const std::size_t rounds = 10000;

    std::printf("%-8s %-14s %8s %10s %18s\n", "scale", "structure", "#comps",
                "#insts", "evolve+assess(ms)");
    for (const data_center_scale scale : bench::all_scales()) {
        auto infra = fat_tree_infrastructure::build(scale);
        fat_tree_routing oracle{infra.tree()};
        extended_dagger_sampler sampler{infra.registry().probabilities(), 5};
        reliability_assessor assessor{infra.registry().size(), &infra.forest(),
                                      oracle, sampler};
        for (const auto& s : structures) {
            const std::uint32_t instances = s.app.total_instances();
            if (instances > infra.topology().hosts.size()) {
                std::printf("%-8s %-14s %8zu %10u %18s\n", to_string(scale),
                            s.label.c_str(), s.app.components().size(), instances,
                            "(too large)");
                continue;
            }
            // The biggest structures get fewer repetitions by default.
            const int plans_per_cell =
                bench::full_scale() ? 5 : (instances > 200 ? 1 : 3);
            neighbor_generator neighbors{infra.topology(), anti_affinity::none,
                                         23};
            deployment_plan plan = neighbors.initial_plan(instances);
            (void)assessor.assess(s.app, plan, 500);  // warm-up

            const double total_ms = bench::time_ms([&] {
                for (int p = 0; p < plans_per_cell; ++p) {
                    plan = neighbors.neighbor_of(plan);
                    (void)assessor.assess(s.app, plan, rounds);
                }
            });
            std::printf("%-8s %-14s %8zu %10u %18.1f\n", to_string(scale),
                        s.label.c_str(), s.app.components().size(), instances,
                        total_ms / plans_per_cell);
        }
    }
    std::printf("\npaper shape: layer count has little impact; micro(10-20)\n"
                "             (210 components) < ~1 s per plan at large scale\n");
    return 0;
}
