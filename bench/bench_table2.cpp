// Table 2: data center topologies with external connectivity.
//
// Regenerates the paper's table (k-port fat-trees at four scales with a
// dedicated border pod and 5 shared power supplies) and reports topology
// construction time — the substrate cost that every other experiment pays.
#include <cstdio>

#include "bench_util.hpp"
#include "core/recloud.hpp"
#include "topology/stats.hpp"

int main() {
    using namespace recloud;
    bench::print_header("Table 2: data center topologies", "Table 2, §4.1");

    std::printf("%-8s %7s %7s %7s %7s %8s %8s %8s %10s %12s\n", "scale", "k",
                "core", "agg", "edge", "border", "hosts", "power", "links",
                "build(ms)");
    for (const data_center_scale scale : bench::all_scales()) {
        double build_ms = 0.0;
        topology_stats stats;
        std::size_t supplies = 0;
        build_ms = bench::time_ms([&] {
            const auto infra = fat_tree_infrastructure::build(scale);
            stats = compute_topology_stats(infra.topology());
            supplies = infra.power().supplies.size();
        });
        std::printf("%-8s %7d %7zu %7zu %7zu %8zu %8zu %8zu %10zu %12.1f\n",
                    to_string(scale), fat_tree_k_for(scale), stats.core_switches,
                    stats.aggregation_switches, stats.edge_switches,
                    stats.border_switches, stats.hosts, supplies, stats.links,
                    build_ms);
    }
    std::printf("\npaper values: tiny 16/28/28/4/112, small 64/120/120/8/960,\n"
                "              medium 144/276/276/12/3312, large 576/1128/1128/24/27072\n");
    return 0;
}
