#!/usr/bin/env python3
"""CI validator for reCloud observability artifacts.

Checks that a Chrome trace-event export (obs/trace.hpp) is loadable and
well-formed — the same structural requirements ui.perfetto.dev imposes —
and, optionally, that a search-timeline JSONL (obs/timeline.hpp) parses
line by line with the expected record shapes.

Usage:
    validate_trace.py TRACE_JSON [--timeline TIMELINE_JSONL]
                      [--require-span PREFIX ...] [--min-pids N]

Understands the full event set the exporter emits: metadata ("M":
process_name / thread_name), complete spans ("X"), and flow start/finish
("s"/"f") pairs that stitch master dispatch spans to worker batch spans
across processes. --min-pids asserts the trace spans at least N distinct
processes (a harvested multi-process capture).

Exits non-zero with a message on the first violation. Stdlib only.
"""

import argparse
import json
import sys

BUILD_KEYS = {"git", "compiler", "build_type", "sanitizer"}


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path: str, required_spans: list[str],
                   min_pids: int) -> None:
    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)

    if not isinstance(trace, dict):
        fail(f"{path}: top level must be an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")

    other = trace.get("otherData")
    if not isinstance(other, dict):
        fail(f"{path}: otherData missing")
    build = other.get("build")
    if not isinstance(build, dict) or not BUILD_KEYS <= build.keys():
        fail(f"{path}: otherData.build must carry {sorted(BUILD_KEYS)}")
    if not isinstance(other.get("dropped_events"), int):
        fail(f"{path}: otherData.dropped_events must be an integer")

    span_names = set()
    span_pids = set()
    thread_names = 0
    flow_starts = set()
    flow_finishes = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") not in ("thread_name", "process_name"):
                fail(f"{path}: traceEvents[{i}]: unexpected metadata "
                     f"{event.get('name')!r}")
            thread_names += 1
        elif ph == "X":
            for key, kind in (("name", str), ("ts", (int, float)),
                              ("dur", (int, float)), ("pid", int),
                              ("tid", int)):
                if not isinstance(event.get(key), kind):
                    fail(f"{path}: traceEvents[{i}] missing/invalid {key!r}")
            if event["dur"] < 0:
                fail(f"{path}: traceEvents[{i}] has negative duration")
            span_names.add(event["name"])
            span_pids.add(event["pid"])
        elif ph in ("s", "f"):
            for key, kind in (("name", str), ("id", (str, int)),
                              ("ts", (int, float)), ("pid", int),
                              ("tid", int), ("cat", str)):
                if not isinstance(event.get(key), kind):
                    fail(f"{path}: traceEvents[{i}] missing/invalid {key!r}")
            if ph == "f":
                if event.get("bp") != "e":
                    fail(f"{path}: traceEvents[{i}]: flow finish must bind "
                         "to its enclosing slice (bp='e')")
                flow_finishes.add(event["id"])
            else:
                flow_starts.add(event["id"])
        else:
            fail(f"{path}: traceEvents[{i}]: unknown phase {ph!r}")

    if thread_names == 0:
        fail(f"{path}: no thread_name metadata events")
    if not span_names:
        fail(f"{path}: no complete ('X') span events")
    # A finish without its start renders as a dangling arrow; starts without
    # finishes are fine (the worker span may have been dropped by its ring).
    unmatched = flow_finishes - flow_starts
    if unmatched:
        fail(f"{path}: flow finishes without a start: {sorted(unmatched)[:8]}")
    if len(span_pids) < min_pids:
        fail(f"{path}: spans cover {len(span_pids)} process(es), "
             f"need >= {min_pids} (pids: {sorted(span_pids)})")
    for prefix in required_spans:
        if not any(name.startswith(prefix) for name in span_names):
            fail(f"{path}: no span named {prefix!r}* captured "
                 f"(have: {sorted(span_names)})")

    stitched = len(flow_starts & flow_finishes)
    print(f"validate_trace: OK: {path}: {len(events)} events, "
          f"{len(span_names)} distinct spans, {len(span_pids)} process(es), "
          f"{stitched} stitched flows, "
          f"{other['dropped_events']} dropped")


def validate_timeline(path: str) -> None:
    iterations = 0
    heartbeats = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{path}:{lineno}: not valid JSON: {error}")
            if lineno == 1:
                if record.get("type") != "build" or not (
                        isinstance(record.get("build"), dict)
                        and BUILD_KEYS <= record["build"].keys()):
                    fail(f"{path}:1: first record must be the build line")
                continue
            kind = record.get("kind")
            if kind is None:
                fail(f"{path}:{lineno}: record has no 'kind'")
            for key in ("elapsed_seconds", "temperature", "iteration"):
                if key not in record:
                    fail(f"{path}:{lineno}: missing {key!r}")
            if kind == "heartbeat":
                heartbeats += 1
            else:
                iterations += 1

    if iterations == 0:
        fail(f"{path}: no iteration records")
    print(f"validate_trace: OK: {path}: {iterations} iteration records, "
          f"{heartbeats} heartbeats")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--timeline", help="search timeline JSONL to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a span with this name prefix exists")
    parser.add_argument("--min-pids", type=int, default=1, metavar="N",
                        help="fail unless spans cover at least N distinct "
                             "pids (default 1)")
    args = parser.parse_args()

    validate_trace(args.trace, args.require_span, args.min_pids)
    if args.timeline:
        validate_timeline(args.timeline)


if __name__ == "__main__":
    main()
