#!/usr/bin/env python3
"""CI validator for the admin endpoint's Prometheus text exposition.

Checks a scrape of GET /metrics (obs/admin_server.hpp) against the text
exposition format (v0.0.4) rules a real Prometheus server enforces:

  * every sample belongs to a family announced by a single # TYPE line,
    and a family's samples are contiguous (no interleaving);
  * metric and label names match the Prometheus grammar;
  * histogram families expose _bucket/_sum/_count, bucket counts are
    cumulative (non-decreasing in le order), the le="+Inf" bucket exists
    and equals _count, for every label set;
  * counter/gauge samples carry a single numeric value per label set.

Usage:
    validate_prometheus.py SCRAPE_TXT [--require FAMILY_PREFIX ...]
                           [--min-samples N]

Exits non-zero with a message on the first violation. Stdlib only.
"""

import argparse
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+(-?\d+))?$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(message: str) -> None:
    print(f"validate_prometheus: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_value(text: str, where: str) -> float:
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: not a number: {text!r}")
    return 0.0  # unreachable


def family_of(sample_name: str, declared: dict[str, str]) -> str:
    """Maps a sample name to its declared family (histogram samples use
    the _bucket/_sum/_count suffixes of their family's name)."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) == "histogram":
                return base
    return ""


def split_labels(text: str, where: str) -> tuple[tuple[str, str], ...]:
    if not text:
        return ()
    labels = []
    rest = text
    while rest:
        match = LABEL_RE.match(rest)
        if match is None:
            fail(f"{where}: malformed labels: {{{text}}}")
        labels.append((match.group(1), match.group(2)))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            fail(f"{where}: malformed labels: {{{text}}}")
    names = [name for name, _ in labels]
    if len(names) != len(set(names)):
        fail(f"{where}: duplicate label name in {{{text}}}")
    return tuple(sorted(labels))


def validate(path: str, required: list[str], min_samples: int) -> None:
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    declared: dict[str, str] = {}   # family -> type
    seen_after: set[str] = set()    # families whose sample block has ended
    current = ""
    samples = 0
    # histogram family -> label set -> {"buckets": [(le, v)...],
    #                                   "sum": v, "count": v}
    histograms: dict[str, dict[tuple, dict]] = {}
    # (family, labels) -> count, to reject duplicate counter/gauge samples
    scalar_seen: set[tuple] = set()

    for lineno, line in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(f"{where}: malformed TYPE line")
                name, kind = parts[2], parts[3]
                if not METRIC_RE.match(name):
                    fail(f"{where}: invalid metric name {name!r}")
                if kind not in TYPES:
                    fail(f"{where}: unknown type {kind!r}")
                if name in declared:
                    fail(f"{where}: duplicate TYPE for {name}")
                if current and current != name:
                    seen_after.add(current)
                declared[name] = kind
                current = name
            continue  # HELP and comments are free-form

        match = SAMPLE_RE.match(line)
        if match is None:
            fail(f"{where}: malformed sample line: {line!r}")
        sample_name, label_text, value_text = (match.group(1),
                                               match.group(2) or "",
                                               match.group(3))
        family = family_of(sample_name, declared)
        if not family:
            fail(f"{where}: sample {sample_name!r} has no TYPE declaration")
        if family != current:
            if family in seen_after:
                fail(f"{where}: family {family} interleaved with others")
            seen_after.add(current)
            current = family
        value = parse_value(value_text, where)
        labels = split_labels(label_text, where)
        samples += 1

        kind = declared[family]
        if kind == "histogram":
            series = histograms.setdefault(family, {})
            le = dict(labels).get("le")
            key = tuple(kv for kv in labels if kv[0] != "le")
            entry = series.setdefault(key, {"buckets": [], "sum": None,
                                            "count": None})
            if sample_name == family + "_bucket":
                if le is None:
                    fail(f"{where}: histogram bucket without le label")
                entry["buckets"].append((le, value, where))
            elif sample_name == family + "_sum":
                entry["sum"] = value
            elif sample_name == family + "_count":
                entry["count"] = value
            else:
                fail(f"{where}: {sample_name!r} is not a histogram series")
        else:
            if dict(labels).get("le") is not None:
                fail(f"{where}: 'le' label outside a histogram")
            key = (family, labels)
            if key in scalar_seen:
                fail(f"{where}: duplicate sample for {family}{labels}")
            scalar_seen.add(key)
            if value < 0 and kind == "counter":
                fail(f"{where}: negative counter {family}")

    for family, series in histograms.items():
        for key, entry in series.items():
            buckets = entry["buckets"]
            if not buckets:
                fail(f"{path}: histogram {family}{dict(key)} has no buckets")
            last = -1.0
            inf_value = None
            for le, value, where in buckets:
                if value < last:
                    fail(f"{where}: bucket counts not cumulative in {family}")
                last = value
                if le == "+Inf":
                    inf_value = value
            if inf_value is None:
                fail(f"{path}: histogram {family}{dict(key)} lacks le=\"+Inf\"")
            if entry["count"] is None or entry["sum"] is None:
                fail(f"{path}: histogram {family}{dict(key)} lacks _sum/_count")
            if inf_value != entry["count"]:
                fail(f"{path}: histogram {family}{dict(key)}: le=\"+Inf\" "
                     f"({inf_value}) != _count ({entry['count']})")

    if samples < min_samples:
        fail(f"{path}: only {samples} samples, need >= {min_samples}")
    for prefix in required:
        if not any(name.startswith(prefix) for name in declared):
            fail(f"{path}: no metric family starting with {prefix!r} "
                 f"(have: {sorted(declared)[:12]}...)")

    print(f"validate_prometheus: OK: {path}: {len(declared)} families, "
          f"{samples} samples, {len(histograms)} histogram(s)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scrape", help="saved GET /metrics response body")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a family with this prefix exists")
    parser.add_argument("--min-samples", type=int, default=1, metavar="N",
                        help="fail when fewer than N samples total")
    args = parser.parse_args()
    validate(args.scrape, args.require, args.min_samples)


if __name__ == "__main__":
    main()
