#include "report/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "exec/engine.hpp"
#include "obs/build_info.hpp"

namespace recloud {
namespace {

/// Prints a double with enough digits to round-trip, without trailing cruft.
/// NaN and infinity have no JSON literal — they become null (printing them
/// raw would emit "nan"/"inf" and break every strict parser downstream).
std::string number(double value) {
    if (!std::isfinite(value)) {
        return "null";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    return buffer;
}

}  // namespace

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
    return out;
}

std::string to_json(const assessment_stats& stats) {
    std::ostringstream out;
    out << "{\"rounds\":" << stats.rounds << ",\"reliable\":" << stats.reliable
        << ",\"reliability\":" << number(stats.reliability)
        << ",\"variance\":" << number(stats.variance)
        << ",\"ciw95\":" << number(stats.ciw95) << "}";
    return out.str();
}

std::string to_json(const engine_stats& stats) {
    std::ostringstream out;
    out << "{\"batches\":" << stats.batches
        << ",\"dispatches\":" << stats.dispatches
        << ",\"retries\":" << stats.retries
        << ",\"redispatches\":" << stats.redispatches
        << ",\"degraded\":" << stats.degraded
        << ",\"worker_crashes\":" << stats.worker_crashes
        << ",\"worker_respawns\":" << stats.worker_respawns
        << ",\"deadline_misses\":" << stats.deadline_misses
        << ",\"invalid_frames\":" << stats.invalid_frames
        << ",\"bytes_sent\":" << stats.bytes_sent
        << ",\"bytes_received\":" << stats.bytes_received
        << ",\"worker_failures\":[";
    for (std::size_t w = 0; w < stats.worker_failures.size(); ++w) {
        if (w > 0) {
            out << ",";
        }
        out << stats.worker_failures[w];
    }
    out << "]}";
    return out.str();
}

std::string to_json(const service_stats& stats) {
    std::ostringstream out;
    out << "{\"submitted\":" << stats.submitted
        << ",\"rejected\":" << stats.rejected
        << ",\"completed\":" << stats.completed
        << ",\"failed\":" << stats.failed
        << ",\"shed_queue_full\":" << stats.shed_queue_full
        << ",\"shed_quota\":" << stats.shed_quota
        << ",\"shed_unmeetable\":" << stats.shed_unmeetable
        << ",\"deadline_met\":" << stats.deadline_met
        << ",\"deadline_missed\":" << stats.deadline_missed
        << ",\"preempted\":" << stats.preempted
        << ",\"peak_queue_depth\":" << stats.peak_queue_depth
        << ",\"shard_queue_depth\":[";
    for (std::size_t s = 0; s < stats.shard_queue_depth.size(); ++s) {
        if (s > 0) {
            out << ",";
        }
        out << stats.shard_queue_depth[s];
    }
    out << "],\"shard_queue_peak\":[";
    for (std::size_t s = 0; s < stats.shard_queue_peak.size(); ++s) {
        if (s > 0) {
            out << ",";
        }
        out << stats.shard_queue_peak[s];
    }
    out << "]}";
    return out.str();
}

std::string to_json(const verdict_cache_stats& stats) {
    std::ostringstream out;
    out << "{\"rounds\":" << stats.rounds
        << ",\"empty_hits\":" << stats.empty_hits << ",\"hits\":" << stats.hits
        << ",\"misses\":" << stats.misses
        << ",\"insertions\":" << stats.insertions
        << ",\"evictions\":" << stats.evictions
        << ",\"rebinds\":" << stats.rebinds
        << ",\"warm_rebinds\":" << stats.warm_rebinds
        << ",\"cold_rebinds\":" << stats.cold_rebinds
        << ",\"cross_plan_hits\":" << stats.cross_plan_hits
        << ",\"retained_entries\":" << stats.retained_entries
        << ",\"support_size\":" << stats.support_size
        << ",\"saved_rounds\":" << stats.saved_rounds()
        << ",\"hit_rate\":" << number(stats.hit_rate()) << "}";
    return out.str();
}

std::string to_json(const obs::telemetry_snapshot& snapshot) {
    std::ostringstream out;
    out << "{\"build\":" << build_info_json() << ",\"metrics\":{";
    bool first = true;
    for (const obs::metric_entry& entry : snapshot.metrics) {
        if (!first) {
            out << ",";
        }
        first = false;
        out << json_escape(entry.name) << ":";
        if (entry.kind == obs::metric_kind::histogram) {
            out << "{\"count\":" << entry.histogram.count
                << ",\"sum\":" << entry.histogram.sum
                << ",\"min\":" << entry.histogram.min
                << ",\"max\":" << entry.histogram.max
                << ",\"mean\":" << number(entry.histogram.mean()) << "}";
        } else {
            out << entry.value;
        }
    }
    out << "}}";
    return out.str();
}

std::string to_json(const deployment_response& response,
                    const component_registry* registry,
                    const obs::telemetry_snapshot* telemetry) {
    std::ostringstream out;
    out << "{\"fulfilled\":" << (response.fulfilled ? "true" : "false")
        << ",\"outcome\":\"" << to_string(response.outcome) << "\""
        << ",\"hosts\":[";
    for (std::size_t i = 0; i < response.plan.hosts.size(); ++i) {
        const node_id host = response.plan.hosts[i];
        if (i > 0) {
            out << ",";
        }
        if (registry != nullptr) {
            out << "{\"id\":" << host
                << ",\"name\":" << json_escape(registry->name(host)) << "}";
        } else {
            out << host;
        }
    }
    out << "],\"assessment\":" << to_json(response.stats)
        << ",\"utility\":" << number(response.utility)
        << ",\"score\":" << number(response.score) << ",\"search\":{"
        << "\"plans_generated\":" << response.search.plans_generated
        << ",\"plans_evaluated\":" << response.search.plans_evaluated
        << ",\"symmetric_skips\":" << response.search.symmetric_skips
        << ",\"filtered_plans\":" << response.search.filtered_plans
        << ",\"accepted_worse\":" << response.search.accepted_worse
        << ",\"elapsed_seconds\":" << number(response.search.elapsed_seconds)
        << "}";
    if (telemetry != nullptr) {
        out << ",\"telemetry\":" << to_json(*telemetry);
    }
    out << "}";
    return out.str();
}

std::string to_json(const criticality_report& report,
                    const component_registry& registry) {
    std::ostringstream out;
    out << "{\"baseline\":" << to_json(report.baseline) << ",\"entries\":[";
    for (std::size_t i = 0; i < report.entries.size(); ++i) {
        const criticality_entry& entry = report.entries[i];
        if (i > 0) {
            out << ",";
        }
        out << "{\"component\":" << entry.component
            << ",\"name\":" << json_escape(registry.name(entry.component))
            << ",\"conditional_reliability\":"
            << number(entry.conditional_reliability)
            << ",\"impact\":" << number(entry.impact) << "}";
    }
    out << "]}";
    return out.str();
}

std::string trace_to_csv(const annealing_result& result) {
    std::ostringstream out;
    out << "elapsed_seconds,best_score,best_reliability,plans_evaluated\n";
    for (const annealing_trace_point& point : result.trace) {
        out << number(point.elapsed_seconds) << "," << number(point.best_score)
            << "," << number(point.best_reliability) << ","
            << point.plans_evaluated << "\n";
    }
    return out.str();
}

}  // namespace recloud
