// Machine-readable result exports: JSON for deployment responses and
// criticality reports, CSV for search traces. Deployment pipelines consume
// these instead of scraping log output; the CLI writes them when the
// scenario's [output] section asks for it.
#pragma once

#include <string>

#include "assess/criticality.hpp"
#include "core/recloud.hpp"
#include "obs/metrics.hpp"
#include "search/annealing.hpp"
#include "service/deployment_service.hpp"

namespace recloud {

/// Escapes a string for inclusion in a JSON document (quotes included).
[[nodiscard]] std::string json_escape(const std::string& text);

/// {"rounds":..,"reliable":..,"reliability":..,"variance":..,"ciw95":..}
[[nodiscard]] std::string to_json(const assessment_stats& stats);

/// Full deployment response: fulfilled flag, plan hosts, assessment, and
/// search telemetry. `registry` (optional) adds component names to hosts;
/// `telemetry` (optional, from re_cloud::telemetry()) appends the unified
/// metrics snapshot — engine and verdict-cache gauges included — as a
/// "telemetry" object, replacing the old per-struct engine/cache parameters.
[[nodiscard]] std::string to_json(
    const deployment_response& response,
    const component_registry* registry = nullptr,
    const obs::telemetry_snapshot* telemetry = nullptr);

/// Engine recovery/observability counters (exec/engine.hpp):
/// {"batches":..,"dispatches":..,"retries":..,"redispatches":..,
///  "degraded":..,"worker_crashes":..,"deadline_misses":..,
///  "invalid_frames":..,"bytes_sent":..,"bytes_received":..,
///  "worker_failures":[..]}
[[nodiscard]] std::string to_json(const engine_stats& stats);

/// Deployment-service admission counters (service/deployment_service.hpp):
/// {"submitted":..,"rejected":..,"completed":..,"failed":..,
///  "shed_queue_full":..,"shed_quota":..,"peak_queue_depth":..,
///  "shard_queue_depth":[..],"shard_queue_peak":[..]}
[[nodiscard]] std::string to_json(const service_stats& stats);

/// Verdict-cache counters (assess/verdict_cache.hpp):
/// {"rounds":..,"empty_hits":..,"hits":..,"misses":..,"insertions":..,
///  "evictions":..,"rebinds":..,"support_size":..,"saved_rounds":..,
///  "hit_rate":..}
[[nodiscard]] std::string to_json(const verdict_cache_stats& stats);

/// Unified metrics snapshot (obs/metrics.hpp): {"build":{..},"metrics":{..}}
/// with one key per metric, sorted by name. Counters and gauges export their
/// value; histograms export {"count":..,"sum":..,"min":..,"max":..,"mean":..}.
[[nodiscard]] std::string to_json(const obs::telemetry_snapshot& snapshot);

/// Criticality report, entries in rank order.
[[nodiscard]] std::string to_json(const criticality_report& report,
                                  const component_registry& registry);

/// CSV of the search trace: one row per best-score improvement.
/// Columns: elapsed_seconds,best_score,best_reliability,plans_evaluated.
[[nodiscard]] std::string trace_to_csv(const annealing_result& result);

}  // namespace recloud
