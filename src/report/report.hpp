// Machine-readable result exports: JSON for deployment responses and
// criticality reports, CSV for search traces. Deployment pipelines consume
// these instead of scraping log output; the CLI writes them when the
// scenario's [output] section asks for it.
#pragma once

#include <string>

#include "assess/criticality.hpp"
#include "core/recloud.hpp"
#include "search/annealing.hpp"

namespace recloud {

/// Escapes a string for inclusion in a JSON document (quotes included).
[[nodiscard]] std::string json_escape(const std::string& text);

/// {"rounds":..,"reliable":..,"reliability":..,"variance":..,"ciw95":..}
[[nodiscard]] std::string to_json(const assessment_stats& stats);

/// Full deployment response: fulfilled flag, plan hosts, assessment, and
/// search telemetry. `registry` (optional) adds component names to hosts;
/// `engine` (optional) appends the execution engine's recovery counters
/// (re_cloud::execution_stats()) as an "engine" object; `cache` (optional)
/// appends the verdict-cache counters (re_cloud::cache_stats()) as a
/// "verdict_cache" object.
[[nodiscard]] std::string to_json(const deployment_response& response,
                                  const component_registry* registry = nullptr,
                                  const engine_stats* engine = nullptr,
                                  const verdict_cache_stats* cache = nullptr);

/// Engine recovery/observability counters (exec/engine.hpp):
/// {"batches":..,"dispatches":..,"retries":..,"redispatches":..,
///  "degraded":..,"worker_crashes":..,"deadline_misses":..,
///  "invalid_frames":..,"bytes_sent":..,"bytes_received":..,
///  "worker_failures":[..]}
[[nodiscard]] std::string to_json(const engine_stats& stats);

/// Verdict-cache counters (assess/verdict_cache.hpp):
/// {"rounds":..,"empty_hits":..,"hits":..,"misses":..,"insertions":..,
///  "evictions":..,"rebinds":..,"support_size":..,"saved_rounds":..,
///  "hit_rate":..}
[[nodiscard]] std::string to_json(const verdict_cache_stats& stats);

/// Criticality report, entries in rank order.
[[nodiscard]] std::string to_json(const criticality_report& report,
                                  const component_registry& registry);

/// CSV of the search trace: one row per best-score improvement.
/// Columns: elapsed_seconds,best_score,best_reliability,plans_evaluated.
[[nodiscard]] std::string trace_to_csv(const annealing_result& result);

}  // namespace recloud
