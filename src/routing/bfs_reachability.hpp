// Generic reachability oracle: breadth-first search over the alive subgraph.
// Works on ANY topology (leaf-spine, VL2, Jellyfish, hand-built test
// graphs) — the price is O(V + E) per flood instead of the fat-tree
// oracle's O(k) closed-form answers.
//
// border_reachable() floods once per round from the external node and is
// then O(1) per query; host_to_host() floods from `a` on demand and caches
// the result set per (round, source).
#pragma once

#include <vector>

#include "routing/oracle.hpp"
#include "topology/links.hpp"

namespace recloud {

class bfs_reachability final : public reachability_oracle {
public:
    /// `links` is optional; when given, floods also require the traversed
    /// link's component to be alive in the current round. Must outlive the
    /// oracle.
    explicit bfs_reachability(const built_topology& topo,
                              const link_attachment* links = nullptr);

    void begin_round(round_state& rs) override;
    [[nodiscard]] bool border_reachable(node_id host) override;
    [[nodiscard]] bool host_to_host(node_id a, node_id b) override;
    [[nodiscard]] std::unique_ptr<reachability_oracle> clone() const override;

private:
    /// Floods the alive subgraph from `source`; marks reached nodes in
    /// `mark` with `stamp`. The stamp must be fresh for that mark array
    /// (marks of earlier floods would otherwise leak into the result).
    void flood(node_id source, std::vector<std::uint32_t>& mark,
               std::uint32_t stamp);

    const built_topology* topo_;
    const link_attachment* links_;
    round_state* rs_ = nullptr;

    std::vector<std::uint32_t> external_mark_;  ///< epoch-stamped reach-from-external
    bool external_flooded_ = false;

    std::vector<std::uint32_t> source_mark_;  ///< reach-from-cached-source
    node_id cached_source_ = invalid_node;
    std::uint32_t cached_source_epoch_ = 0;
    /// Monotonic stamp for source floods: several sources can be flooded
    /// within ONE round, so the round epoch alone cannot key the marks.
    std::uint32_t source_stamp_ = 0;

    std::vector<node_id> queue_;  ///< scratch BFS queue
};

}  // namespace recloud
