// Generic reachability oracle: breadth-first search over the alive subgraph.
// Works on ANY topology (leaf-spine, VL2, Jellyfish, hand-built test
// graphs) — the price is O(V + E) per flood instead of the fat-tree
// oracle's O(k) closed-form answers.
//
// border_reachable() floods once per round from the external node and is
// then O(1) per query; host_to_host() floods from `a` on demand and caches
// the result set per (round, source). When the round is begun with a
// query-target hint (begin_round(rs, hosts)), floods terminate as soon as
// every alive target host is marked — the rest of the graph can no longer
// change any answer the round is allowed to ask for.
#pragma once

#include <vector>

#include "routing/oracle.hpp"
#include "topology/links.hpp"

namespace recloud {

class bfs_reachability final : public reachability_oracle {
public:
    /// `links` is optional; when given, floods also require the traversed
    /// link's component to be alive in the current round. Must outlive the
    /// oracle. The per-edge component ids are copied into a flat array at
    /// construction so the flood inner loop reads them without indirection.
    explicit bfs_reachability(const built_topology& topo,
                              const link_attachment* links = nullptr);

    void begin_round(round_state& rs) override;
    void begin_round(round_state& rs,
                     std::span<const node_id> query_hosts) override;
    [[nodiscard]] bool border_reachable(node_id host) override;
    [[nodiscard]] bool host_to_host(node_id a, node_id b) override;
    [[nodiscard]] std::unique_ptr<reachability_oracle> clone() const override;
    [[nodiscard]] const link_attachment* consulted_links()
        const noexcept override {
        return links_;
    }

    /// Test hook: fast-forwards the per-source flood stamp so the uint32
    /// wrap-around hardening can be exercised without 2^32 floods.
    void set_source_stamp_for_test(std::uint32_t stamp) noexcept {
        source_stamp_ = stamp;
    }

private:
    /// Floods the alive subgraph from `source`; marks reached nodes in
    /// `mark` with `stamp`. The stamp must be fresh for that mark array
    /// (marks of earlier floods would otherwise leak into the result).
    /// Stops early once every alive query-target host is marked (only when
    /// the round carries a target hint).
    void flood(node_id source, std::vector<std::uint32_t>& mark,
               std::uint32_t stamp);

    const built_topology* topo_;
    const link_attachment* links_;  ///< kept for clone(); queries use the flat copy
    round_state* rs_ = nullptr;

    /// Flat per-edge link component ids (empty when no link attachment):
    /// the inner flood loop indexes this directly instead of calling
    /// link_attachment::link_failed through a lambda.
    std::vector<component_id> edge_components_;

    std::vector<std::uint32_t> external_mark_;  ///< epoch-stamped reach-from-external
    bool external_flooded_ = false;

    std::vector<std::uint32_t> source_mark_;  ///< reach-from-cached-source
    node_id cached_source_ = invalid_node;
    std::uint32_t cached_source_epoch_ = 0;
    /// Monotonic stamp for source floods: several sources can be flooded
    /// within ONE round, so the round epoch alone cannot key the marks. On
    /// uint32 wrap-around source_mark_ is cleared (a stale mark from 2^32
    /// floods ago could otherwise alias a fresh stamp).
    std::uint32_t source_stamp_ = 0;

    // Query-target hint of the current round (begin_round overload).
    bool targets_active_ = false;
    std::vector<node_id> hint_hosts_;     ///< as passed (identity check)
    std::vector<node_id> unique_targets_; ///< deduplicated
    std::vector<std::uint8_t> target_mark_;  ///< per node: 1 iff a target

    std::vector<node_id> queue_;  ///< scratch BFS queue
};

}  // namespace recloud
