// Generic reachability oracle: breadth-first search over the alive subgraph.
// Works on ANY topology (leaf-spine, VL2, Jellyfish, hand-built test
// graphs) — the price is O(V + E) per flood instead of the fat-tree
// oracle's O(k) closed-form answers.
//
// border_reachable() floods once per round from the external node and is
// then O(1) per query; host_to_host() floods from `a` on demand and caches
// the result set per (round, source). When the round is begun with a
// query-target hint (begin_round(rs, hosts)), floods terminate as soon as
// every alive target host is marked — the rest of the graph can no longer
// change any answer the round is allowed to ask for.
#pragma once

#include <vector>

#include "routing/oracle.hpp"
#include "topology/links.hpp"

namespace recloud {

class bfs_reachability final : public reachability_oracle {
public:
    /// `links` is optional; when given, floods also require the traversed
    /// link's component to be alive in the current round. Must outlive the
    /// oracle. The per-edge component ids are copied into a flat array at
    /// construction so the flood inner loop reads them without indirection.
    explicit bfs_reachability(const built_topology& topo,
                              const link_attachment* links = nullptr);

    void begin_round(round_state& rs) override;
    void begin_round(round_state& rs,
                     std::span<const node_id> query_hosts) override;
    [[nodiscard]] bool border_reachable(node_id host) override;
    [[nodiscard]] bool host_to_host(node_id a, node_id b) override;
    /// Flood-based cleanliness: settles the external flood (completes any
    /// hint-truncated frontier), then checks that every host — alive, or
    /// failed but assumed alive — sits adjacent to the external-connected
    /// alive region via an alive link. That region is one connected alive
    /// subgraph containing the border, so under the condition every query
    /// any plan could ask degenerates to host aliveness.
    [[nodiscard]] bool round_fully_connected(
        std::span<const component_id> raw_failed) override;
    [[nodiscard]] std::unique_ptr<reachability_oracle> clone() const override;
    [[nodiscard]] const link_attachment* consulted_links()
        const noexcept override {
        return links_;
    }

    /// Test hook: fast-forwards the per-source flood stamp so the uint32
    /// wrap-around hardening can be exercised without 2^32 floods.
    void set_source_stamp_for_test(std::uint32_t stamp) noexcept {
        source_stamp_ = stamp;
    }

private:
    /// Floods the alive subgraph from `source`; marks reached nodes in
    /// `mark` with `stamp`. The stamp must be fresh for that mark array
    /// (marks of earlier floods would otherwise leak into the result).
    /// Stops early once every alive query-target host is marked (only when
    /// the round carries a target hint). Returns true iff the flood ran to
    /// exhaustion — i.e. the marks are "settled" and valid for ANY query,
    /// not just the hinted targets.
    bool flood(node_id source, std::vector<std::uint32_t>& mark,
               std::uint32_t stamp);

    /// Makes the external marks valid for the current round, reusing the
    /// previous round's flood when both rounds share the same raw
    /// failed-set (incremental reseeding: across plans the CRN streams
    /// replay identical rounds, only the query hint changes).
    void ensure_external_flood();

    /// Completes a hint-truncated external flood: reseeds the BFS queue
    /// from every already-marked node and drains it with the early exit
    /// disabled. Re-flooding with the same stamp would stall instead — the
    /// marked frontier's neighbors are marked and would never be enqueued.
    void settle_external_flood();

    const built_topology* topo_;
    const link_attachment* links_;  ///< kept for clone(); queries use the flat copy
    round_state* rs_ = nullptr;

    /// Flat per-edge link component ids (empty when no link attachment):
    /// the inner flood loop indexes this directly instead of calling
    /// link_attachment::link_failed through a lambda.
    std::vector<component_id> edge_components_;

    std::vector<std::uint32_t> external_mark_;  ///< stamped reach-from-external
    bool external_flooded_ = false;  ///< marks valid for the current round
    /// Monotonic stamp for external floods — oracle-owned (not the round
    /// epoch) so marks may outlive the round that produced them and be
    /// reused by a later round with the identical raw failed-set. Wraps
    /// like source_stamp_.
    std::uint32_t external_stamp_ = 0;
    bool external_settled_ = false;  ///< current marks ran to exhaustion
    /// Raw failed-set snapshot the external marks were computed from.
    bool last_flood_valid_ = false;
    const round_state* last_flood_rs_ = nullptr;
    std::uint64_t last_flood_hash_ = 0;
    std::vector<component_id> last_flood_raw_;

    std::vector<std::uint32_t> source_mark_;  ///< reach-from-cached-source
    node_id cached_source_ = invalid_node;
    std::uint32_t cached_source_epoch_ = 0;
    /// Monotonic stamp for source floods: several sources can be flooded
    /// within ONE round, so the round epoch alone cannot key the marks. On
    /// uint32 wrap-around source_mark_ is cleared (a stale mark from 2^32
    /// floods ago could otherwise alias a fresh stamp).
    std::uint32_t source_stamp_ = 0;

    // Query-target hint of the current round (begin_round overload).
    bool targets_active_ = false;
    std::uint64_t hint_hash_ = 0;         ///< cheap pre-check before std::equal
    std::vector<node_id> hint_hosts_;     ///< as passed (identity check)
    std::vector<node_id> unique_targets_; ///< deduplicated
    std::vector<std::uint8_t> target_mark_;  ///< per node: 1 iff a target

    std::vector<node_id> queue_;  ///< scratch BFS queue
};

}  // namespace recloud
