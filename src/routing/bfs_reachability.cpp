#include "routing/bfs_reachability.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {

namespace {

/// FNV-1a over a sequence of 32-bit ids — cheap pre-check before the exact
/// element-wise comparison (hashes can collide; std::equal decides).
template <typename T>
std::uint64_t hash_ids(std::span<const T> ids) noexcept {
    std::uint64_t hash = 1469598103934665603ULL;
    for (const T id : ids) {
        hash ^= static_cast<std::uint64_t>(id);
        hash *= 1099511628211ULL;
    }
    return hash;
}

}  // namespace

bfs_reachability::bfs_reachability(const built_topology& topo,
                                   const link_attachment* links)
    : topo_(&topo),
      links_(links),
      external_mark_(topo.graph.node_count(), 0),
      source_mark_(topo.graph.node_count(), 0),
      target_mark_(topo.graph.node_count(), 0) {
    if (!topo.graph.frozen()) {
        throw std::logic_error{"bfs_reachability: topology graph not frozen"};
    }
    if (links_ != nullptr) {
        if (links_->component_of_edge.size() != topo.graph.edge_count()) {
            throw std::invalid_argument{
                "bfs_reachability: link attachment does not match topology"};
        }
        edge_components_ = links_->component_of_edge;
    }
}

void bfs_reachability::begin_round(round_state& rs) {
    rs_ = &rs;
    external_flooded_ = false;
    cached_source_ = invalid_node;
    targets_active_ = false;
}

void bfs_reachability::begin_round(round_state& rs,
                                   std::span<const node_id> query_hosts) {
    begin_round(rs);
    targets_active_ = true;
    // Size + hash short-circuit: across the thousands of rounds of one plan
    // the hint is identical, and across plans it usually differs in content
    // — both cases are decided without walking the whole host list twice.
    const std::uint64_t hash = hash_ids(query_hosts);
    if (hint_hosts_.size() == query_hosts.size() && hash == hint_hash_ &&
        std::equal(hint_hosts_.begin(), hint_hosts_.end(),
                   query_hosts.begin())) {
        return;  // same hint as last time (one plan = thousands of rounds)
    }
    for (const node_id host : unique_targets_) {
        target_mark_[host] = 0;
    }
    hint_hash_ = hash;
    hint_hosts_.assign(query_hosts.begin(), query_hosts.end());
    unique_targets_.clear();
    for (const node_id host : query_hosts) {
        if (target_mark_[host] == 0) {
            target_mark_[host] = 1;
            unique_targets_.push_back(host);
        }
    }
}

bool bfs_reachability::flood(node_id source, std::vector<std::uint32_t>& mark,
                             std::uint32_t stamp) {
    RECLOUD_SPAN("route.flood");
    RECLOUD_COUNTER_INC("route.floods");
    queue_.clear();
    if (rs_->failed(source) && topo_->graph.kind(source) != node_kind::external) {
        return false;  // a failed source reaches nothing (external never fails)
    }
    // With a target hint, count the alive targets still unmarked; the flood
    // may stop once the count reaches zero — no query of this round can see
    // the difference. SIZE_MAX disables the early exit.
    std::size_t remaining = static_cast<std::size_t>(-1);
    if (targets_active_) {
        remaining = 0;
        for (const node_id target : unique_targets_) {
            if (!rs_->failed(target)) {
                ++remaining;
            }
        }
    }
    mark[source] = stamp;
    if (targets_active_) {
        if (target_mark_[source] != 0) {
            --remaining;  // source is alive here, so it was counted
        }
        if (remaining == 0) {
            return false;
        }
    }
    queue_.push_back(source);
    // Pre-resolved link components: one branch decides the loop flavor
    // instead of a per-neighbor null check + lambda call.
    const component_id* link_of_edge =
        edge_components_.empty() ? nullptr : edge_components_.data();
    std::size_t head = 0;
    while (head < queue_.size()) {
        const node_id current = queue_[head++];
        const auto neighbors = topo_->graph.neighbors(current);
        if (link_of_edge == nullptr) {
            for (const node_id next : neighbors) {
                if (mark[next] == stamp || rs_->failed(next)) {
                    continue;
                }
                mark[next] = stamp;
                if (targets_active_ && target_mark_[next] != 0 &&
                    --remaining == 0) {
                    return false;
                }
                queue_.push_back(next);
            }
        } else {
            const auto edges = topo_->graph.incident_edges(current);
            for (std::size_t i = 0; i < neighbors.size(); ++i) {
                const node_id next = neighbors[i];
                if (mark[next] == stamp || rs_->failed(next)) {
                    continue;
                }
                const component_id link = link_of_edge[edges[i]];
                if (link != invalid_node && rs_->failed(link)) {
                    continue;
                }
                mark[next] = stamp;
                if (targets_active_ && target_mark_[next] != 0 &&
                    --remaining == 0) {
                    return false;
                }
                queue_.push_back(next);
            }
        }
    }
    return true;
}

void bfs_reachability::ensure_external_flood() {
    if (external_flooded_) {
        return;
    }
    // One flood from the external node covers every border switch: a border
    // switch that is alive is adjacent to external, so anything reachable
    // from a border switch is reachable from external.
    //
    // Incremental reseeding: the alive subgraph is a pure function of the
    // round's raw failed-set (plus the fault forest fixed at round_state
    // construction), so when the current round replays the exact raw set of
    // the previous flood — the CRN streams do exactly that across candidate
    // plans — the existing marks are still correct and only need settling
    // if the earlier flood was cut short by a different query hint.
    const std::span<const component_id> raw = rs_->raw_failed_list();
    const std::uint64_t hash = hash_ids(raw);
    if (last_flood_valid_ && last_flood_rs_ == rs_ &&
        hash == last_flood_hash_ && last_flood_raw_.size() == raw.size() &&
        std::equal(last_flood_raw_.begin(), last_flood_raw_.end(),
                   raw.begin())) {
        RECLOUD_COUNTER_INC("route.flood_reuse");
        if (!external_settled_) {
            settle_external_flood();
        }
        external_flooded_ = true;
        return;
    }
    ++external_stamp_;
    if (external_stamp_ == 0) {
        // uint32 wrap-around: wipe stale marks, restart the cycle at 1.
        std::fill(external_mark_.begin(), external_mark_.end(), 0);
        external_stamp_ = 1;
    }
    external_settled_ = flood(topo_->external, external_mark_, external_stamp_);
    external_flooded_ = true;
    last_flood_valid_ = true;
    last_flood_rs_ = rs_;
    last_flood_hash_ = hash;
    last_flood_raw_.assign(raw.begin(), raw.end());
}

void bfs_reachability::settle_external_flood() {
    RECLOUD_SPAN("route.flood");
    RECLOUD_COUNTER_INC("route.floods");
    // Reseed from the entire marked region: re-flooding from the source
    // with the same stamp would stall at the old frontier, because marked
    // neighbors are skipped and the nodes queued behind the early exit were
    // never drained.
    queue_.clear();
    const std::size_t nodes = topo_->graph.node_count();
    for (node_id n = 0; n < nodes; ++n) {
        if (external_mark_[n] == external_stamp_) {
            queue_.push_back(n);
        }
    }
    const component_id* link_of_edge =
        edge_components_.empty() ? nullptr : edge_components_.data();
    std::size_t head = 0;
    while (head < queue_.size()) {
        const node_id current = queue_[head++];
        const auto neighbors = topo_->graph.neighbors(current);
        if (link_of_edge == nullptr) {
            for (const node_id next : neighbors) {
                if (external_mark_[next] == external_stamp_ ||
                    rs_->failed(next)) {
                    continue;
                }
                external_mark_[next] = external_stamp_;
                queue_.push_back(next);
            }
        } else {
            const auto edges = topo_->graph.incident_edges(current);
            for (std::size_t i = 0; i < neighbors.size(); ++i) {
                const node_id next = neighbors[i];
                if (external_mark_[next] == external_stamp_ ||
                    rs_->failed(next)) {
                    continue;
                }
                const component_id link = link_of_edge[edges[i]];
                if (link != invalid_node && rs_->failed(link)) {
                    continue;
                }
                external_mark_[next] = external_stamp_;
                queue_.push_back(next);
            }
        }
    }
    external_settled_ = true;
}

bool bfs_reachability::border_reachable(node_id host) {
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    ensure_external_flood();
    return external_mark_[host] == external_stamp_;
}

bool bfs_reachability::round_fully_connected(
    std::span<const component_id> raw_failed) {
    (void)raw_failed;  // the flood reads the round_state directly
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    ensure_external_flood();
    if (!external_settled_) {
        settle_external_flood();
    }
    // Fully connected for any plan: every host is attached to the
    // external-connected alive region. An alive host must be IN the region
    // (if it merely neighbors it, the settled flood would have marked it);
    // a failed host — assumed alive, as the cached key treats its aliveness
    // separately — needs an alive neighbor in the region via an alive link.
    const component_id* link_of_edge =
        edge_components_.empty() ? nullptr : edge_components_.data();
    const std::size_t nodes = topo_->graph.node_count();
    for (node_id h = 0; h < nodes; ++h) {
        if (topo_->graph.kind(h) != node_kind::host) {
            continue;
        }
        if (external_mark_[h] == external_stamp_) {
            continue;
        }
        if (!rs_->failed(h)) {
            return false;  // alive yet unreachable: connectivity is broken
        }
        bool attached = false;
        const auto neighbors = topo_->graph.neighbors(h);
        if (link_of_edge == nullptr) {
            for (const node_id next : neighbors) {
                if (external_mark_[next] == external_stamp_) {
                    attached = true;
                    break;
                }
            }
        } else {
            const auto edges = topo_->graph.incident_edges(h);
            for (std::size_t i = 0; i < neighbors.size(); ++i) {
                if (external_mark_[neighbors[i]] != external_stamp_) {
                    continue;
                }
                const component_id link = link_of_edge[edges[i]];
                if (link != invalid_node && rs_->failed(link)) {
                    continue;
                }
                attached = true;
                break;
            }
        }
        if (!attached) {
            return false;
        }
    }
    return true;
}

bool bfs_reachability::host_to_host(node_id a, node_id b) {
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    if (rs_->failed(a) || rs_->failed(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    if (cached_source_ != a || cached_source_epoch_ != rs_->epoch()) {
        // Fresh stamp per flood: several sources may be flooded within one
        // round and their marks must not bleed into each other.
        ++source_stamp_;
        if (source_stamp_ == 0) {
            // uint32 wrap-around: a mark written 2^32 floods ago would alias
            // a fresh stamp. Wipe the array and restart the cycle at 1.
            std::fill(source_mark_.begin(), source_mark_.end(), 0);
            source_stamp_ = 1;
        }
        flood(a, source_mark_, source_stamp_);
        cached_source_ = a;
        cached_source_epoch_ = rs_->epoch();
    }
    return source_mark_[b] == source_stamp_;
}

std::unique_ptr<reachability_oracle> bfs_reachability::clone() const {
    return std::make_unique<bfs_reachability>(*topo_, links_);
}

}  // namespace recloud
