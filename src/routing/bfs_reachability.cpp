#include "routing/bfs_reachability.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {

bfs_reachability::bfs_reachability(const built_topology& topo,
                                   const link_attachment* links)
    : topo_(&topo),
      links_(links),
      external_mark_(topo.graph.node_count(), 0),
      source_mark_(topo.graph.node_count(), 0),
      target_mark_(topo.graph.node_count(), 0) {
    if (!topo.graph.frozen()) {
        throw std::logic_error{"bfs_reachability: topology graph not frozen"};
    }
    if (links_ != nullptr) {
        if (links_->component_of_edge.size() != topo.graph.edge_count()) {
            throw std::invalid_argument{
                "bfs_reachability: link attachment does not match topology"};
        }
        edge_components_ = links_->component_of_edge;
    }
}

void bfs_reachability::begin_round(round_state& rs) {
    rs_ = &rs;
    external_flooded_ = false;
    cached_source_ = invalid_node;
    targets_active_ = false;
}

void bfs_reachability::begin_round(round_state& rs,
                                   std::span<const node_id> query_hosts) {
    begin_round(rs);
    targets_active_ = true;
    if (hint_hosts_.size() == query_hosts.size() &&
        std::equal(hint_hosts_.begin(), hint_hosts_.end(),
                   query_hosts.begin())) {
        return;  // same hint as last time (one plan = thousands of rounds)
    }
    for (const node_id host : unique_targets_) {
        target_mark_[host] = 0;
    }
    hint_hosts_.assign(query_hosts.begin(), query_hosts.end());
    unique_targets_.clear();
    for (const node_id host : query_hosts) {
        if (target_mark_[host] == 0) {
            target_mark_[host] = 1;
            unique_targets_.push_back(host);
        }
    }
}

void bfs_reachability::flood(node_id source, std::vector<std::uint32_t>& mark,
                             std::uint32_t stamp) {
    RECLOUD_SPAN("route.flood");
    RECLOUD_COUNTER_INC("route.floods");
    queue_.clear();
    if (rs_->failed(source) && topo_->graph.kind(source) != node_kind::external) {
        return;  // a failed source reaches nothing (external never fails)
    }
    // With a target hint, count the alive targets still unmarked; the flood
    // may stop once the count reaches zero — no query of this round can see
    // the difference. SIZE_MAX disables the early exit.
    std::size_t remaining = static_cast<std::size_t>(-1);
    if (targets_active_) {
        remaining = 0;
        for (const node_id target : unique_targets_) {
            if (!rs_->failed(target)) {
                ++remaining;
            }
        }
    }
    mark[source] = stamp;
    if (targets_active_) {
        if (target_mark_[source] != 0) {
            --remaining;  // source is alive here, so it was counted
        }
        if (remaining == 0) {
            return;
        }
    }
    queue_.push_back(source);
    // Pre-resolved link components: one branch decides the loop flavor
    // instead of a per-neighbor null check + lambda call.
    const component_id* link_of_edge =
        edge_components_.empty() ? nullptr : edge_components_.data();
    std::size_t head = 0;
    while (head < queue_.size()) {
        const node_id current = queue_[head++];
        const auto neighbors = topo_->graph.neighbors(current);
        if (link_of_edge == nullptr) {
            for (const node_id next : neighbors) {
                if (mark[next] == stamp || rs_->failed(next)) {
                    continue;
                }
                mark[next] = stamp;
                if (targets_active_ && target_mark_[next] != 0 &&
                    --remaining == 0) {
                    return;
                }
                queue_.push_back(next);
            }
        } else {
            const auto edges = topo_->graph.incident_edges(current);
            for (std::size_t i = 0; i < neighbors.size(); ++i) {
                const node_id next = neighbors[i];
                if (mark[next] == stamp || rs_->failed(next)) {
                    continue;
                }
                const component_id link = link_of_edge[edges[i]];
                if (link != invalid_node && rs_->failed(link)) {
                    continue;
                }
                mark[next] = stamp;
                if (targets_active_ && target_mark_[next] != 0 &&
                    --remaining == 0) {
                    return;
                }
                queue_.push_back(next);
            }
        }
    }
}

bool bfs_reachability::border_reachable(node_id host) {
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    if (!external_flooded_) {
        // One flood from the external node covers every border switch: a
        // border switch that is alive is adjacent to external, so anything
        // reachable from a border switch is reachable from external. The
        // round epoch is a valid stamp here because this array receives at
        // most one flood per round.
        flood(topo_->external, external_mark_, rs_->epoch());
        external_flooded_ = true;
    }
    return external_mark_[host] == rs_->epoch();
}

bool bfs_reachability::host_to_host(node_id a, node_id b) {
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    if (rs_->failed(a) || rs_->failed(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    if (cached_source_ != a || cached_source_epoch_ != rs_->epoch()) {
        // Fresh stamp per flood: several sources may be flooded within one
        // round and their marks must not bleed into each other.
        ++source_stamp_;
        if (source_stamp_ == 0) {
            // uint32 wrap-around: a mark written 2^32 floods ago would alias
            // a fresh stamp. Wipe the array and restart the cycle at 1.
            std::fill(source_mark_.begin(), source_mark_.end(), 0);
            source_stamp_ = 1;
        }
        flood(a, source_mark_, source_stamp_);
        cached_source_ = a;
        cached_source_epoch_ = rs_->epoch();
    }
    return source_mark_[b] == source_stamp_;
}

std::unique_ptr<reachability_oracle> bfs_reachability::clone() const {
    return std::make_unique<bfs_reachability>(*topo_, links_);
}

}  // namespace recloud
