#include "routing/bfs_reachability.hpp"

#include <stdexcept>

namespace recloud {

bfs_reachability::bfs_reachability(const built_topology& topo,
                                   const link_attachment* links)
    : topo_(&topo),
      links_(links),
      external_mark_(topo.graph.node_count(), 0),
      source_mark_(topo.graph.node_count(), 0) {
    if (!topo.graph.frozen()) {
        throw std::logic_error{"bfs_reachability: topology graph not frozen"};
    }
    if (links_ != nullptr &&
        links_->component_of_edge.size() != topo.graph.edge_count()) {
        throw std::invalid_argument{
            "bfs_reachability: link attachment does not match topology"};
    }
}

void bfs_reachability::begin_round(round_state& rs) {
    rs_ = &rs;
    external_flooded_ = false;
    cached_source_ = invalid_node;
}

void bfs_reachability::flood(node_id source, std::vector<std::uint32_t>& mark,
                             std::uint32_t stamp) {
    const std::uint32_t epoch = stamp;
    queue_.clear();
    if (rs_->failed(source) && topo_->graph.kind(source) != node_kind::external) {
        return;  // a failed source reaches nothing (external never fails)
    }
    mark[source] = epoch;
    queue_.push_back(source);
    std::size_t head = 0;
    while (head < queue_.size()) {
        const node_id current = queue_[head++];
        const auto neighbors = topo_->graph.neighbors(current);
        const auto edges = topo_->graph.incident_edges(current);
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
            const node_id next = neighbors[i];
            if (mark[next] == epoch || rs_->failed(next)) {
                continue;
            }
            if (links_ != nullptr &&
                links_->link_failed(edges[i],
                                    [this](component_id c) { return rs_->failed(c); })) {
                continue;
            }
            mark[next] = epoch;
            queue_.push_back(next);
        }
    }
}

bool bfs_reachability::border_reachable(node_id host) {
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    if (!external_flooded_) {
        // One flood from the external node covers every border switch: a
        // border switch that is alive is adjacent to external, so anything
        // reachable from a border switch is reachable from external. The
        // round epoch is a valid stamp here because this array receives at
        // most one flood per round.
        flood(topo_->external, external_mark_, rs_->epoch());
        external_flooded_ = true;
    }
    return external_mark_[host] == rs_->epoch();
}

bool bfs_reachability::host_to_host(node_id a, node_id b) {
    if (rs_ == nullptr) {
        throw std::logic_error{"bfs_reachability: begin_round not called"};
    }
    if (rs_->failed(a) || rs_->failed(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    if (cached_source_ != a || cached_source_epoch_ != rs_->epoch()) {
        // Fresh stamp per flood: several sources may be flooded within one
        // round and their marks must not bleed into each other.
        ++source_stamp_;
        flood(a, source_mark_, source_stamp_);
        cached_source_ = a;
        cached_source_epoch_ = rs_->epoch();
    }
    return source_mark_[b] == source_stamp_;
}

std::unique_ptr<reachability_oracle> bfs_reachability::clone() const {
    return std::make_unique<bfs_reachability>(*topo_, links_);
}

}  // namespace recloud
