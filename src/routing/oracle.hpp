// Routing / reachability oracle interface — the "route" part of the paper's
// route-and-check (§3.2.1, Figure 2). Working with another data-center
// architecture only requires swapping this oracle (§3.2.1: "we only need to
// change this step's routing protocol").
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "faults/round_state.hpp"
#include "topology/graph.hpp"

namespace recloud {

class link_attachment;  // topology/links.hpp

/// Cross-plan cleanliness of one sampled round (see classify_round).
enum class round_class : std::uint8_t {
    unclean = 0,  ///< verdict may depend on the plan beyond slot aliveness
    semi = 1,     ///< pure function of slot-wise ATTACHMENT-effective aliveness
    clean = 2,    ///< pure function of slot-wise host-effective aliveness
};

class reachability_oracle {
public:
    virtual ~reachability_oracle() = default;

    /// Binds the oracle to the current round of `rs`. Must be called after
    /// rs.begin_round() and before any query of that round. The round_state
    /// must outlive the queries.
    virtual void begin_round(round_state& rs) = 0;

    /// Binds the oracle to the round AND promises that only the hosts in
    /// `query_hosts` will be queried (as border_reachable target or either
    /// host_to_host end) until the next begin_round. Flood-based oracles use
    /// the hint to stop early once every queryable host is settled; the
    /// default ignores it. Duplicates allowed (a deployment plan's host list
    /// qualifies as-is).
    virtual void begin_round(round_state& rs,
                             std::span<const node_id> query_hosts) {
        (void)query_hosts;
        begin_round(rs);
    }

    /// Whether `host` is reachable from any border switch — i.e. the
    /// instance on it is "alive" in the paper's sense (§2.2).
    [[nodiscard]] virtual bool border_reachable(node_id host) = 0;

    /// Whether hosts `a` and `b` can reach each other (complex application
    /// structures, §3.2.4). a == b reduces to "a is effectively alive".
    [[nodiscard]] virtual bool host_to_host(node_id a, node_id b) = 0;

    /// Round cleanliness classifier for cross-plan verdict retention. Must
    /// return true ONLY when the round's surviving network is "fully
    /// connected for any plan": every host of the topology — assumed alive
    /// together with its dependencies — would be border-reachable and
    /// pairwise-reachable under this oracle's routing. Under that condition
    /// the round verdict is a pure function of the plan-host aliveness
    /// vector, which is what lets the verdict cache keep the entry across a
    /// plan swap whose delta is disjoint from the entry's key. `raw_failed`
    /// is the round's raw failed-set (the same span begin_round's
    /// round_state was given). May only be called while the oracle is bound
    /// to that round. Returning false is always safe — the default
    /// classifies nothing, so test doubles and exotic oracles simply forgo
    /// cross-plan reuse, never corrupt it.
    [[nodiscard]] virtual bool round_fully_connected(
        std::span<const component_id> raw_failed) {
        (void)raw_failed;
        return false;
    }

    /// Three-way refinement of round_fully_connected for cross-plan verdict
    /// retention. `clean` is exactly round_fully_connected's condition. A
    /// round may be `semi` when its verdict is a pure function of slot-wise
    /// ATTACHMENT-effective aliveness: an instance is alive iff its host,
    /// the host's adjacent routing nodes, and the host's incident link
    /// components are all effectively alive, and any two attachment-alive
    /// hosts are mutually and border reachable. The verdict cache retains a
    /// semi entry across a plan swap only when its key is also disjoint from
    /// the changed hosts' attachment components as precomputed by
    /// verdict_support::host_attachment — an oracle overriding this MUST
    /// make its semi classification depend on hosts only through exactly
    /// those components. Degrading any round to `unclean` is always safe;
    /// the default refines nothing.
    [[nodiscard]] virtual round_class classify_round(
        std::span<const component_id> raw_failed) {
        return round_fully_connected(raw_failed) ? round_class::clean
                                                 : round_class::unclean;
    }

    /// Creates an independent oracle over the same topology, with its own
    /// per-round caches — what a parallel assessment worker needs. Returns
    /// nullptr when the oracle cannot be cloned (stateful test doubles).
    [[nodiscard]] virtual std::unique_ptr<reachability_oracle> clone() const {
        return nullptr;
    }

    /// The link attachment this oracle consults when judging reachability,
    /// or nullptr when links are treated as infallible. Anything that
    /// derives per-component reasoning from an oracle (symmetry signatures,
    /// the verdict-cache support set) must see the SAME attachment —
    /// scenario::validate() enforces the match, closing the historic
    /// recloud_context foot-gun where a forgotten `links` pointer silently
    /// made the verdict cache unsound.
    [[nodiscard]] virtual const link_attachment* consulted_links()
        const noexcept {
        return nullptr;
    }
};

/// Creates a fresh routing oracle for a worker (each worker owns one). Used
/// by both the MapReduce-style execution engine and the parallel assessment
/// backend.
using oracle_factory = std::function<std::unique_ptr<reachability_oracle>()>;

}  // namespace recloud
