// Routing / reachability oracle interface — the "route" part of the paper's
// route-and-check (§3.2.1, Figure 2). Working with another data-center
// architecture only requires swapping this oracle (§3.2.1: "we only need to
// change this step's routing protocol").
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "faults/round_state.hpp"
#include "topology/graph.hpp"

namespace recloud {

class link_attachment;  // topology/links.hpp

class reachability_oracle {
public:
    virtual ~reachability_oracle() = default;

    /// Binds the oracle to the current round of `rs`. Must be called after
    /// rs.begin_round() and before any query of that round. The round_state
    /// must outlive the queries.
    virtual void begin_round(round_state& rs) = 0;

    /// Binds the oracle to the round AND promises that only the hosts in
    /// `query_hosts` will be queried (as border_reachable target or either
    /// host_to_host end) until the next begin_round. Flood-based oracles use
    /// the hint to stop early once every queryable host is settled; the
    /// default ignores it. Duplicates allowed (a deployment plan's host list
    /// qualifies as-is).
    virtual void begin_round(round_state& rs,
                             std::span<const node_id> query_hosts) {
        (void)query_hosts;
        begin_round(rs);
    }

    /// Whether `host` is reachable from any border switch — i.e. the
    /// instance on it is "alive" in the paper's sense (§2.2).
    [[nodiscard]] virtual bool border_reachable(node_id host) = 0;

    /// Whether hosts `a` and `b` can reach each other (complex application
    /// structures, §3.2.4). a == b reduces to "a is effectively alive".
    [[nodiscard]] virtual bool host_to_host(node_id a, node_id b) = 0;

    /// Creates an independent oracle over the same topology, with its own
    /// per-round caches — what a parallel assessment worker needs. Returns
    /// nullptr when the oracle cannot be cloned (stateful test doubles).
    [[nodiscard]] virtual std::unique_ptr<reachability_oracle> clone() const {
        return nullptr;
    }

    /// The link attachment this oracle consults when judging reachability,
    /// or nullptr when links are treated as infallible. Anything that
    /// derives per-component reasoning from an oracle (symmetry signatures,
    /// the verdict-cache support set) must see the SAME attachment —
    /// scenario::validate() enforces the match, closing the historic
    /// recloud_context foot-gun where a forgotten `links` pointer silently
    /// made the verdict cache unsound.
    [[nodiscard]] virtual const link_attachment* consulted_links()
        const noexcept {
        return nullptr;
    }
};

/// Creates a fresh routing oracle for a worker (each worker owns one). Used
/// by both the MapReduce-style execution engine and the parallel assessment
/// backend.
using oracle_factory = std::function<std::unique_ptr<reachability_oracle>()>;

}  // namespace recloud
