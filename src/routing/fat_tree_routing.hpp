// Fat-tree routing oracle: closed-form multipath up/down reachability, with
// optional link-failure awareness.
//
// Fat-tree routing is valley-free: a packet travels up (host -> edge ->
// aggregation -> core) and then down. With node and link failures,
// reachability has a closed form over per-round bitmasks:
//
//   - uplink mask U(e) of an edge switch e: bit j set iff aggregation
//     switch j of e's pod is alive AND the e<->agg_j link is alive;
//   - transit mask T(p, j) of pod p and group j: bit i set iff core (j, i)
//     is alive AND the agg_j(p)<->core(j,i) link is alive;
//   - external group mask X(j): bit i set iff core (j, i) is alive, the
//     core<->border_j link is alive, border_j is alive, and border_j's
//     external peering link is alive.
//
// Then, writing e(h) for a host's edge switch and p(h) for its pod:
//   border_reachable(h)  = alive(h) ^ alive(h<->e) ^ alive(e) ^
//                          exists j in U(e): T(p,j) & X(j) != 0
//   host_to_host(a, b)   = same edge: both ends + links + the edge;
//                          same pod:  U(e_a) & U(e_b) != 0;
//                          cross pod: exists j in U(e_a) & U(e_b):
//                                     T(p_a,j) & T(p_b,j) != 0.
//
// Masks are built per round by PATCHING: in the all-alive round every mask
// is full, and each (effectively) failed switch or link component clears a
// known set of bits. A reverse index from component id to its mask bits is
// precomputed once, so preparing a round costs O(|raw failed| + |affected
// deps|) and every query is O(1) — independent of g. When the oracle was
// constructed without the fault-tree forest the assessed rounds use, it
// falls back to the legacy lazy per-slot computation (O(g) per cold slot).
// Without a link attachment, links are treated as infallible and the math
// degenerates to the node-only closed form. std::uint64_t masks support k
// up to 128.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"
#include "topology/fat_tree.hpp"
#include "topology/links.hpp"

namespace recloud {

class fat_tree_routing final : public reachability_oracle {
public:
    /// `links` and `forest` are optional and must outlive the oracle when
    /// given. Pass the same forest the assessed rounds carry: it lets the
    /// oracle see which mask-relevant switches a raw dependency failure can
    /// flip, enabling the O(1) patched-mask path. With a different (or no)
    /// forest the oracle stays correct via the legacy per-slot path.
    explicit fat_tree_routing(const fat_tree& tree,
                              const link_attachment* links = nullptr,
                              const fault_tree_forest* forest = nullptr);

    void begin_round(round_state& rs) override;
    /// The closed-form oracle has no flood to cut short; the base overload
    /// that takes (and ignores) the query-target hint stays visible here.
    using reachability_oracle::begin_round;
    [[nodiscard]] bool border_reachable(node_id host) override;
    [[nodiscard]] bool host_to_host(node_id a, node_id b) override;
    /// Closed-form cleanliness: a round is fully connected for any plan iff
    /// no edge switch, host-uplink link, or unclassifiable component (e.g. a
    /// fault-tree dependency) failed AND at least one core group — its
    /// aggregation switches across all pods, its cores, its border switch,
    /// and every link among them — is completely untouched. That surviving
    /// group carries any rack to any rack and to the border, so every query
    /// degenerates to host aliveness. O(|raw_failed|) via a role table.
    [[nodiscard]] bool round_fully_connected(
        std::span<const component_id> raw_failed) override;
    /// Three-way refinement: rounds whose non-group failures are ONLY edge
    /// switches or host-uplink links are `semi` (with the same untouched-
    /// group requirement). Such a failure cuts exactly its own racks off
    /// while the surviving group still carries every attached rack anywhere,
    /// so the verdict is a pure function of slot-wise attachment-effective
    /// aliveness — precisely the contract reachability_oracle::classify_round
    /// demands for semi.
    [[nodiscard]] round_class classify_round(
        std::span<const component_id> raw_failed) override;
    [[nodiscard]] std::unique_ptr<reachability_oracle> clone() const override;
    [[nodiscard]] const link_attachment* consulted_links()
        const noexcept override {
        return links_;
    }

private:
    [[nodiscard]] bool node_ok(node_id id) { return !rs_->failed(id); }
    [[nodiscard]] bool link_ok(std::uint32_t edge) {
        if (links_ == nullptr) {
            return true;
        }
        return !links_->link_failed(
            edge, [this](component_id c) { return rs_->failed(c); });
    }

    /// Uplink mask of edge switch (pod, e); includes the edge switch's own
    /// aliveness of aggs and the edge<->agg links but NOT the edge switch
    /// itself.
    [[nodiscard]] std::uint64_t uplink_mask(int pod, int edge_index);
    /// Transit mask of (pod, group): alive cores reachable from agg_j(pod).
    /// Zero when agg_j(pod) itself is dead.
    [[nodiscard]] std::uint64_t transit_mask(int pod, int group);
    /// External mask of a group: alive cores with a working path down to an
    /// alive border switch and its peering link.
    [[nodiscard]] std::uint64_t external_group_mask(int group);

    const fat_tree* tree_;
    const link_attachment* links_;
    const fault_tree_forest* forest_;
    round_state* rs_ = nullptr;

    // ---- patched-mask fast path ------------------------------------------
    // Reverse index: component id -> the mask bits its effective failure
    // clears. Built once in the constructor from the same loops that
    // resolve link edge ids.
    enum class patch_kind : std::uint8_t {
        agg,          ///< a=pod, b=group: agg switch down (uplink bit + transit)
        core,         ///< a=group, b=i: core switch down (transit + external)
        ext_zero,     ///< a=group: border switch or its peering link down
        uplink_exc,   ///< a=pod*g+e, b=j: edge<->agg link down
        transit_exc,  ///< a=pod*g+group, b=i: agg<->core link down
        ext_exc,      ///< a=group, b=i: core<->border link down
    };
    struct patch_op {
        patch_kind kind;
        std::uint32_t a;
        std::uint32_t b;
    };
    void add_touch(component_id component, patch_op op);
    /// Ensures the per-round patch state matches rs_'s current round; falls
    /// back to the legacy path when the round's forest is not forest_.
    void prepare_round();
    void apply_candidate(component_id candidate);

    std::vector<std::vector<patch_op>> touch_;  ///< by component id
    /// Dependency component -> mask-relevant components whose fault trees
    /// read it (empty unless forest_ given).
    std::vector<std::vector<component_id>> rev_dep_;

    // Per-round patch state, stamped with prep_gen_.
    bool fast_round_ = false;
    const round_state* prep_rs_ = nullptr;
    std::uint32_t prep_epoch_ = 0;
    std::uint64_t prep_gen_ = 0;
    std::vector<std::uint64_t> cand_gen_;          ///< dedup stamps (by id)
    std::vector<std::uint64_t> pod_agg_clear_;     ///< by pod
    std::vector<std::uint64_t> pod_agg_gen_;
    std::vector<std::uint64_t> core_clear_;        ///< by group
    std::vector<std::uint64_t> core_gen_;
    std::vector<std::uint64_t> ext_zero_gen_;      ///< by group
    std::vector<std::pair<std::uint32_t, std::uint64_t>> uplink_exc_;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> transit_exc_;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> ext_exc_;

    // Pre-resolved link edge ids (empty when links_ == nullptr).
    std::vector<std::uint32_t> host_uplink_;          ///< by host id (dense)
    std::vector<std::uint32_t> edge_agg_link_;        ///< (pod*g + e)*g + j
    std::vector<std::uint32_t> agg_core_link_;        ///< (pod*g + j)*g + i
    std::vector<std::uint32_t> core_border_link_;     ///< j*g + i
    std::vector<std::uint32_t> border_external_link_; ///< j

    // Role table for classify_round: per component id, either the
    // core-group index it belongs to (0..g-1), or a sentinel. Hosts are
    // ignored (their failure is part of the cached key / slot function);
    // edge switches and host-uplink links only detach their own racks
    // (semi); external, and anything the table cannot attribute (fault-tree
    // deps, shared link components spanning groups) make a round unclean.
    static constexpr std::uint8_t role_ignore = 0xFF;
    static constexpr std::uint8_t role_unclean = 0xFE;
    static constexpr std::uint8_t role_unassigned = 0xFD;
    static constexpr std::uint8_t role_semi = 0xFC;
    void assign_link_role(component_id component, std::uint8_t role);
    std::vector<std::uint8_t> role_;
    std::uint64_t full_group_mask_ = 0;

    // Per-round caches (epoch-stamped).
    std::vector<std::uint64_t> uplink_cache_;
    std::vector<std::uint32_t> uplink_epoch_;
    std::vector<std::uint64_t> transit_cache_;
    std::vector<std::uint32_t> transit_epoch_;
    std::vector<std::uint64_t> external_cache_;
    std::vector<std::uint32_t> external_epoch_;
};

}  // namespace recloud
