// Fat-tree routing oracle: closed-form multipath up/down reachability, with
// optional link-failure awareness.
//
// Fat-tree routing is valley-free: a packet travels up (host -> edge ->
// aggregation -> core) and then down. With node and link failures,
// reachability has a closed form over per-round bitmasks:
//
//   - uplink mask U(e) of an edge switch e: bit j set iff aggregation
//     switch j of e's pod is alive AND the e<->agg_j link is alive;
//   - transit mask T(p, j) of pod p and group j: bit i set iff core (j, i)
//     is alive AND the agg_j(p)<->core(j,i) link is alive;
//   - external group mask X(j): bit i set iff core (j, i) is alive, the
//     core<->border_j link is alive, border_j is alive, and border_j's
//     external peering link is alive.
//
// Then, writing e(h) for a host's edge switch and p(h) for its pod:
//   border_reachable(h)  = alive(h) ^ alive(h<->e) ^ alive(e) ^
//                          exists j in U(e): T(p,j) & X(j) != 0
//   host_to_host(a, b)   = same edge: both ends + links + the edge;
//                          same pod:  U(e_a) & U(e_b) != 0;
//                          cross pod: exists j in U(e_a) & U(e_b):
//                                     T(p_a,j) & T(p_b,j) != 0.
//
// All masks are epoch-stamped and built lazily per round, so a query costs
// O(g) worst case and O(1) when the masks are warm. Without a link
// attachment, links are treated as infallible and the math degenerates to
// the node-only closed form. std::uint64_t masks support k up to 128.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/oracle.hpp"
#include "topology/fat_tree.hpp"
#include "topology/links.hpp"

namespace recloud {

class fat_tree_routing final : public reachability_oracle {
public:
    /// `links` is optional and must outlive the oracle when given.
    explicit fat_tree_routing(const fat_tree& tree,
                              const link_attachment* links = nullptr);

    void begin_round(round_state& rs) override;
    /// The closed-form oracle has no flood to cut short; the base overload
    /// that takes (and ignores) the query-target hint stays visible here.
    using reachability_oracle::begin_round;
    [[nodiscard]] bool border_reachable(node_id host) override;
    [[nodiscard]] bool host_to_host(node_id a, node_id b) override;
    [[nodiscard]] std::unique_ptr<reachability_oracle> clone() const override;
    [[nodiscard]] const link_attachment* consulted_links()
        const noexcept override {
        return links_;
    }

private:
    [[nodiscard]] bool node_ok(node_id id) { return !rs_->failed(id); }
    [[nodiscard]] bool link_ok(std::uint32_t edge) {
        if (links_ == nullptr) {
            return true;
        }
        return !links_->link_failed(
            edge, [this](component_id c) { return rs_->failed(c); });
    }

    /// Uplink mask of edge switch (pod, e); includes the edge switch's own
    /// aliveness of aggs and the edge<->agg links but NOT the edge switch
    /// itself.
    [[nodiscard]] std::uint64_t uplink_mask(int pod, int edge_index);
    /// Transit mask of (pod, group): alive cores reachable from agg_j(pod).
    /// Zero when agg_j(pod) itself is dead.
    [[nodiscard]] std::uint64_t transit_mask(int pod, int group);
    /// External mask of a group: alive cores with a working path down to an
    /// alive border switch and its peering link.
    [[nodiscard]] std::uint64_t external_group_mask(int group);

    const fat_tree* tree_;
    const link_attachment* links_;
    round_state* rs_ = nullptr;

    // Pre-resolved link edge ids (empty when links_ == nullptr).
    std::vector<std::uint32_t> host_uplink_;          ///< by host id (dense)
    std::vector<std::uint32_t> edge_agg_link_;        ///< (pod*g + e)*g + j
    std::vector<std::uint32_t> agg_core_link_;        ///< (pod*g + j)*g + i
    std::vector<std::uint32_t> core_border_link_;     ///< j*g + i
    std::vector<std::uint32_t> border_external_link_; ///< j

    // Per-round caches (epoch-stamped).
    std::vector<std::uint64_t> uplink_cache_;
    std::vector<std::uint32_t> uplink_epoch_;
    std::vector<std::uint64_t> transit_cache_;
    std::vector<std::uint32_t> transit_epoch_;
    std::vector<std::uint64_t> external_cache_;
    std::vector<std::uint32_t> external_epoch_;
};

}  // namespace recloud
