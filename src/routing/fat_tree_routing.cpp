#include "routing/fat_tree_routing.hpp"

#include <bit>
#include <stdexcept>

namespace recloud {

fat_tree_routing::fat_tree_routing(const fat_tree& tree,
                                   const link_attachment* links,
                                   const fault_tree_forest* forest)
    : tree_(&tree), links_(links), forest_(forest) {
    if (tree.group_width() > 64) {
        throw std::invalid_argument{"fat_tree_routing: k > 128 not supported"};
    }
    const auto g = static_cast<std::size_t>(tree.group_width());
    const auto pods = static_cast<std::size_t>(tree.pod_count());
    uplink_cache_.assign(pods * g, 0);
    uplink_epoch_.assign(pods * g, 0);
    transit_cache_.assign(pods * g, 0);
    transit_epoch_.assign(pods * g, 0);
    external_cache_.assign(g, 0);
    external_epoch_.assign(g, 0);
    pod_agg_clear_.assign(pods, 0);
    pod_agg_gen_.assign(pods, 0);
    core_clear_.assign(g, 0);
    core_gen_.assign(g, 0);
    ext_zero_gen_.assign(g, 0);

    // Mask reverse index (patched-mask fast path): which bits each switch
    // clears when it fails.
    for (int p = 0; p < tree.pod_count(); ++p) {
        for (int j = 0; j < tree.group_width(); ++j) {
            add_touch(tree.aggregation(p, j),
                      {patch_kind::agg, static_cast<std::uint32_t>(p),
                       static_cast<std::uint32_t>(j)});
        }
    }
    for (int j = 0; j < tree.group_width(); ++j) {
        for (int i = 0; i < tree.group_width(); ++i) {
            add_touch(tree.core(j, i),
                      {patch_kind::core, static_cast<std::uint32_t>(j),
                       static_cast<std::uint32_t>(i)});
        }
        add_touch(tree.border(j),
                  {patch_kind::ext_zero, static_cast<std::uint32_t>(j), 0});
    }

    // Role table for round_fully_connected. Node roles first; link
    // components are folded in below once their edge ids are resolved.
    full_group_mask_ =
        g >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << g) - 1;
    role_.assign(tree.graph().node_count(), role_unassigned);
    for (int j = 0; j < tree.group_width(); ++j) {
        for (int i = 0; i < tree.group_width(); ++i) {
            role_[tree.core(j, i)] = static_cast<std::uint8_t>(j);
        }
        role_[tree.border(j)] = static_cast<std::uint8_t>(j);
    }
    for (int p = 0; p < tree.pod_count(); ++p) {
        for (int j = 0; j < tree.group_width(); ++j) {
            role_[tree.aggregation(p, j)] = static_cast<std::uint8_t>(j);
        }
        for (int e = 0; e < tree.group_width(); ++e) {
            role_[tree.edge(p, e)] = role_semi;
            for (int h = 0; h < tree.hosts_per_edge(); ++h) {
                role_[tree.host(p, e, h)] = role_ignore;
            }
        }
    }
    role_[tree.external()] = role_unclean;

    // Shared constructor tail: invert the forest's dependency edges over the
    // mask-relevant components so a raw dependency failure maps straight to
    // the switches it can flip, then size the per-round dedup stamps.
    const auto finish_touch_index = [this] {
        if (forest_ != nullptr) {
            for (component_id c = 0; c < touch_.size(); ++c) {
                if (touch_[c].empty()) {
                    continue;
                }
                for (const component_id dep : forest_->dependencies_of(c)) {
                    if (dep >= rev_dep_.size()) {
                        rev_dep_.resize(dep + 1);
                    }
                    rev_dep_[dep].push_back(c);
                }
            }
        }
        cand_gen_.assign(
            std::max(touch_.size(), rev_dep_.size()), 0);
    };

    if (links_ == nullptr) {
        finish_touch_index();
        return;
    }
    if (links_->component_of_edge.size() != tree.graph().edge_count()) {
        throw std::invalid_argument{
            "fat_tree_routing: link attachment does not match topology"};
    }
    // Resolve every structural link's edge id once, so per-round queries
    // are pure array lookups.
    const network_graph& graph = tree.graph();
    host_uplink_.assign(graph.node_count(), 0);
    edge_agg_link_.assign(pods * g * g, 0);
    agg_core_link_.assign(pods * g * g, 0);
    core_border_link_.assign(g * g, 0);
    border_external_link_.assign(g, 0);
    for (int p = 0; p < tree.pod_count(); ++p) {
        for (int j = 0; j < tree.group_width(); ++j) {
            const node_id agg = tree.aggregation(p, j);
            for (int e = 0; e < tree.group_width(); ++e) {
                edge_agg_link_[(static_cast<std::size_t>(p) * g + e) * g + j] =
                    graph.edge_id(tree.edge(p, e), agg);
            }
            for (int i = 0; i < tree.group_width(); ++i) {
                agg_core_link_[(static_cast<std::size_t>(p) * g + j) * g + i] =
                    graph.edge_id(agg, tree.core(j, i));
            }
        }
        for (int e = 0; e < tree.group_width(); ++e) {
            const node_id edge = tree.edge(p, e);
            for (int h = 0; h < tree.hosts_per_edge(); ++h) {
                const node_id host = tree.host(p, e, h);
                host_uplink_[host] = graph.edge_id(host, edge);
            }
        }
    }
    for (int j = 0; j < tree.group_width(); ++j) {
        const node_id border = tree.border(j);
        for (int i = 0; i < tree.group_width(); ++i) {
            core_border_link_[static_cast<std::size_t>(j) * g + i] =
                graph.edge_id(tree.core(j, i), border);
        }
        border_external_link_[j] = graph.edge_id(border, tree.external());
    }

    // Link-component roles. A component carrying edges of different groups
    // (shared-risk groups) degrades to unclean inside assign_link_role.
    const auto link_component = [&](std::uint32_t edge) {
        return links_->component_of_edge[edge];
    };
    for (int p = 0; p < tree.pod_count(); ++p) {
        for (int j = 0; j < tree.group_width(); ++j) {
            const auto role = static_cast<std::uint8_t>(j);
            for (int e = 0; e < tree.group_width(); ++e) {
                assign_link_role(
                    link_component(
                        edge_agg_link_[(static_cast<std::size_t>(p) * g + e) * g + j]),
                    role);
            }
            for (int i = 0; i < tree.group_width(); ++i) {
                assign_link_role(
                    link_component(
                        agg_core_link_[(static_cast<std::size_t>(p) * g + j) * g + i]),
                    role);
            }
        }
        for (int e = 0; e < tree.group_width(); ++e) {
            for (int h = 0; h < tree.hosts_per_edge(); ++h) {
                assign_link_role(link_component(host_uplink_[tree.host(p, e, h)]),
                                 role_semi);
            }
        }
    }
    for (int j = 0; j < tree.group_width(); ++j) {
        const auto role = static_cast<std::uint8_t>(j);
        for (int i = 0; i < tree.group_width(); ++i) {
            assign_link_role(
                link_component(core_border_link_[static_cast<std::size_t>(j) * g + i]),
                role);
        }
        assign_link_role(link_component(border_external_link_[j]), role);
    }

    // Link components' mask bits. Host uplinks are mask-irrelevant (checked
    // directly per query); a shared-risk component simply accumulates one op
    // per carried edge.
    for (int p = 0; p < tree.pod_count(); ++p) {
        for (int j = 0; j < tree.group_width(); ++j) {
            for (int e = 0; e < tree.group_width(); ++e) {
                const std::size_t slot = static_cast<std::size_t>(p) * g + e;
                add_touch(link_component(edge_agg_link_[slot * g + j]),
                          {patch_kind::uplink_exc,
                           static_cast<std::uint32_t>(slot),
                           static_cast<std::uint32_t>(j)});
            }
            const std::size_t slot = static_cast<std::size_t>(p) * g + j;
            for (int i = 0; i < tree.group_width(); ++i) {
                add_touch(link_component(agg_core_link_[slot * g + i]),
                          {patch_kind::transit_exc,
                           static_cast<std::uint32_t>(slot),
                           static_cast<std::uint32_t>(i)});
            }
        }
    }
    for (int j = 0; j < tree.group_width(); ++j) {
        for (int i = 0; i < tree.group_width(); ++i) {
            add_touch(
                link_component(core_border_link_[static_cast<std::size_t>(j) * g + i]),
                {patch_kind::ext_exc, static_cast<std::uint32_t>(j),
                 static_cast<std::uint32_t>(i)});
        }
        add_touch(link_component(border_external_link_[j]),
                  {patch_kind::ext_zero, static_cast<std::uint32_t>(j), 0});
    }
    finish_touch_index();
}

void fat_tree_routing::add_touch(component_id component, patch_op op) {
    if (component == invalid_node) {
        return;  // infallible edge: nothing can fail, nothing to patch
    }
    if (component >= touch_.size()) {
        touch_.resize(component + 1);
    }
    touch_[component].push_back(op);
}

void fat_tree_routing::assign_link_role(component_id component,
                                        std::uint8_t role) {
    if (component == invalid_node) {
        return;  // infallible edge: nothing can fail, nothing to classify
    }
    if (component >= role_.size()) {
        role_.resize(component + 1, role_unassigned);
    }
    if (role_[component] == role_unassigned) {
        role_[component] = role;
    } else if (role_[component] != role) {
        role_[component] = role_unclean;
    }
}

bool fat_tree_routing::round_fully_connected(
    std::span<const component_id> raw_failed) {
    return classify_round(raw_failed) == round_class::clean;
}

round_class fat_tree_routing::classify_round(
    std::span<const component_id> raw_failed) {
    std::uint64_t touched = 0;
    bool semi = false;
    for (const component_id id : raw_failed) {
        const std::uint8_t role =
            id < role_.size() ? role_[id] : role_unclean;
        if (role == role_ignore) {
            continue;
        }
        if (role == role_semi) {
            semi = true;  // detaches its own racks, nothing else
            continue;
        }
        if (role >= 64) {
            return round_class::unclean;  // unattributable component
        }
        touched |= std::uint64_t{1} << role;
    }
    // At least one core group must survive completely untouched; it carries
    // every still-attached rack to any rack and to the border.
    if (touched == full_group_mask_) {
        return round_class::unclean;
    }
    return semi ? round_class::semi : round_class::clean;
}

void fat_tree_routing::begin_round(round_state& rs) {
    rs_ = &rs;
}

void fat_tree_routing::apply_candidate(component_id candidate) {
    if (cand_gen_[candidate] == prep_gen_) {
        return;
    }
    cand_gen_[candidate] = prep_gen_;
    if (!rs_->failed(candidate)) {
        return;  // e.g. a redundant supply absorbed the dependency failure
    }
    for (const patch_op& op : touch_[candidate]) {
        switch (op.kind) {
            case patch_kind::agg:
                if (pod_agg_gen_[op.a] != prep_gen_) {
                    pod_agg_gen_[op.a] = prep_gen_;
                    pod_agg_clear_[op.a] = 0;
                }
                pod_agg_clear_[op.a] |= std::uint64_t{1} << op.b;
                break;
            case patch_kind::core:
                if (core_gen_[op.a] != prep_gen_) {
                    core_gen_[op.a] = prep_gen_;
                    core_clear_[op.a] = 0;
                }
                core_clear_[op.a] |= std::uint64_t{1} << op.b;
                break;
            case patch_kind::ext_zero:
                ext_zero_gen_[op.a] = prep_gen_;
                break;
            case patch_kind::uplink_exc:
                uplink_exc_.emplace_back(op.a, std::uint64_t{1} << op.b);
                break;
            case patch_kind::transit_exc:
                transit_exc_.emplace_back(op.a, std::uint64_t{1} << op.b);
                break;
            case patch_kind::ext_exc:
                ext_exc_.emplace_back(op.a, std::uint64_t{1} << op.b);
                break;
        }
    }
}

void fat_tree_routing::prepare_round() {
    if (prep_rs_ == rs_ && prep_epoch_ == rs_->epoch()) {
        return;
    }
    prep_rs_ = rs_;
    prep_epoch_ = rs_->epoch();
    // The reverse index only sees effective failures the round's own forest
    // produces; a mismatched forest means unknown failure semantics, so the
    // legacy per-slot path answers instead.
    fast_round_ = rs_->forest() == forest_;
    if (!fast_round_) {
        return;
    }
    ++prep_gen_;
    uplink_exc_.clear();
    transit_exc_.clear();
    ext_exc_.clear();
    for (const component_id id : rs_->raw_failed_list()) {
        if (id < touch_.size() && !touch_[id].empty()) {
            apply_candidate(id);
        }
        if (id < rev_dep_.size()) {
            for (const component_id dependent : rev_dep_[id]) {
                apply_candidate(dependent);
            }
        }
    }
}

std::uint64_t fat_tree_routing::uplink_mask(int pod, int edge_index) {
    const auto g = static_cast<std::size_t>(tree_->group_width());
    const std::size_t slot = static_cast<std::size_t>(pod) * g + edge_index;
    prepare_round();
    if (fast_round_) {
        std::uint64_t mask = full_group_mask_;
        if (pod_agg_gen_[pod] == prep_gen_) {
            mask &= ~pod_agg_clear_[pod];
        }
        for (const auto& [exc_slot, bits] : uplink_exc_) {
            if (exc_slot == slot) {
                mask &= ~bits;
            }
        }
        return mask;
    }
    if (uplink_epoch_[slot] == rs_->epoch()) {
        return uplink_cache_[slot];
    }
    std::uint64_t mask = 0;
    for (int j = 0; j < tree_->group_width(); ++j) {
        if (!node_ok(tree_->aggregation(pod, j))) {
            continue;
        }
        if (links_ != nullptr && !link_ok(edge_agg_link_[slot * g + j])) {
            continue;
        }
        mask |= std::uint64_t{1} << j;
    }
    uplink_cache_[slot] = mask;
    uplink_epoch_[slot] = rs_->epoch();
    return mask;
}

std::uint64_t fat_tree_routing::transit_mask(int pod, int group) {
    const auto g = static_cast<std::size_t>(tree_->group_width());
    const std::size_t slot = static_cast<std::size_t>(pod) * g + group;
    prepare_round();
    if (fast_round_) {
        if (pod_agg_gen_[pod] == prep_gen_ &&
            (pod_agg_clear_[pod] >> group & 1) != 0) {
            return 0;  // the pod's aggregation switch of this group is down
        }
        std::uint64_t mask = full_group_mask_;
        if (core_gen_[group] == prep_gen_) {
            mask &= ~core_clear_[group];
        }
        for (const auto& [exc_slot, bits] : transit_exc_) {
            if (exc_slot == slot) {
                mask &= ~bits;
            }
        }
        return mask;
    }
    if (transit_epoch_[slot] == rs_->epoch()) {
        return transit_cache_[slot];
    }
    std::uint64_t mask = 0;
    if (node_ok(tree_->aggregation(pod, group))) {
        for (int i = 0; i < tree_->group_width(); ++i) {
            if (!node_ok(tree_->core(group, i))) {
                continue;
            }
            if (links_ != nullptr && !link_ok(agg_core_link_[slot * g + i])) {
                continue;
            }
            mask |= std::uint64_t{1} << i;
        }
    }
    transit_cache_[slot] = mask;
    transit_epoch_[slot] = rs_->epoch();
    return mask;
}

std::uint64_t fat_tree_routing::external_group_mask(int group) {
    prepare_round();
    if (fast_round_) {
        if (ext_zero_gen_[group] == prep_gen_) {
            return 0;  // border switch or its external peering link is down
        }
        std::uint64_t mask = full_group_mask_;
        if (core_gen_[group] == prep_gen_) {
            mask &= ~core_clear_[group];
        }
        for (const auto& [exc_group, bits] : ext_exc_) {
            if (exc_group == static_cast<std::uint32_t>(group)) {
                mask &= ~bits;
            }
        }
        return mask;
    }
    if (external_epoch_[group] == rs_->epoch()) {
        return external_cache_[group];
    }
    const auto g = static_cast<std::size_t>(tree_->group_width());
    std::uint64_t mask = 0;
    const node_id border = tree_->border(group);
    const bool border_up =
        node_ok(border) &&
        (links_ == nullptr || link_ok(border_external_link_[group]));
    if (border_up) {
        for (int i = 0; i < tree_->group_width(); ++i) {
            if (!node_ok(tree_->core(group, i))) {
                continue;
            }
            if (links_ != nullptr &&
                !link_ok(core_border_link_[static_cast<std::size_t>(group) * g + i])) {
                continue;
            }
            mask |= std::uint64_t{1} << i;
        }
    }
    external_cache_[group] = mask;
    external_epoch_[group] = rs_->epoch();
    return mask;
}

bool fat_tree_routing::border_reachable(node_id host) {
    if (rs_ == nullptr) {
        throw std::logic_error{"fat_tree_routing: begin_round not called"};
    }
    if (!node_ok(host)) {
        return false;
    }
    if (links_ != nullptr && !link_ok(host_uplink_[host])) {
        return false;
    }
    const node_id edge = tree_->edge_of_host(host);
    if (!node_ok(edge)) {
        return false;
    }
    const int pod = tree_->pod_of_host(host);
    std::uint64_t up = uplink_mask(pod, tree_->edge_index_of_host(host));
    while (up != 0) {
        const int j = std::countr_zero(up);
        up &= up - 1;
        if ((transit_mask(pod, j) & external_group_mask(j)) != 0) {
            return true;
        }
    }
    return false;
}

bool fat_tree_routing::host_to_host(node_id a, node_id b) {
    if (rs_ == nullptr) {
        throw std::logic_error{"fat_tree_routing: begin_round not called"};
    }
    if (!node_ok(a) || !node_ok(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    if (links_ != nullptr &&
        (!link_ok(host_uplink_[a]) || !link_ok(host_uplink_[b]))) {
        return false;
    }
    const node_id edge_a = tree_->edge_of_host(a);
    const node_id edge_b = tree_->edge_of_host(b);
    if (!node_ok(edge_a)) {
        return false;
    }
    if (edge_a == edge_b) {
        return true;  // same rack: the shared (alive) edge switch suffices
    }
    if (!node_ok(edge_b)) {
        return false;
    }
    const int pod_a = tree_->pod_of_host(a);
    const int pod_b = tree_->pod_of_host(b);
    const std::uint64_t up_a = uplink_mask(pod_a, tree_->edge_index_of_host(a));
    const std::uint64_t up_b = uplink_mask(pod_b, tree_->edge_index_of_host(b));
    if (pod_a == pod_b) {
        // Up to any aggregation switch both racks can reach, straight down.
        return (up_a & up_b) != 0;
    }
    std::uint64_t common = up_a & up_b;
    while (common != 0) {
        const int j = std::countr_zero(common);
        common &= common - 1;
        if ((transit_mask(pod_a, j) & transit_mask(pod_b, j)) != 0) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<reachability_oracle> fat_tree_routing::clone() const {
    return std::make_unique<fat_tree_routing>(*tree_, links_, forest_);
}

}  // namespace recloud
