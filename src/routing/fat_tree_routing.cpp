#include "routing/fat_tree_routing.hpp"

#include <bit>
#include <stdexcept>

namespace recloud {

fat_tree_routing::fat_tree_routing(const fat_tree& tree,
                                   const link_attachment* links)
    : tree_(&tree), links_(links) {
    if (tree.group_width() > 64) {
        throw std::invalid_argument{"fat_tree_routing: k > 128 not supported"};
    }
    const auto g = static_cast<std::size_t>(tree.group_width());
    const auto pods = static_cast<std::size_t>(tree.pod_count());
    uplink_cache_.assign(pods * g, 0);
    uplink_epoch_.assign(pods * g, 0);
    transit_cache_.assign(pods * g, 0);
    transit_epoch_.assign(pods * g, 0);
    external_cache_.assign(g, 0);
    external_epoch_.assign(g, 0);

    if (links_ == nullptr) {
        return;
    }
    if (links_->component_of_edge.size() != tree.graph().edge_count()) {
        throw std::invalid_argument{
            "fat_tree_routing: link attachment does not match topology"};
    }
    // Resolve every structural link's edge id once, so per-round queries
    // are pure array lookups.
    const network_graph& graph = tree.graph();
    host_uplink_.assign(graph.node_count(), 0);
    edge_agg_link_.assign(pods * g * g, 0);
    agg_core_link_.assign(pods * g * g, 0);
    core_border_link_.assign(g * g, 0);
    border_external_link_.assign(g, 0);
    for (int p = 0; p < tree.pod_count(); ++p) {
        for (int j = 0; j < tree.group_width(); ++j) {
            const node_id agg = tree.aggregation(p, j);
            for (int e = 0; e < tree.group_width(); ++e) {
                edge_agg_link_[(static_cast<std::size_t>(p) * g + e) * g + j] =
                    graph.edge_id(tree.edge(p, e), agg);
            }
            for (int i = 0; i < tree.group_width(); ++i) {
                agg_core_link_[(static_cast<std::size_t>(p) * g + j) * g + i] =
                    graph.edge_id(agg, tree.core(j, i));
            }
        }
        for (int e = 0; e < tree.group_width(); ++e) {
            const node_id edge = tree.edge(p, e);
            for (int h = 0; h < tree.hosts_per_edge(); ++h) {
                const node_id host = tree.host(p, e, h);
                host_uplink_[host] = graph.edge_id(host, edge);
            }
        }
    }
    for (int j = 0; j < tree.group_width(); ++j) {
        const node_id border = tree.border(j);
        for (int i = 0; i < tree.group_width(); ++i) {
            core_border_link_[static_cast<std::size_t>(j) * g + i] =
                graph.edge_id(tree.core(j, i), border);
        }
        border_external_link_[j] = graph.edge_id(border, tree.external());
    }
}

void fat_tree_routing::begin_round(round_state& rs) {
    rs_ = &rs;
}

std::uint64_t fat_tree_routing::uplink_mask(int pod, int edge_index) {
    const auto g = static_cast<std::size_t>(tree_->group_width());
    const std::size_t slot = static_cast<std::size_t>(pod) * g + edge_index;
    if (uplink_epoch_[slot] == rs_->epoch()) {
        return uplink_cache_[slot];
    }
    std::uint64_t mask = 0;
    for (int j = 0; j < tree_->group_width(); ++j) {
        if (!node_ok(tree_->aggregation(pod, j))) {
            continue;
        }
        if (links_ != nullptr && !link_ok(edge_agg_link_[slot * g + j])) {
            continue;
        }
        mask |= std::uint64_t{1} << j;
    }
    uplink_cache_[slot] = mask;
    uplink_epoch_[slot] = rs_->epoch();
    return mask;
}

std::uint64_t fat_tree_routing::transit_mask(int pod, int group) {
    const auto g = static_cast<std::size_t>(tree_->group_width());
    const std::size_t slot = static_cast<std::size_t>(pod) * g + group;
    if (transit_epoch_[slot] == rs_->epoch()) {
        return transit_cache_[slot];
    }
    std::uint64_t mask = 0;
    if (node_ok(tree_->aggregation(pod, group))) {
        for (int i = 0; i < tree_->group_width(); ++i) {
            if (!node_ok(tree_->core(group, i))) {
                continue;
            }
            if (links_ != nullptr && !link_ok(agg_core_link_[slot * g + i])) {
                continue;
            }
            mask |= std::uint64_t{1} << i;
        }
    }
    transit_cache_[slot] = mask;
    transit_epoch_[slot] = rs_->epoch();
    return mask;
}

std::uint64_t fat_tree_routing::external_group_mask(int group) {
    if (external_epoch_[group] == rs_->epoch()) {
        return external_cache_[group];
    }
    const auto g = static_cast<std::size_t>(tree_->group_width());
    std::uint64_t mask = 0;
    const node_id border = tree_->border(group);
    const bool border_up =
        node_ok(border) &&
        (links_ == nullptr || link_ok(border_external_link_[group]));
    if (border_up) {
        for (int i = 0; i < tree_->group_width(); ++i) {
            if (!node_ok(tree_->core(group, i))) {
                continue;
            }
            if (links_ != nullptr &&
                !link_ok(core_border_link_[static_cast<std::size_t>(group) * g + i])) {
                continue;
            }
            mask |= std::uint64_t{1} << i;
        }
    }
    external_cache_[group] = mask;
    external_epoch_[group] = rs_->epoch();
    return mask;
}

bool fat_tree_routing::border_reachable(node_id host) {
    if (rs_ == nullptr) {
        throw std::logic_error{"fat_tree_routing: begin_round not called"};
    }
    if (!node_ok(host)) {
        return false;
    }
    if (links_ != nullptr && !link_ok(host_uplink_[host])) {
        return false;
    }
    const node_id edge = tree_->edge_of_host(host);
    if (!node_ok(edge)) {
        return false;
    }
    const int pod = tree_->pod_of_host(host);
    std::uint64_t up = uplink_mask(pod, tree_->edge_index_of_host(host));
    while (up != 0) {
        const int j = std::countr_zero(up);
        up &= up - 1;
        if ((transit_mask(pod, j) & external_group_mask(j)) != 0) {
            return true;
        }
    }
    return false;
}

bool fat_tree_routing::host_to_host(node_id a, node_id b) {
    if (rs_ == nullptr) {
        throw std::logic_error{"fat_tree_routing: begin_round not called"};
    }
    if (!node_ok(a) || !node_ok(b)) {
        return false;
    }
    if (a == b) {
        return true;
    }
    if (links_ != nullptr &&
        (!link_ok(host_uplink_[a]) || !link_ok(host_uplink_[b]))) {
        return false;
    }
    const node_id edge_a = tree_->edge_of_host(a);
    const node_id edge_b = tree_->edge_of_host(b);
    if (!node_ok(edge_a)) {
        return false;
    }
    if (edge_a == edge_b) {
        return true;  // same rack: the shared (alive) edge switch suffices
    }
    if (!node_ok(edge_b)) {
        return false;
    }
    const int pod_a = tree_->pod_of_host(a);
    const int pod_b = tree_->pod_of_host(b);
    const std::uint64_t up_a = uplink_mask(pod_a, tree_->edge_index_of_host(a));
    const std::uint64_t up_b = uplink_mask(pod_b, tree_->edge_index_of_host(b));
    if (pod_a == pod_b) {
        // Up to any aggregation switch both racks can reach, straight down.
        return (up_a & up_b) != 0;
    }
    std::uint64_t common = up_a & up_b;
    while (common != 0) {
        const int j = std::countr_zero(common);
        common &= common - 1;
        if ((transit_mask(pod_a, j) & transit_mask(pod_b, j)) != 0) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<reachability_oracle> fat_tree_routing::clone() const {
    return std::make_unique<fat_tree_routing>(*tree_, links_);
}

}  // namespace recloud
