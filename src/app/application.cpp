#include "app/application.hpp"

#include <stdexcept>

namespace recloud {

app_component_id application::add_component(std::string name,
                                            std::uint32_t replicas) {
    if (replicas == 0) {
        throw std::invalid_argument{"application: component needs >= 1 replica"};
    }
    components_.push_back(app_component{std::move(name), replicas});
    return static_cast<app_component_id>(components_.size() - 1);
}

void application::require_external(app_component_id target, std::uint32_t k) {
    requirements_.push_back(reachability_requirement{target, std::nullopt, k});
}

void application::require_reachable(app_component_id target,
                                    app_component_id source, std::uint32_t k) {
    requirements_.push_back(reachability_requirement{target, source, k});
}

std::uint32_t application::total_instances() const noexcept {
    std::uint32_t total = 0;
    for (const app_component& c : components_) {
        total += c.replicas;
    }
    return total;
}

std::uint32_t application::instance_offset(app_component_id component) const {
    if (component >= components_.size()) {
        throw std::out_of_range{"application: unknown component"};
    }
    std::uint32_t offset = 0;
    for (app_component_id c = 0; c < component; ++c) {
        offset += components_[c].replicas;
    }
    return offset;
}

void application::validate() const {
    if (components_.empty()) {
        throw std::invalid_argument{"application: no components"};
    }
    if (requirements_.empty()) {
        throw std::invalid_argument{
            "application: no requirements (nothing to assess)"};
    }
    for (const reachability_requirement& req : requirements_) {
        if (req.target >= components_.size()) {
            throw std::invalid_argument{"application: requirement targets missing component"};
        }
        if (req.source && *req.source >= components_.size()) {
            throw std::invalid_argument{"application: requirement sources missing component"};
        }
        if (req.source && *req.source == req.target) {
            throw std::invalid_argument{"application: self-referential requirement"};
        }
        if (req.min_reachable == 0 ||
            req.min_reachable > components_[req.target].replicas) {
            throw std::invalid_argument{
                "application: K must be in [1, target replicas]"};
        }
    }
}

application application::k_of_n(std::uint32_t k, std::uint32_t n) {
    application app;
    const app_component_id c = app.add_component("app", n);
    app.require_external(c, k);
    app.validate();
    return app;
}

application application::layered(std::uint32_t layers, std::uint32_t k,
                                 std::uint32_t n) {
    if (layers == 0) {
        throw std::invalid_argument{"application::layered: layers must be >= 1"};
    }
    application app;
    app_component_id previous = 0;
    for (std::uint32_t layer = 0; layer < layers; ++layer) {
        const app_component_id c =
            app.add_component("layer" + std::to_string(layer), n);
        if (layer == 0) {
            app.require_external(c, k);
        } else {
            app.require_reachable(c, previous, k);
        }
        previous = c;
    }
    app.validate();
    return app;
}

application application::microservice(std::uint32_t cores, std::uint32_t supports,
                                      std::uint32_t k, std::uint32_t n) {
    if (cores == 0) {
        throw std::invalid_argument{"application::microservice: cores must be >= 1"};
    }
    application app;
    std::vector<app_component_id> core_ids;
    core_ids.reserve(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        const app_component_id id =
            app.add_component("core" + std::to_string(c), n);
        core_ids.push_back(id);
        app.require_external(id, k);
    }
    // Full mesh among cores.
    for (std::uint32_t i = 0; i < cores; ++i) {
        for (std::uint32_t j = 0; j < cores; ++j) {
            if (i != j) {
                app.require_reachable(core_ids[i], core_ids[j], k);
            }
        }
    }
    for (std::uint32_t c = 0; c < cores; ++c) {
        for (std::uint32_t s = 0; s < supports; ++s) {
            const app_component_id id = app.add_component(
                "core" + std::to_string(c) + "-support" + std::to_string(s), n);
            app.require_reachable(id, core_ids[c], k);
        }
    }
    app.validate();
    return app;
}

}  // namespace recloud
