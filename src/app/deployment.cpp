#include "app/deployment.hpp"

#include <algorithm>
#include <stdexcept>

namespace recloud {

std::span<const node_id> instances_of(const deployment_plan& plan,
                                      const application& app,
                                      app_component_id component) {
    const std::uint32_t offset = app.instance_offset(component);
    const std::uint32_t count = app.components()[component].replicas;
    if (offset + count > plan.hosts.size()) {
        throw std::out_of_range{"instances_of: plan smaller than application"};
    }
    return {plan.hosts.data() + offset, count};
}

void validate_plan(const deployment_plan& plan, const application& app,
                   const built_topology& topo) {
    if (plan.hosts.size() != app.total_instances()) {
        throw std::invalid_argument{
            "validate_plan: plan size != application total instances"};
    }
    std::vector<node_id> sorted = plan.hosts;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
        throw std::invalid_argument{"validate_plan: duplicate host in plan"};
    }
    for (const node_id host : plan.hosts) {
        if (host >= topo.graph.node_count() ||
            topo.graph.kind(host) != node_kind::host) {
            throw std::invalid_argument{"validate_plan: plan entry is not a host"};
        }
    }
}

}  // namespace recloud
