// Per-round requirement evaluation — the "check" half of route-and-check
// for applications with internal structure (paper §3.2.4, Figure 6).
//
// Semantics (documented in application.hpp): greatest-fixpoint functional
// sets, then per-requirement K checks.
#pragma once

#include <cstdint>
#include <vector>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "routing/oracle.hpp"

namespace recloud {

class requirement_evaluator {
public:
    /// Binds to an application/plan pair; both must outlive the evaluator.
    /// The plan must already be validated against the application.
    requirement_evaluator(const application& app, const deployment_plan& plan);

    /// Judges the current round (oracle must already be bound to it via
    /// begin_round). Returns true iff every requirement holds.
    [[nodiscard]] bool reliable_in_round(reachability_oracle& oracle,
                                         round_state& rs);

private:
    const application* app_;
    const deployment_plan* plan_;

    /// functional_[instance] flags, flattened component-major like the plan.
    std::vector<std::uint8_t> functional_;
    std::vector<std::uint32_t> offsets_;  ///< per component, into functional_
    std::vector<std::uint8_t> reached_;   ///< per-requirement scratch
};

}  // namespace recloud
