// Application structure model (paper §2.2 and §3.2.4).
//
// An application consists of components; component Ci is deployed with
// N_Ci redundant instances, and the developer states reachability
// requirements K_{Ci,Cj}: at least K instances of Ci must be reachable from
// component Cj — where Cj is another component or the external side (border
// switches).
//
// Functional-instance semantics (how a round is judged reliable):
//   * an instance is *functional* iff its host is effectively alive AND,
//     for every requirement targeting its component, it is reachable from
//     at least one functional instance of the source (or from a border
//     switch for external requirements);
//   * the definition is circular for meshed components, so the evaluator
//     runs it to a greatest fixpoint (start from "alive", iteratively strip
//     instances that violate a requirement);
//   * the round is reliable iff every requirement's target component keeps
//     >= K functional instances.
// This reproduces the paper's Figure 6: FE functional = border-reachable;
// DB functional = reachable from a functional FE; reliable iff >= K of each.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace recloud {

/// Index of a component within an application.
using app_component_id = std::uint32_t;

struct app_component {
    std::string name;
    std::uint32_t replicas = 0;  ///< N_Ci
};

struct reachability_requirement {
    app_component_id target = 0;  ///< Ci
    /// Cj, or nullopt for "from the external side / border switches".
    std::optional<app_component_id> source;
    std::uint32_t min_reachable = 0;  ///< K_{Ci,Cj}
};

class application {
public:
    /// Adds a component with N_Ci = replicas (>= 1); returns its id.
    app_component_id add_component(std::string name, std::uint32_t replicas);

    /// Requires >= k instances of `target` to be reachable from a border
    /// switch (the simple K-of-N scenario when it is the only requirement).
    void require_external(app_component_id target, std::uint32_t k);

    /// Requires >= k instances of `target` to be reachable from >= 1
    /// functional instance of `source`.
    void require_reachable(app_component_id target, app_component_id source,
                           std::uint32_t k);

    [[nodiscard]] std::span<const app_component> components() const noexcept {
        return components_;
    }
    [[nodiscard]] std::span<const reachability_requirement> requirements()
        const noexcept {
        return requirements_;
    }

    /// Sum of all components' replica counts = number of hosts a deployment
    /// plan must select.
    [[nodiscard]] std::uint32_t total_instances() const noexcept;

    /// Offset of a component's first instance in the flattened plan layout.
    [[nodiscard]] std::uint32_t instance_offset(app_component_id component) const;

    /// Throws std::invalid_argument if any requirement references a missing
    /// component or asks for more instances than the target has.
    void validate() const;

    // ---- canned structures from the paper's evaluation -----------------

    /// §2.2: single component, N instances, >= K alive (border-reachable).
    [[nodiscard]] static application k_of_n(std::uint32_t k, std::uint32_t n);

    /// §4.2.3: `layers` components; layer 0 needs >= k instances reachable
    /// from border switches; each next layer needs >= k instances reachable
    /// from the previous layer. Every layer has `n` replicas.
    [[nodiscard]] static application layered(std::uint32_t layers, std::uint32_t k,
                                             std::uint32_t n);

    /// §4.2.3: microservice "X-Y" structure — `cores` fully-meshed core
    /// components, each with `supports` supporting components; k-of-n per
    /// component. Cores additionally need external reachability (they are
    /// the application's serving entry points).
    [[nodiscard]] static application microservice(std::uint32_t cores,
                                                  std::uint32_t supports,
                                                  std::uint32_t k, std::uint32_t n);

private:
    std::vector<app_component> components_;
    std::vector<reachability_requirement> requirements_;
};

}  // namespace recloud
