#include "app/requirement_eval.hpp"

namespace recloud {

requirement_evaluator::requirement_evaluator(const application& app,
                                             const deployment_plan& plan)
    : app_(&app), plan_(&plan) {
    offsets_.reserve(app.components().size());
    std::uint32_t offset = 0;
    for (const app_component& c : app.components()) {
        offsets_.push_back(offset);
        offset += c.replicas;
    }
    functional_.resize(offset, 0);
}

bool requirement_evaluator::reliable_in_round(reachability_oracle& oracle,
                                              round_state& rs) {
    const auto components = app_->components();
    const auto requirements = app_->requirements();
    const auto host_of = [&](std::uint32_t flat_index) {
        return plan_->hosts[flat_index];
    };

    // Base functional state: the instance's host is effectively alive.
    for (std::uint32_t i = 0; i < functional_.size(); ++i) {
        functional_[i] = rs.failed(host_of(i)) ? 0 : 1;
    }

    // External requirements refine exactly once: border reachability of a
    // host does not depend on other instances' functional state.
    for (const reachability_requirement& req : requirements) {
        if (req.source) {
            continue;
        }
        const std::uint32_t begin = offsets_[req.target];
        const std::uint32_t end = begin + components[req.target].replicas;
        for (std::uint32_t i = begin; i < end; ++i) {
            if (functional_[i] != 0 && !oracle.border_reachable(host_of(i))) {
                functional_[i] = 0;
            }
        }
    }

    // Internal requirements run to a greatest fixpoint: strip instances
    // unreachable from every functional source instance until stable.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const reachability_requirement& req : requirements) {
            if (!req.source) {
                continue;
            }
            const std::uint32_t t_begin = offsets_[req.target];
            const std::uint32_t t_end = t_begin + components[req.target].replicas;
            const std::uint32_t s_begin = offsets_[*req.source];
            const std::uint32_t s_end = s_begin + components[*req.source].replicas;

            // Source-major iteration so oracles that cache per-source
            // floods (bfs_reachability) get cache hits: one pass per source
            // instance, marking every target instance it reaches.
            reached_.assign(t_end - t_begin, 0);
            for (std::uint32_t j = s_begin; j < s_end; ++j) {
                if (functional_[j] == 0) {
                    continue;
                }
                for (std::uint32_t i = t_begin; i < t_end; ++i) {
                    if (functional_[i] != 0 && reached_[i - t_begin] == 0 &&
                        oracle.host_to_host(host_of(j), host_of(i))) {
                        reached_[i - t_begin] = 1;
                    }
                }
            }
            for (std::uint32_t i = t_begin; i < t_end; ++i) {
                if (functional_[i] != 0 && reached_[i - t_begin] == 0) {
                    functional_[i] = 0;
                    changed = true;
                }
            }
        }
    }

    // Every requirement's target must keep >= K functional instances.
    for (const reachability_requirement& req : requirements) {
        const std::uint32_t begin = offsets_[req.target];
        const std::uint32_t end = begin + components[req.target].replicas;
        std::uint32_t functional_count = 0;
        for (std::uint32_t i = begin; i < end; ++i) {
            functional_count += functional_[i];
        }
        if (functional_count < req.min_reachable) {
            return false;
        }
    }
    return true;
}

}  // namespace recloud
