// Deployment plans (paper §2.2): which hosts the application's instances go
// onto. The plan is a flat host list in component-major order — instance r
// of component c sits at hosts[app.instance_offset(c) + r].
#pragma once

#include <span>
#include <vector>

#include "app/application.hpp"
#include "topology/graph.hpp"

namespace recloud {

struct deployment_plan {
    std::vector<node_id> hosts;

    friend bool operator==(const deployment_plan&, const deployment_plan&) = default;
};

/// Instances of `component` within the plan.
[[nodiscard]] std::span<const node_id> instances_of(const deployment_plan& plan,
                                                    const application& app,
                                                    app_component_id component);

/// Throws std::invalid_argument if the plan's size does not match the
/// application's total instances, a host id is repeated, or a host id is
/// not a deployable host of the topology.
void validate_plan(const deployment_plan& plan, const application& app,
                   const built_topology& topo);

}  // namespace recloud
