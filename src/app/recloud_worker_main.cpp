// recloud_worker: the process on the far side of the socket transport.
//
// Speaks the outer-envelope protocol (exec/worker_protocol.hpp) over a
// single inherited socket fd: receives its structural environment once,
// then per assessment a framed setup followed by framed round batches,
// judging each through the SAME worker_context the in-process engine uses —
// so a batch's verdict is bit-identical whichever side of the process
// boundary computes it.
//
// Chaos is applied HERE, by the worker on itself: an injected crash is a
// real _exit (the master observes EOF, fails the in-flight batch, and
// respawns the process), a stall is a real sleep, and corrupt/truncate
// mangle the inner framed result before it is sealed into a (valid) outer
// envelope — exercising the engine's invalid-frame path without
// desynchronizing the stream.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exec/worker_context.hpp"
#include "exec/worker_protocol.hpp"
#include "routing/bfs_reachability.hpp"
#include "util/serialize.hpp"

namespace {

using namespace recloud;

struct worker_state {
    int fd = -1;
    std::uint64_t worker_id = 0;
    std::optional<worker_environment> env;
    std::optional<chaos_schedule> chaos;
    std::unique_ptr<verdict_support> support;
    verdict_cache_options cache_options;
    std::unique_ptr<worker_context> context;
    /// Verdict-cache counters of contexts already torn down: folded in
    /// before every context drop so a telemetry harvest reports cumulative
    /// process totals no matter when it runs relative to teardown.
    verdict_cache_stats retired_cache;
};

/// Folds the live context's cache counters into the retired total (call
/// before dropping or replacing the context).
void retire_context_stats(worker_state& state) {
    if (state.context != nullptr) {
        if (const verdict_cache_stats* live = state.context->cache_stats()) {
            state.retired_cache.accumulate(*live);
        }
    }
}

void handle_env(worker_state& state, const envelope& msg) {
    state.env.emplace(decode_worker_environment(msg.blob));
    worker_environment& env = *state.env;
    state.worker_id = env.worker_id;
    retire_context_stats(state);
    state.context.reset();
    // Mirror the master's observability state so both sides of the wire
    // count and trace the same runs. Pure telemetry: no RNG, sampler or
    // verdict state is touched (§6 contract).
    obs::metrics_registry::global().set_enabled(env.metrics_enabled);
    if (env.trace_enabled) {
        obs::tracer& tracer = obs::tracer::global();
        tracer.set_current_thread_name("worker-" +
                                       std::to_string(env.worker_id));
        tracer.start();
    }
    if (env.chaos_enabled) {
        state.chaos.emplace(env.chaos);
    } else {
        state.chaos.reset();
    }
    state.cache_options = {};
    if (env.cache_enabled) {
        // The worker derives its own support set from the shipped
        // environment — semantically the same set the master computes,
        // since both are pure functions of (topology, forest, links).
        state.support = std::make_unique<verdict_support>(
            env.topology, env.component_count,
            env.forest ? &*env.forest : nullptr,
            env.links ? &*env.links : nullptr);
        state.cache_options.enabled = true;
        state.cache_options.max_entries = env.cache_max_entries;
        state.cache_options.support = state.support.get();
        state.cache_options.cross_plan = env.cache_cross_plan;
    } else {
        state.support.reset();
    }
    // hello AFTER the environment is rebuilt: the handshake proves the
    // whole env round-trip, not just process liveness.
    fd_write_all(state.fd, pack_envelope(worker_msg::hello, 0, 0, {}));
}

void handle_setup(worker_state& state, const envelope& msg) {
    if (!state.env) {
        throw transport_error{"setup before environment"};
    }
    const worker_environment& env = *state.env;
    const oracle_factory make_oracle = [&env] {
        return std::unique_ptr<reachability_oracle>{
            std::make_unique<bfs_reachability>(
                env.topology, env.links ? &*env.links : nullptr)};
    };
    retire_context_stats(state);
    state.context = std::make_unique<worker_context>(
        std::span<const std::byte>{msg.blob}, env.component_count,
        env.forest ? &*env.forest : nullptr, make_oracle,
        state.cache_options);
}

void handle_task(worker_state& state, const envelope& msg) {
    if (!state.context) {
        throw transport_error{"task before setup"};
    }
    const chaos_fault fault =
        state.chaos
            ? state.chaos->fault_for(msg.batch, msg.attempt, state.worker_id)
            : chaos_fault::none;
    if (fault == chaos_fault::crash) {
        ::_exit(13);  // a chaos crash out here is a REAL process death
    }
    if (fault == chaos_fault::stall) {
        std::this_thread::sleep_for(state.chaos->options().stall_duration);
    }
    // Judge chaos-free (the fault already happened out here), then mangle
    // the inner framed result exactly like the in-process chaos path. The
    // batch span carries the master's flow id (envelope span_id) so the
    // merged trace stitches dispatch -> execute across processes.
    obs::tracer& tracer = obs::tracer::global();
    const bool traced = tracer.enabled();
    const std::uint64_t span_start = traced ? tracer.now_ns() : 0;
    std::vector<std::byte> framed = state.context->run_batch(
        std::span<const std::byte>{msg.blob}, nullptr, msg.batch, msg.attempt,
        state.worker_id);
    if (traced) {
        tracer.record_flow("worker.batch", span_start,
                           tracer.now_ns() - span_start, msg.span_id,
                           msg.span_id != 0 ? obs::flow_finish
                                            : obs::flow_none);
    }
    if (fault == chaos_fault::corrupt_result) {
        chaos_schedule::corrupt(framed, msg.batch, msg.attempt,
                                state.worker_id);
    } else if (fault == chaos_fault::truncate_result) {
        chaos_schedule::truncate(framed, msg.batch, msg.attempt,
                                 state.worker_id);
    }
    fd_write_all(state.fd,
                 pack_envelope(worker_msg::result, msg.batch, msg.attempt,
                               framed));
}

/// Telemetry harvest: ship the registry delta (snapshot-then-reset), the
/// cumulative verdict-cache counters and the drained trace capture. Runs
/// between envelopes on the only span-recording thread, so the drain's
/// quiescence requirement holds by construction.
void handle_telemetry(worker_state& state, const envelope& msg) {
    worker_telemetry t;
    t.worker_id = state.worker_id;
    t.pid = static_cast<std::uint32_t>(::getpid());
    t.cache = state.retired_cache;
    if (state.context != nullptr) {
        if (const verdict_cache_stats* live = state.context->cache_stats()) {
            t.cache.accumulate(*live);
        }
    }
    obs::metrics_registry& registry = obs::metrics_registry::global();
    t.metrics = registry.snapshot().metrics;
    registry.reset();
    t.trace = obs::tracer::global().drain_capture(
        "recloud_worker " + std::to_string(state.worker_id));
    fd_write_all(state.fd,
                 pack_envelope(worker_msg::telemetry, msg.batch, msg.attempt,
                               encode_worker_telemetry(t)));
}

int run(int fd) {
    worker_state state;
    state.fd = fd;
    frame_assembler assembler;
    std::byte buf[65536];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n == 0) {
            return 0;  // master gone: clean exit
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return 3;
        }
        assembler.feed(
            std::span<const std::byte>{buf, static_cast<std::size_t>(n)});
        while (auto frame = assembler.next_frame()) {
            const envelope msg = unpack_envelope(*frame);
            switch (msg.kind) {
                case worker_msg::env:
                    handle_env(state, msg);
                    break;
                case worker_msg::setup:
                    handle_setup(state, msg);
                    break;
                case worker_msg::rebind:
                    // Cross-plan incremental mode: swap in the next (app,
                    // plan) while keeping the warm context. A respawned
                    // worker holds no context yet — then rebind degrades to
                    // a plain setup (bit-identical, just cold).
                    if (state.context) {
                        state.context->rebind(
                            std::span<const std::byte>{msg.blob});
                    } else {
                        handle_setup(state, msg);
                    }
                    break;
                case worker_msg::task:
                    handle_task(state, msg);
                    break;
                case worker_msg::teardown:
                    retire_context_stats(state);
                    state.context.reset();
                    break;
                case worker_msg::telemetry:
                    handle_telemetry(state, msg);
                    break;
                case worker_msg::shutdown:
                    return 0;
                case worker_msg::hello:
                case worker_msg::result:
                    throw transport_error{"unexpected message from master"};
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    int fd = -1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--fd") == 0) {
            fd = std::atoi(argv[i + 1]);
        }
        // --worker <k> is accepted for ps(1) readability; the authoritative
        // worker id arrives inside the env message.
    }
    if (fd < 0) {
        return 2;
    }
    try {
        return run(fd);
    } catch (const std::exception&) {
        // Any protocol/serialization failure: die loudly; the master sees
        // EOF, charges a worker crash, and respawns this slot.
        return 4;
    }
}
