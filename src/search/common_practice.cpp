#include "search/common_practice.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace recloud {

deployment_plan common_practice_plan(const built_topology& topo,
                                     const workload_map& workloads,
                                     std::uint32_t instances,
                                     const std::vector<node_id>& excluded) {
    std::vector<node_id> candidates;
    candidates.reserve(topo.hosts.size());
    const std::set<node_id> excluded_set(excluded.begin(), excluded.end());
    for (const node_id host : topo.hosts) {
        if (!excluded_set.contains(host)) {
            candidates.push_back(host);
        }
    }
    if (candidates.size() < instances) {
        throw std::invalid_argument{
            "common_practice_plan: not enough hosts after exclusions"};
    }
    // Least-loaded first; host id breaks ties deterministically.
    std::sort(candidates.begin(), candidates.end(),
              [&](node_id a, node_id b) {
                  const double la = workloads.of(a);
                  const double lb = workloads.of(b);
                  return la != lb ? la < lb : a < b;
              });

    deployment_plan plan;
    plan.hosts.reserve(instances);
    std::set<node_id> used_racks;
    for (const node_id host : candidates) {
        if (plan.hosts.size() == instances) {
            break;
        }
        if (used_racks.insert(rack_of(topo.graph, host)).second) {
            plan.hosts.push_back(host);
        }
    }
    // Rack constraint exhausted (more instances than racks): fill the rest
    // with the least-loaded remaining hosts.
    if (plan.hosts.size() < instances) {
        const std::set<node_id> used(plan.hosts.begin(), plan.hosts.end());
        for (const node_id host : candidates) {
            if (plan.hosts.size() == instances) {
                break;
            }
            if (!used.contains(host)) {
                plan.hosts.push_back(host);
            }
        }
    }
    return plan;
}

std::size_t power_diversity(const built_topology& topo,
                            const power_assignment& power,
                            const deployment_plan& plan) {
    std::set<component_id> supplies;
    for (const node_id host : plan.hosts) {
        for (const component_id s : power.supplies_of_node.at(host)) {
            supplies.insert(s);
        }
        for (const component_id s :
             power.supplies_of_node.at(rack_of(topo.graph, host))) {
            supplies.insert(s);
        }
    }
    return supplies.size();
}

deployment_plan enhanced_common_practice_plan(
    const built_topology& topo, const workload_map& workloads,
    const power_assignment& power, std::uint32_t instances,
    const enhanced_common_practice_options& options) {
    if (options.candidate_plans == 0) {
        throw std::invalid_argument{
            "enhanced_common_practice_plan: need >= 1 candidate"};
    }
    deployment_plan best;
    std::size_t best_diversity = 0;
    double best_load = 0.0;
    std::vector<node_id> excluded;
    for (std::uint32_t c = 0; c < options.candidate_plans; ++c) {
        if (topo.hosts.size() < excluded.size() + instances) {
            break;  // not enough hosts for another non-repeating plan
        }
        const deployment_plan candidate =
            common_practice_plan(topo, workloads, instances, excluded);
        excluded.insert(excluded.end(), candidate.hosts.begin(),
                        candidate.hosts.end());
        const std::size_t diversity = power_diversity(topo, power, candidate);
        const double load = workloads.average(candidate.hosts);
        if (best.hosts.empty() || diversity > best_diversity ||
            (diversity == best_diversity && load < best_load)) {
            best = candidate;
            best_diversity = diversity;
            best_load = load;
        }
    }
    return best;
}

}  // namespace recloud
