// Multi-objective holistic measure (paper §3.3.3, Eq. 7):
//   M = a * reliability + b * utility
// Utility examples from the paper: bandwidth usage across the plan's hosts,
// or host resource utilization. §4.2.2 uses the average workload of the
// plan's hosts with equal weights a = b.
#pragma once

#include "app/deployment.hpp"
#include "search/workload.hpp"

namespace recloud {

struct objective_weights {
    double reliability = 1.0;  ///< a
    double utility = 1.0;      ///< b
};

/// Pluggable utility score in [0, 1]; higher is better.
class utility_function {
public:
    virtual ~utility_function() = default;
    [[nodiscard]] virtual double utility(const deployment_plan& plan) const = 0;
};

/// Utility = 1 - average workload of the plan's hosts: packing instances on
/// lightly-loaded hosts scores high (paper §4.2.2's second factor).
class workload_utility final : public utility_function {
public:
    explicit workload_utility(const workload_map& workloads)
        : workloads_(&workloads) {}

    [[nodiscard]] double utility(const deployment_plan& plan) const override {
        return 1.0 - workloads_->average(plan.hosts);
    }

private:
    const workload_map* workloads_;
};

/// Eq. 7. `utility_score` should be in [0, 1].
[[nodiscard]] inline double holistic_measure(double reliability,
                                             double utility_score,
                                             const objective_weights& w) noexcept {
    return w.reliability * reliability + w.utility * utility_score;
}

}  // namespace recloud
