// Reliable deployment search via simulated annealing (paper §3.3).
//
// The six steps of §3.3.1: start from a random plan, assess it, generate
// neighbors (one-host replacement), skip neighbors that are equivalent
// under network symmetry, assess survivors, and accept/reject with
// reCloud's re-designed acceptance probability:
//
//   Pr[accept worse plan] = exp(-delta / t)                       (Eq. 4)
//   delta = log10((1 - S_neighbor) / (1 - S_current))             (Eq. 5)
//   t     = (Tmax - Telapsed) / Tmax                              (Eq. 6)
//
// Eq. 5's log-ratio makes the acceptance probability sensitive to *orders
// of magnitude* of unreliability (0.999 vs 0.99 is a 10x reliability gap,
// not a 0.009 one). The classic absolute-difference delta is kept as an
// ablation mode. With multi-objective optimization (§3.3.3) the same
// formulas run on the holistic score normalized to [0, 1].
//
// One trajectory is a `search_chain` — a value object owning nothing but
// its RNG and counters. anneal() runs one chain (the historic API);
// anneal_chains() runs K independent chains, optionally on several
// threads, and picks the best plan deterministically (argmax score, ties
// to the lowest chain index). Each chain's trajectory depends only on its
// own seed and evaluator, never on sibling chains or the thread count.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "app/deployment.hpp"
#include "core/run_budget.hpp"
#include "obs/timeline.hpp"
#include "search/neighbor.hpp"
#include "search/objective.hpp"
#include "search/symmetry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace recloud {

/// Evaluation of one candidate plan. `score` is what the annealing compares
/// (reliability alone, or the holistic measure normalized into [0, 1]);
/// `stats.reliability` is what R_desired is checked against.
struct plan_evaluation {
    assessment_stats stats;
    double utility = 0.0;
    double score = 0.0;
};

/// Callback assessing a candidate plan (reliability + optional utility).
using plan_evaluator = std::function<plan_evaluation(const deployment_plan&)>;

/// Cheap feasibility predicate (§3.3.3: "reCloud can also quickly discard
/// any generated deployment plans that do not satisfy resource
/// constraints"). Returns false to reject a candidate before it is
/// assessed.
using plan_filter = std::function<bool(const deployment_plan&)>;

enum class delta_mode : std::uint8_t {
    log_ratio,  ///< reCloud's Eq. 5
    absolute,   ///< classic simulated annealing (ablation)
};

/// What drives the temperature and the budget.
enum class schedule_mode : std::uint8_t {
    /// The paper's Eq. 6: t = (Tmax - Telapsed) / Tmax. Trajectories depend
    /// on wall-clock scheduling, so two runs can differ.
    wall_clock,
    /// t = (max_iterations - generated) / max_iterations, expiry by the
    /// iteration counter alone. Requires a finite max_iterations. A chain's
    /// trajectory becomes a pure function of its seed — the mode the
    /// multi-chain determinism contract is stated in.
    iterations,
};

/// How a trajectory ended — the three-way lifecycle verdict replacing the
/// historic binary `fulfilled`.
enum class search_outcome : std::uint8_t {
    fulfilled,  ///< R_desired reached within the budget
    exhausted,  ///< Tmax / max_iterations ran out without reaching R_desired
    /// Cut short by an armed run_budget (deadline, cancel, or deterministic
    /// iteration cut); best_plan carries the anytime best-so-far result.
    deadline_exceeded,
};

[[nodiscard]] const char* to_string(search_outcome outcome) noexcept;

struct annealing_options {
    /// Tmax: the developer's search budget (§2.2). The search stops when it
    /// elapses (or when max_iterations is hit, whichever first).
    std::chrono::nanoseconds max_time = std::chrono::seconds{30};
    /// Deterministic iteration budget, mainly for tests; the paper's flow
    /// is purely time-driven (default: effectively unlimited).
    std::size_t max_iterations = static_cast<std::size_t>(-1);
    /// R_desired: search succeeds as soon as the current plan reaches it.
    double desired_reliability = 1.0;
    /// Step 3's symmetry check on/off (needs a symmetry_checker).
    bool use_symmetry = true;
    delta_mode delta = delta_mode::log_ratio;
    schedule_mode schedule = schedule_mode::wall_clock;
    std::uint64_t seed = 1;
    /// Consecutive symmetric skips tolerated before a neighbor is assessed
    /// regardless (progress guarantee in tiny, highly symmetric networks).
    std::size_t max_consecutive_skips = 64;
    /// Record a trace point whenever the best score improves (for the
    /// Figure 9 reliability-vs-time series).
    bool record_trace = false;
    /// Optional resource-constraint filter; rejected candidates are
    /// discarded without assessment. The initial plan is regenerated until
    /// it passes (bounded by max_consecutive_skips attempts).
    plan_filter filter;
    /// Per-iteration telemetry hook (obs/timeline.hpp): called once for the
    /// initial plan and once per generated neighbor — including skipped and
    /// filtered ones — with temperature, candidate stats and outcome.
    /// Observability only: it runs after each accept/reject decision and
    /// must not touch samplers, so it cannot perturb the search.
    obs::search_observer observer{};
    /// Chain index stamped into every observer event (anneal_chains sets
    /// it; single-chain searches leave 0).
    std::uint32_t chain = 0;
    /// Optional request-lifecycle token (core/run_budget.hpp), borrowed —
    /// must outlive the search. Checked between SA iterations (wall
    /// triggers AND the deterministic iteration cut); the assessment layers
    /// below additionally poll its wall triggers mid-assessment and throw
    /// search_preempted, which the chain absorbs by discarding the
    /// in-flight candidate. Either way the chain returns best-so-far with
    /// outcome deadline_exceeded. nullptr (the default) restores the exact
    /// historic trajectory.
    const run_budget* budget = nullptr;
};

struct annealing_trace_point {
    double elapsed_seconds = 0.0;
    double best_score = 0.0;
    double best_reliability = 0.0;
    std::size_t plans_evaluated = 0;
};

struct annealing_result {
    deployment_plan best_plan;
    plan_evaluation best_evaluation;
    bool fulfilled = false;  ///< R_desired reached within Tmax
    /// Three-way lifecycle verdict; `fulfilled` above stays as the legacy
    /// binary view (fulfilled == (outcome == search_outcome::fulfilled)).
    search_outcome outcome = search_outcome::exhausted;
    std::size_t plans_generated = 0;
    std::size_t plans_evaluated = 0;
    std::size_t symmetric_skips = 0;
    std::size_t filtered_plans = 0;  ///< rejected by the resource filter
    std::size_t accepted_worse = 0;  ///< uphill moves taken
    double elapsed_seconds = 0.0;
    std::vector<annealing_trace_point> trace;
};

/// One annealing trajectory (§3.3.1 steps 1-6) as a value object: owns its
/// RNG, deadline and counters; borrows the neighbor generator, evaluator
/// and symmetry checker. run() executes the trajectory to completion and
/// may be called once per chain. Distinct chains share NO mutable state —
/// running K of them on K threads is safe iff their generators/evaluators
/// are distinct (anneal_chains' contract).
class search_chain {
public:
    search_chain(neighbor_generator& neighbors, const plan_evaluator& evaluate,
                 const symmetry_checker* symmetry, std::uint32_t instances,
                 const annealing_options& options);

    [[nodiscard]] annealing_result run();

private:
    [[nodiscard]] bool expired() const noexcept;
    /// Budget fraction left in [0, 1]: Eq. 6 under wall_clock, the
    /// iteration counter under iterations.
    [[nodiscard]] double remaining_fraction() const noexcept;

    neighbor_generator& neighbors_;
    const plan_evaluator& evaluate_;
    const symmetry_checker* symmetry_;
    std::uint32_t instances_;
    annealing_options options_;
    rng random_;
    deadline budget_;
    annealing_result result_;
};

/// Runs the §3.3.1 search as one chain. `instances` is the number of hosts
/// a plan needs (application.total_instances()). `symmetry` may be nullptr
/// (the check is then disabled regardless of options.use_symmetry).
[[nodiscard]] annealing_result anneal(neighbor_generator& neighbors,
                                      const plan_evaluator& evaluate,
                                      const symmetry_checker* symmetry,
                                      std::uint32_t instances,
                                      const annealing_options& options);

/// One chain's inputs for anneal_chains. Generators and evaluators must be
/// DISTINCT objects per chain (chains run concurrently; the evaluator
/// typically wraps a per-chain assessment backend) and `seed` should come
/// from a forked substream (substream_seed) so chains are decorrelated.
struct chain_spec {
    neighbor_generator* neighbors = nullptr;
    const plan_evaluator* evaluate = nullptr;
    std::uint64_t seed = 0;
};

struct multi_chain_result {
    std::uint32_t winning_chain = 0;
    /// Per-chain results, indexed by chain. chains[winning_chain] holds the
    /// best plan (highest best score; ties go to the lowest chain index —
    /// a deterministic reduction, independent of completion order).
    std::vector<annealing_result> chains;
};

/// Runs |specs| independent chains on up to `threads` worker threads
/// (0 = one per hardware thread, capped at the chain count) and reduces
/// deterministically. Chain c runs with base_options except seed =
/// specs[c].seed and chain = c. The per-chain results and the winner are
/// bit-identical for ANY thread count: chains never communicate, and the
/// reduction is by chain index, not completion order. The shared observer
/// (if any) is serialized by an internal mutex; event ORDER across chains
/// is scheduling-dependent, per-chain event subsequences are not.
[[nodiscard]] multi_chain_result anneal_chains(
    const std::vector<chain_spec>& specs, const symmetry_checker* symmetry,
    std::uint32_t instances, const annealing_options& base_options,
    std::size_t threads = 0);

/// Eq. 5 (or the classic |difference| in absolute mode), exposed for tests:
/// delta for a neighbor with score `s_neighbor` against `s_current`, both
/// in [0, 1]. Only meaningful when s_neighbor < s_current.
[[nodiscard]] double acceptance_delta(double s_current, double s_neighbor,
                                      delta_mode mode) noexcept;

}  // namespace recloud
