// Network-transformation equivalence check (paper §3.3.1, Step 3).
//
// Data centers are designed with heavy network symmetry; two deployment
// plans that map onto structurally-equivalent positions (with matching
// failure-probability classes and shared-dependency patterns) have the same
// reliability, so assessing both wastes time. The paper applies network
// transformations [Plotkin et al., POPL'16] to simplify the two plans'
// networks and compare them.
//
// This implementation canonicalizes the *deployment-relevant subnetwork*
// by applying the two classic reductions and hashing the result:
//   * SERIES reduction per instance: the host, its rack switch, and both of
//     their fault-tree dependency subtrees (each collapsed to a single
//     equivalent probability via fault_tree_forest::failure_probability)
//     form a series chain, reduced to one component with failure
//     probability 1 - prod(1 - p_i), quantized at the paper's 4-decimal
//     rounding granularity;
//   * PARALLEL reduction of the rack's upstream switch layer: redundant
//     aggregation paths collapse to prod(p_i), which quantizes to zero in
//     any redundantly-built fabric — making structurally equivalent pods
//     compare equal, exactly the symmetry the paper exploits;
//   * per instance pair: co-location relations — same rack, overlapping
//     2-hop switch neighborhood (same pod in a fat-tree) — plus the
//     multiset of probability classes of the fault-tree dependencies the
//     two chains share (a shared supply correlates the pair identically
//     whether it feeds a host group or a rack switch).
// Anything above the 2-hop horizon (core layer, border switches) is shared
// by every plan and cancels out of the comparison.
//
// Probability quantization follows §3.3.1: "if components of the same type
// fail with very different probabilities, they are logically treated as of
// different types" — but thanks to the series reduction, chains whose
// *combined* failure probability agrees to 4 decimals are equivalent even
// if the individual summands permute.
//
// The signature is a hash, so equivalence checking is approximate in the
// strict sense; a collision between *inequivalent* plans requires a 64-bit
// hash collision and merely skips one candidate, never corrupts a result.
#pragma once

#include <cstdint>

#include "app/deployment.hpp"
#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "topology/graph.hpp"
#include "topology/links.hpp"

namespace recloud {

class symmetry_checker {
public:
    /// `forest` may be nullptr (no dependency information); `links` may be
    /// nullptr (links infallible). When links are modeled, the host's
    /// access link joins its series chain.
    symmetry_checker(const built_topology& topo, const component_registry& registry,
                     const fault_tree_forest* forest,
                     const link_attachment* links = nullptr);

    /// Canonical signature of the plan's deployment-relevant subnetwork.
    [[nodiscard]] std::uint64_t signature(const deployment_plan& plan) const;

    /// Whether two plans are equivalent w.r.t. network symmetry and
    /// failure-probability classes.
    [[nodiscard]] bool equivalent(const deployment_plan& a,
                                  const deployment_plan& b) const {
        return signature(a) == signature(b);
    }

private:
    [[nodiscard]] std::uint64_t host_feature(node_id host) const;
    /// Deduplicated union of the host's and its rack's fault-tree
    /// dependencies — the shared-failure surface of the instance's chain.
    [[nodiscard]] std::vector<component_id> chain_dependencies(node_id host) const;
    /// Class of a dependency: its probability class combined with its
    /// *context* — the multiset of (kind, probability class) of everything
    /// in the fabric that depends on it. A supply feeding a border leaf is
    /// NOT interchangeable with one feeding only spines: its failure
    /// correlates an instance's chain with the external path differently.
    [[nodiscard]] std::uint64_t dependency_class(component_id dep) const;

    const built_topology* topo_;
    const component_registry* registry_;
    const fault_tree_forest* forest_;
    const link_attachment* links_;
    std::vector<std::uint64_t> dependency_context_;  ///< per component id
};

}  // namespace recloud
