#include "search/workload.hpp"

#include "util/stats.hpp"

namespace recloud {

workload_map::workload_map(const built_topology& topo, rng& random,
                           const workload_model_options& options)
    : topo_(&topo), options_(options), load_(topo.graph.node_count(), 0.0) {
    refresh(random);
}

void workload_map::refresh(rng& random) {
    for (const node_id host : topo_->hosts) {
        load_[host] = clamp(random.normal(options_.mean, options_.stddev), 0.0, 1.0);
    }
}

double workload_map::average(std::span<const node_id> hosts) const {
    if (hosts.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const node_id host : hosts) {
        sum += load_.at(host);
    }
    return sum / static_cast<double>(hosts.size());
}

}  // namespace recloud
