#include "search/annealing.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stopwatch.hpp"

namespace recloud {
namespace {

/// Floor for (1 - score) so Eq. 5 stays finite when a plan scores 1.0.
constexpr double unreliability_floor = 1e-12;

/// Floor for the annealing temperature: below this the chance of accepting
/// a worse plan is effectively zero anyway.
constexpr double temperature_floor = 1e-6;

}  // namespace

double acceptance_delta(double s_current, double s_neighbor,
                        delta_mode mode) noexcept {
    if (mode == delta_mode::absolute) {
        return std::fabs(s_current - s_neighbor);
    }
    const double current_gap = std::max(1.0 - s_current, unreliability_floor);
    const double neighbor_gap = std::max(1.0 - s_neighbor, unreliability_floor);
    return std::fabs(std::log10(neighbor_gap / current_gap));
}

annealing_result anneal(neighbor_generator& neighbors,
                        const plan_evaluator& evaluate,
                        const symmetry_checker* symmetry,
                        std::uint32_t instances,
                        const annealing_options& options) {
    rng random{options.seed};
    deadline budget{options.max_time};
    annealing_result result;

    const bool symmetry_on = options.use_symmetry && symmetry != nullptr;

    const auto note_improvement = [&](const plan_evaluation& eval) {
        if (!options.record_trace) {
            return;
        }
        result.trace.push_back(annealing_trace_point{
            budget.elapsed_seconds(), eval.score, eval.stats.reliability,
            result.plans_evaluated});
    };

    // Steps 1-2: random initial plan (regenerated while the resource filter
    // rejects it), assess it.
    deployment_plan current = neighbors.initial_plan(instances);
    ++result.plans_generated;
    if (options.filter) {
        std::size_t attempts = 0;
        while (!options.filter(current)) {
            ++result.filtered_plans;
            if (++attempts > options.max_consecutive_skips) {
                throw std::runtime_error{
                    "anneal: could not generate a feasible initial plan"};
            }
            current = neighbors.initial_plan(instances);
            ++result.plans_generated;
        }
    }
    plan_evaluation current_eval = evaluate(current);
    ++result.plans_evaluated;

    result.best_plan = current;
    result.best_evaluation = current_eval;
    note_improvement(current_eval);

    std::uint64_t current_signature =
        symmetry_on ? symmetry->signature(current) : 0;

    std::size_t consecutive_skips = 0;
    while (!budget.expired() &&
           result.plans_generated < options.max_iterations) {
        // Step 6's success check runs against the *current* plan (§3.3.1).
        if (current_eval.stats.reliability >= options.desired_reliability) {
            result.fulfilled = true;
            break;
        }

        // Step 3: neighbor generation + resource-constraint discard +
        // network-transformation equivalence.
        deployment_plan neighbor = neighbors.neighbor_of(current);
        ++result.plans_generated;
        if (options.filter && !options.filter(neighbor)) {
            ++result.filtered_plans;
            continue;
        }
        if (symmetry_on && consecutive_skips < options.max_consecutive_skips &&
            symmetry->signature(neighbor) == current_signature) {
            ++result.symmetric_skips;
            ++consecutive_skips;
            continue;
        }
        consecutive_skips = 0;

        // Step 4: assess the neighbor.
        const plan_evaluation neighbor_eval = evaluate(neighbor);
        ++result.plans_evaluated;

        // Step 5: accept or reject.
        bool accept = neighbor_eval.score >= current_eval.score;
        if (!accept) {
            const double t = std::max(budget.remaining_fraction(),  // Eq. 6
                                      temperature_floor);
            const double delta = acceptance_delta(current_eval.score,
                                                  neighbor_eval.score,
                                                  options.delta);  // Eq. 5
            const double probability = std::exp(-delta / t);       // Eq. 4
            accept = random.uniform() < probability;
            if (accept) {
                ++result.accepted_worse;
            }
        }
        if (accept) {
            current = std::move(neighbor);
            current_eval = neighbor_eval;
            if (symmetry_on) {
                current_signature = symmetry->signature(current);
            }
            if (current_eval.score > result.best_evaluation.score) {
                result.best_plan = current;
                result.best_evaluation = current_eval;
                note_improvement(current_eval);
            }
        }
    }

    if (!result.fulfilled &&
        result.best_evaluation.stats.reliability >= options.desired_reliability) {
        // The best plan seen can satisfy R_desired even if the random walk
        // moved off it before the loop ended.
        result.fulfilled = true;
    }
    result.elapsed_seconds = budget.elapsed_seconds();
    return result;
}

}  // namespace recloud
