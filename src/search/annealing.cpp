#include "search/annealing.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace recloud {
namespace {

/// Floor for (1 - score) so Eq. 5 stays finite when a plan scores 1.0.
constexpr double unreliability_floor = 1e-12;

/// Floor for the annealing temperature: below this the chance of accepting
/// a worse plan is effectively zero anyway.
constexpr double temperature_floor = 1e-6;

}  // namespace

double acceptance_delta(double s_current, double s_neighbor,
                        delta_mode mode) noexcept {
    if (mode == delta_mode::absolute) {
        return std::fabs(s_current - s_neighbor);
    }
    const double current_gap = std::max(1.0 - s_current, unreliability_floor);
    const double neighbor_gap = std::max(1.0 - s_neighbor, unreliability_floor);
    return std::fabs(std::log10(neighbor_gap / current_gap));
}

annealing_result anneal(neighbor_generator& neighbors,
                        const plan_evaluator& evaluate,
                        const symmetry_checker* symmetry,
                        std::uint32_t instances,
                        const annealing_options& options) {
    RECLOUD_SPAN("search.anneal");
    rng random{options.seed};
    deadline budget{options.max_time};
    annealing_result result;

    const bool symmetry_on = options.use_symmetry && symmetry != nullptr;

    // Telemetry-only hook: reads the clock and the already-made decision,
    // never the RNG — the search trajectory is identical with or without it.
    const auto notify = [&](obs::search_event_kind kind,
                            const plan_evaluation* eval) {
        if (!options.observer) {
            return;
        }
        obs::search_iteration_event event;
        event.kind = kind;
        event.iteration = result.plans_generated;
        event.elapsed_seconds = budget.elapsed_seconds();
        event.temperature =
            std::max(budget.remaining_fraction(), temperature_floor);
        if (eval != nullptr) {
            event.candidate_score = eval->score;
            event.candidate_reliability = eval->stats.reliability;
            event.candidate_ciw = eval->stats.ciw95;
            event.candidate_rounds = eval->stats.rounds;
        }
        event.best_score = result.best_evaluation.score;
        event.plans_evaluated = result.plans_evaluated;
        options.observer(event);
    };

    const auto assess_candidate = [&](const deployment_plan& plan) {
        RECLOUD_SPAN("search.evaluate");
        plan_evaluation eval = evaluate(plan);
        ++result.plans_evaluated;
        RECLOUD_COUNTER_INC("search.plans_evaluated");
        return eval;
    };

    const auto note_improvement = [&](const plan_evaluation& eval) {
        if (!options.record_trace) {
            return;
        }
        result.trace.push_back(annealing_trace_point{
            budget.elapsed_seconds(), eval.score, eval.stats.reliability,
            result.plans_evaluated});
    };

    // Steps 1-2: random initial plan (regenerated while the resource filter
    // rejects it), assess it.
    deployment_plan current = neighbors.initial_plan(instances);
    ++result.plans_generated;
    RECLOUD_COUNTER_INC("search.plans_generated");
    if (options.filter) {
        std::size_t attempts = 0;
        while (!options.filter(current)) {
            ++result.filtered_plans;
            notify(obs::search_event_kind::filtered, nullptr);
            if (++attempts > options.max_consecutive_skips) {
                throw std::runtime_error{
                    "anneal: could not generate a feasible initial plan"};
            }
            current = neighbors.initial_plan(instances);
            ++result.plans_generated;
            RECLOUD_COUNTER_INC("search.plans_generated");
        }
    }
    plan_evaluation current_eval = assess_candidate(current);

    result.best_plan = current;
    result.best_evaluation = current_eval;
    note_improvement(current_eval);
    notify(obs::search_event_kind::initial, &current_eval);

    std::uint64_t current_signature =
        symmetry_on ? symmetry->signature(current) : 0;

    std::size_t consecutive_skips = 0;
    while (!budget.expired() &&
           result.plans_generated < options.max_iterations) {
        // Step 6's success check runs against the *current* plan (§3.3.1).
        if (current_eval.stats.reliability >= options.desired_reliability) {
            result.fulfilled = true;
            break;
        }

        // Step 3: neighbor generation + resource-constraint discard +
        // network-transformation equivalence.
        deployment_plan neighbor = neighbors.neighbor_of(current);
        ++result.plans_generated;
        RECLOUD_COUNTER_INC("search.plans_generated");
        if (options.filter && !options.filter(neighbor)) {
            ++result.filtered_plans;
            RECLOUD_COUNTER_INC("search.filtered_plans");
            notify(obs::search_event_kind::filtered, nullptr);
            continue;
        }
        if (symmetry_on && consecutive_skips < options.max_consecutive_skips &&
            symmetry->signature(neighbor) == current_signature) {
            ++result.symmetric_skips;
            ++consecutive_skips;
            RECLOUD_COUNTER_INC("search.symmetric_skips");
            notify(obs::search_event_kind::symmetric_skip, nullptr);
            continue;
        }
        consecutive_skips = 0;

        // Step 4: assess the neighbor.
        const plan_evaluation neighbor_eval = assess_candidate(neighbor);

        // Step 5: accept or reject.
        const bool improved = neighbor_eval.score >= current_eval.score;
        bool accept = improved;
        if (!accept) {
            const double t = std::max(budget.remaining_fraction(),  // Eq. 6
                                      temperature_floor);
            const double delta = acceptance_delta(current_eval.score,
                                                  neighbor_eval.score,
                                                  options.delta);  // Eq. 5
            const double probability = std::exp(-delta / t);       // Eq. 4
            accept = random.uniform() < probability;
            if (accept) {
                ++result.accepted_worse;
                RECLOUD_COUNTER_INC("search.accepted_worse");
            }
        }
        if (accept) {
            current = std::move(neighbor);
            current_eval = neighbor_eval;
            if (symmetry_on) {
                current_signature = symmetry->signature(current);
            }
            if (current_eval.score > result.best_evaluation.score) {
                result.best_plan = current;
                result.best_evaluation = current_eval;
                note_improvement(current_eval);
            }
        }
        notify(accept ? (improved ? obs::search_event_kind::accepted
                                  : obs::search_event_kind::accepted_worse)
                      : obs::search_event_kind::rejected,
               &neighbor_eval);
    }

    if (!result.fulfilled &&
        result.best_evaluation.stats.reliability >= options.desired_reliability) {
        // The best plan seen can satisfy R_desired even if the random walk
        // moved off it before the loop ended.
        result.fulfilled = true;
    }
    result.elapsed_seconds = budget.elapsed_seconds();
    return result;
}

}  // namespace recloud
