#include "search/annealing.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {
namespace {

/// Floor for (1 - score) so Eq. 5 stays finite when a plan scores 1.0.
constexpr double unreliability_floor = 1e-12;

/// Floor for the annealing temperature: below this the chance of accepting
/// a worse plan is effectively zero anyway.
constexpr double temperature_floor = 1e-6;

}  // namespace

const char* to_string(search_outcome outcome) noexcept {
    switch (outcome) {
        case search_outcome::fulfilled: return "fulfilled";
        case search_outcome::exhausted: return "exhausted";
        case search_outcome::deadline_exceeded: return "deadline_exceeded";
    }
    return "unknown";
}

double acceptance_delta(double s_current, double s_neighbor,
                        delta_mode mode) noexcept {
    if (mode == delta_mode::absolute) {
        return std::fabs(s_current - s_neighbor);
    }
    const double current_gap = std::max(1.0 - s_current, unreliability_floor);
    const double neighbor_gap = std::max(1.0 - s_neighbor, unreliability_floor);
    return std::fabs(std::log10(neighbor_gap / current_gap));
}

search_chain::search_chain(neighbor_generator& neighbors,
                           const plan_evaluator& evaluate,
                           const symmetry_checker* symmetry,
                           std::uint32_t instances,
                           const annealing_options& options)
    : neighbors_(neighbors),
      evaluate_(evaluate),
      symmetry_(symmetry),
      instances_(instances),
      options_(options),
      random_(options.seed),
      budget_(options.max_time) {
    if (options_.schedule == schedule_mode::iterations &&
        options_.max_iterations == static_cast<std::size_t>(-1)) {
        throw std::invalid_argument{
            "search_chain: the iteration-driven schedule needs a finite "
            "max_iterations"};
    }
}

bool search_chain::expired() const noexcept {
    if (options_.schedule == schedule_mode::iterations) {
        // The loop's max_iterations guard is the whole budget; the wall
        // clock deliberately never enters the trajectory.
        return false;
    }
    return budget_.expired();
}

double search_chain::remaining_fraction() const noexcept {
    if (options_.schedule == schedule_mode::iterations) {
        const double total = static_cast<double>(options_.max_iterations);
        const double used = static_cast<double>(result_.plans_generated);
        const double frac = 1.0 - used / total;
        return frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
    }
    return budget_.remaining_fraction();  // Eq. 6
}

annealing_result search_chain::run() {
    RECLOUD_SPAN("search.anneal");

    const bool symmetry_on = options_.use_symmetry && symmetry_ != nullptr;

    // Telemetry-only hook: reads the clock and the already-made decision,
    // never the RNG — the search trajectory is identical with or without it.
    const auto notify = [&](obs::search_event_kind kind,
                            const plan_evaluation* eval) {
        if (!options_.observer) {
            return;
        }
        obs::search_iteration_event event;
        event.kind = kind;
        event.chain = options_.chain;
        event.iteration = result_.plans_generated;
        event.elapsed_seconds = budget_.elapsed_budgeted_seconds();
        event.temperature = std::max(remaining_fraction(), temperature_floor);
        if (eval != nullptr) {
            event.candidate_score = eval->score;
            event.candidate_reliability = eval->stats.reliability;
            event.candidate_ciw = eval->stats.ciw95;
            event.candidate_rounds = eval->stats.rounds;
        }
        event.best_score = result_.best_evaluation.score;
        event.plans_evaluated = result_.plans_evaluated;
        options_.observer(event);
    };

    // True once the run_budget cut this trajectory — between iterations or
    // mid-assessment (search_preempted). The partial assessment's counts
    // never left the backend, so every iteration that DID complete is
    // bit-identical to an uninterrupted run; best-so-far is the anytime
    // result.
    bool preempted = false;
    const auto assess_candidate = [&](const deployment_plan& plan,
                                      plan_evaluation& out) {
        RECLOUD_SPAN("search.evaluate");
        try {
            out = evaluate_(plan);
        } catch (const search_preempted&) {
            preempted = true;
            return false;
        }
        ++result_.plans_evaluated;
        RECLOUD_COUNTER_INC("search.plans_evaluated");
        return true;
    };

    const auto note_improvement = [&](const plan_evaluation& eval) {
        if (!options_.record_trace) {
            return;
        }
        result_.trace.push_back(annealing_trace_point{
            budget_.elapsed_budgeted_seconds(), eval.score,
            eval.stats.reliability, result_.plans_evaluated});
    };

    // Steps 1-2: random initial plan (regenerated while the resource filter
    // rejects it), assess it.
    deployment_plan current = neighbors_.initial_plan(instances_);
    ++result_.plans_generated;
    RECLOUD_COUNTER_INC("search.plans_generated");
    if (options_.filter) {
        std::size_t attempts = 0;
        while (!options_.filter(current)) {
            ++result_.filtered_plans;
            notify(obs::search_event_kind::filtered, nullptr);
            if (++attempts > options_.max_consecutive_skips) {
                throw std::runtime_error{
                    "anneal: could not generate a feasible initial plan"};
            }
            current = neighbors_.initial_plan(instances_);
            ++result_.plans_generated;
            RECLOUD_COUNTER_INC("search.plans_generated");
        }
    }
    plan_evaluation current_eval;
    if (!assess_candidate(current, current_eval)) {
        // Preempted before even one assessment finished: the initial plan
        // (unassessed, zero stats) is the only anytime result there is.
        result_.best_plan = std::move(current);
        result_.outcome = search_outcome::deadline_exceeded;
        result_.elapsed_seconds = budget_.elapsed_budgeted_seconds();
        return std::move(result_);
    }

    result_.best_plan = current;
    result_.best_evaluation = current_eval;
    note_improvement(current_eval);
    notify(obs::search_event_kind::initial, &current_eval);

    std::uint64_t current_signature =
        symmetry_on ? symmetry_->signature(current) : 0;

    std::size_t consecutive_skips = 0;
    while (!expired() && result_.plans_generated < options_.max_iterations) {
        // Step 6's success check runs against the *current* plan (§3.3.1).
        if (current_eval.stats.reliability >= options_.desired_reliability) {
            result_.fulfilled = true;
            break;
        }

        // Lifecycle checks between iterations: the deterministic cut reads
        // only the plan counter (a cut trajectory is a pure function of the
        // seed); the wall triggers read the shared clock but never the RNG,
        // so an un-fired budget cannot perturb the trajectory.
        if (options_.budget != nullptr &&
            (options_.budget->cut_at(result_.plans_generated) ||
             options_.budget->interrupted())) {
            preempted = true;
            break;
        }

        // Step 3: neighbor generation + resource-constraint discard +
        // network-transformation equivalence.
        deployment_plan neighbor = neighbors_.neighbor_of(current);
        ++result_.plans_generated;
        RECLOUD_COUNTER_INC("search.plans_generated");
        if (options_.filter && !options_.filter(neighbor)) {
            ++result_.filtered_plans;
            RECLOUD_COUNTER_INC("search.filtered_plans");
            notify(obs::search_event_kind::filtered, nullptr);
            continue;
        }
        if (symmetry_on && consecutive_skips < options_.max_consecutive_skips &&
            symmetry_->signature(neighbor) == current_signature) {
            ++result_.symmetric_skips;
            ++consecutive_skips;
            RECLOUD_COUNTER_INC("search.symmetric_skips");
            notify(obs::search_event_kind::symmetric_skip, nullptr);
            continue;
        }
        consecutive_skips = 0;

        // Step 4: assess the neighbor.
        plan_evaluation neighbor_eval;
        if (!assess_candidate(neighbor, neighbor_eval)) {
            break;  // preempted mid-assessment; candidate discarded
        }

        // Step 5: accept or reject.
        const bool improved = neighbor_eval.score >= current_eval.score;
        bool accept = improved;
        if (!accept) {
            const double t = std::max(remaining_fraction(),  // Eq. 6
                                      temperature_floor);
            const double delta = acceptance_delta(current_eval.score,
                                                  neighbor_eval.score,
                                                  options_.delta);  // Eq. 5
            const double probability = std::exp(-delta / t);        // Eq. 4
            accept = random_.uniform() < probability;
            if (accept) {
                ++result_.accepted_worse;
                RECLOUD_COUNTER_INC("search.accepted_worse");
            }
        }
        if (accept) {
            current = std::move(neighbor);
            current_eval = neighbor_eval;
            if (symmetry_on) {
                current_signature = symmetry_->signature(current);
            }
            if (current_eval.score > result_.best_evaluation.score) {
                result_.best_plan = current;
                result_.best_evaluation = current_eval;
                note_improvement(current_eval);
            }
        }
        notify(accept ? (improved ? obs::search_event_kind::accepted
                                  : obs::search_event_kind::accepted_worse)
                      : obs::search_event_kind::rejected,
               &neighbor_eval);
    }

    if (!result_.fulfilled &&
        result_.best_evaluation.stats.reliability >=
            options_.desired_reliability) {
        // The best plan seen can satisfy R_desired even if the random walk
        // moved off it before the loop ended.
        result_.fulfilled = true;
    }
    result_.outcome = result_.fulfilled
                          ? search_outcome::fulfilled
                          : (preempted ? search_outcome::deadline_exceeded
                                       : search_outcome::exhausted);
    result_.elapsed_seconds = budget_.elapsed_budgeted_seconds();
    return std::move(result_);
}

annealing_result anneal(neighbor_generator& neighbors,
                        const plan_evaluator& evaluate,
                        const symmetry_checker* symmetry,
                        std::uint32_t instances,
                        const annealing_options& options) {
    return search_chain{neighbors, evaluate, symmetry, instances, options}.run();
}

multi_chain_result anneal_chains(const std::vector<chain_spec>& specs,
                                 const symmetry_checker* symmetry,
                                 std::uint32_t instances,
                                 const annealing_options& base_options,
                                 std::size_t threads) {
    RECLOUD_SPAN("search.anneal_chains");
    if (specs.empty()) {
        throw std::invalid_argument{"anneal_chains: at least one chain"};
    }
    for (const chain_spec& spec : specs) {
        if (spec.neighbors == nullptr || spec.evaluate == nullptr) {
            throw std::invalid_argument{
                "anneal_chains: every chain needs a generator and evaluator"};
        }
    }

    const std::size_t chain_count = specs.size();
    std::size_t workers = threads != 0
                              ? threads
                              : std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency());
    workers = std::min(workers, chain_count);

    // The shared observer may now fire from several threads: serialize
    // delivery (per-chain event subsequences stay ordered; interleaving
    // across chains is scheduling-dependent and carries no information).
    std::mutex observer_mutex;
    obs::search_observer serialized;
    if (base_options.observer && workers > 1) {
        serialized = [&observer_mutex,
                      &observer = base_options.observer](
                         const obs::search_iteration_event& event) {
            const std::lock_guard<std::mutex> lock{observer_mutex};
            observer(event);
        };
    }

    multi_chain_result result;
    result.chains.resize(chain_count);
    std::vector<std::exception_ptr> errors(chain_count);

    const auto run_chain = [&](std::size_t c) {
        annealing_options options = base_options;
        options.seed = specs[c].seed;
        options.chain = static_cast<std::uint32_t>(c);
        if (serialized) {
            options.observer = serialized;
        }
        try {
            result.chains[c] = search_chain{*specs[c].neighbors,
                                            *specs[c].evaluate, symmetry,
                                            instances, options}
                                   .run();
        } catch (...) {
            errors[c] = std::current_exception();
        }
    };

    if (workers <= 1) {
        for (std::size_t c = 0; c < chain_count; ++c) {
            run_chain(c);
        }
    } else {
        // Work-stealing over chain indices: which thread runs which chain is
        // scheduling-dependent, the per-chain results are not (chains share
        // no mutable state).
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t c = next.fetch_add(1);
                     c < chain_count; c = next.fetch_add(1)) {
                    run_chain(c);
                }
            });
        }
        for (std::thread& worker : pool) {
            worker.join();
        }
    }

    for (std::size_t c = 0; c < chain_count; ++c) {
        if (errors[c] != nullptr) {
            std::rethrow_exception(errors[c]);
        }
    }

    // Deterministic reduction: argmax best score; ties go to the lowest
    // chain index regardless of completion order.
    std::size_t best = 0;
    for (std::size_t c = 1; c < chain_count; ++c) {
        if (result.chains[c].best_evaluation.score >
            result.chains[best].best_evaluation.score) {
            best = c;
        }
    }
    result.winning_chain = static_cast<std::uint32_t>(best);
    return result;
}

}  // namespace recloud
