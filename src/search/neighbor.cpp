#include "search/neighbor.hpp"

#include <algorithm>
#include <stdexcept>

namespace recloud {
namespace {

/// Attempts before the rack anti-affinity constraint is relaxed (it is a
/// best-effort heuristic: with more instances than racks it cannot hold).
constexpr int max_affinity_attempts = 64;

}  // namespace

neighbor_generator::neighbor_generator(const built_topology& topo,
                                       anti_affinity affinity, std::uint64_t seed)
    : topo_(&topo), affinity_(affinity), random_(seed) {
    if (topo.hosts.empty()) {
        throw std::invalid_argument{"neighbor_generator: topology has no hosts"};
    }
}

node_id neighbor_generator::random_host() {
    return topo_->hosts[random_.uniform_below(topo_->hosts.size())];
}

bool neighbor_generator::respects_affinity(const std::vector<node_id>& hosts,
                                           node_id candidate,
                                           std::size_t skip_slot) const {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (i == skip_slot) {
            continue;
        }
        if (hosts[i] == candidate) {
            return false;  // distinct hosts is a hard constraint
        }
        if (affinity_ == anti_affinity::rack &&
            rack_of(topo_->graph, hosts[i]) == rack_of(topo_->graph, candidate)) {
            return false;
        }
    }
    return true;
}

deployment_plan neighbor_generator::initial_plan(std::uint32_t instances) {
    if (instances == 0 || instances > topo_->hosts.size()) {
        throw std::invalid_argument{
            "neighbor_generator: instance count out of [1, #hosts]"};
    }
    has_last_swap_ = false;
    deployment_plan plan;
    plan.hosts.reserve(instances);
    while (plan.hosts.size() < instances) {
        node_id candidate = random_host();
        for (int attempt = 0; attempt < max_affinity_attempts; ++attempt) {
            if (respects_affinity(plan.hosts, candidate, plan.hosts.size())) {
                break;
            }
            candidate = random_host();
        }
        // After max attempts only the hard distinctness constraint remains.
        if (std::find(plan.hosts.begin(), plan.hosts.end(), candidate) !=
            plan.hosts.end()) {
            continue;
        }
        plan.hosts.push_back(candidate);
    }
    return plan;
}

deployment_plan neighbor_generator::neighbor_of(const deployment_plan& current) {
    if (current.hosts.empty()) {
        throw std::invalid_argument{"neighbor_generator: empty current plan"};
    }
    if (current.hosts.size() >= topo_->hosts.size()) {
        throw std::invalid_argument{
            "neighbor_generator: plan already uses every host"};
    }
    deployment_plan neighbor = current;
    const std::size_t slot = random_.uniform_below(neighbor.hosts.size());
    node_id candidate = random_host();
    int attempt = 0;
    while (candidate == neighbor.hosts[slot] ||
           !respects_affinity(neighbor.hosts, candidate, slot)) {
        candidate = random_host();
        if (++attempt >= max_affinity_attempts) {
            // Relax to the hard constraint only.
            while (std::find(neighbor.hosts.begin(), neighbor.hosts.end(),
                             candidate) != neighbor.hosts.end()) {
                candidate = random_host();
            }
            break;
        }
    }
    last_swap_ = {slot, neighbor.hosts[slot], candidate};
    has_last_swap_ = true;
    neighbor.hosts[slot] = candidate;
    return neighbor;
}

}  // namespace recloud
