#include "search/symmetry.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace recloud {
namespace {

constexpr std::uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
    h ^= v + hash_seed + (h << 6) + (h >> 2);
    // Extra mixing so order-sensitive combinations diffuse well.
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

/// Order-insensitive combination (for multisets): sums of mixed values.
std::uint64_t hash_multiset_add(std::uint64_t acc, std::uint64_t v) noexcept {
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 29;
    v *= 0xff51afd7ed558ccdULL;
    return acc + v;
}

/// Quantized probability class. The paper rounds failure probabilities to 4
/// decimals (§4.1), and treats same-type components with "very different"
/// probabilities as different types (§3.3.1); quantizing the *reduced*
/// chain probability at the same 1e-4 granularity implements both.
std::uint64_t probability_class(double p) noexcept {
    return static_cast<std::uint64_t>(std::llround(p * 10000.0));
}

}  // namespace

symmetry_checker::symmetry_checker(const built_topology& topo,
                                   const component_registry& registry,
                                   const fault_tree_forest* forest,
                                   const link_attachment* links)
    : topo_(&topo), registry_(&registry), forest_(forest), links_(links) {
    if (forest_ == nullptr) {
        return;
    }
    // Invert the dependency relation once: for every fabric component with
    // a fault tree, fold its (kind, probability-class) into the context of
    // each dependency it relies on.
    dependency_context_.assign(registry.size(), 0);
    for (component_id owner = 0; owner < registry.size(); ++owner) {
        const tree_node_id root = forest_->root_of(owner);
        if (root == invalid_tree_node) {
            continue;
        }
        const std::uint64_t owner_class =
            hash_combine(static_cast<std::uint64_t>(registry.kind(owner)) + 1,
                         probability_class(registry.probability(owner)));
        for (const component_id dep : forest_->dependencies_of(owner)) {
            if (dep < dependency_context_.size()) {
                dependency_context_[dep] =
                    hash_multiset_add(dependency_context_[dep], owner_class);
            }
        }
    }
}

std::uint64_t symmetry_checker::dependency_class(component_id dep) const {
    const std::uint64_t context =
        dep < dependency_context_.size() ? dependency_context_[dep] : 0;
    return hash_combine(probability_class(registry_->probability(dep)), context);
}

std::vector<component_id> symmetry_checker::chain_dependencies(
    node_id host) const {
    std::vector<component_id> deps;
    if (forest_ == nullptr) {
        return deps;
    }
    const node_id rack = rack_of(topo_->graph, host);
    deps = forest_->dependencies_of(host);
    const auto rack_deps = forest_->dependencies_of(rack);
    deps.insert(deps.end(), rack_deps.begin(), rack_deps.end());
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    return deps;
}

std::uint64_t symmetry_checker::host_feature(node_id host) const {
    // Network transformation, series reduction: the instance's dedicated
    // chain — the host, its rack switch, and the DEDUPLICATED union of both
    // fault-tree dependency sets — is in series for reachability, so it
    // reduces to a single component with failure probability
    // 1 - prod(1 - p_i). Deduplication matters: a supply feeding both the
    // host group and its rack appears once, and two such positions are NOT
    // equivalent to positions with two distinct supplies of the same class.
    // (Dependencies are treated as OR leaves here; AND/k-of-n redundancy
    // subtrees are approximated the same way for every position, so
    // like-for-like comparisons remain consistent.)
    const node_id rack = rack_of(topo_->graph, host);
    double survive = (1.0 - registry_->probability(host)) *
                     (1.0 - registry_->probability(rack));
    if (links_ != nullptr) {
        // The host's access link is part of the series chain.
        const component_id uplink =
            links_->component_of_edge[topo_->graph.edge_id(host, rack)];
        if (uplink != invalid_node) {
            survive *= 1.0 - registry_->probability(uplink);
        }
    }
    std::uint64_t dep_classes = 0;
    for (const component_id dep : chain_dependencies(host)) {
        survive *= 1.0 - registry_->probability(dep);
        // Context-qualified classes: a chain leaning on a supply that also
        // feeds the border path is not equivalent to one leaning on a
        // spine-only supply, even at equal probability.
        dep_classes = hash_multiset_add(dep_classes, dependency_class(dep));
    }
    const double chain_failure = 1.0 - survive;
    std::uint64_t h = hash_combine(1, probability_class(chain_failure));
    h = hash_combine(h, dep_classes);

    // Parallel reduction of the rack's upstream layer: the aggregation
    // switches above the rack are parallel paths, so the layer collapses to
    // prod(p_i) — which quantizes to 0 in any redundantly-built fabric.
    // Only a pathologically degraded upstream survives the quantization and
    // differentiates positions.
    double upstream_failure = 1.0;
    bool has_upstream = false;
    for (const node_id next : topo_->graph.neighbors(rack)) {
        if (is_switch(topo_->graph.kind(next))) {
            upstream_failure *= registry_->probability(next);
            has_upstream = true;
        }
    }
    h = hash_combine(h,
                     probability_class(has_upstream ? upstream_failure : 0.0));
    return h;
}

std::uint64_t symmetry_checker::signature(const deployment_plan& plan) const {
    const std::size_t n = plan.hosts.size();

    std::vector<std::uint64_t> features;
    features.reserve(n);
    for (const node_id host : plan.hosts) {
        features.push_back(host_feature(host));
    }

    // Instance multiset (which positions are occupied, up to symmetry).
    std::uint64_t instance_part = 0;
    for (const std::uint64_t f : features) {
        instance_part = hash_multiset_add(instance_part, f);
    }

    // Pairwise co-location relations. Each pair contributes a record built
    // from the two features (order-normalized) and the relation bits.
    std::uint64_t pair_part = 0;
    std::vector<node_id> racks(n);
    for (std::size_t i = 0; i < n; ++i) {
        racks[i] = rack_of(topo_->graph, plan.hosts[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            std::uint64_t rel = 0;
            if (racks[i] == racks[j]) {
                rel |= 1;  // same rack
            } else {
                // Overlapping 2-hop switch neighborhood = same pod in a
                // fat-tree (their racks uplink to a common switch).
                for (const node_id up : topo_->graph.neighbors(racks[i])) {
                    if (!is_switch(topo_->graph.kind(up))) {
                        continue;
                    }
                    if (topo_->graph.has_edge(up, racks[j])) {
                        rel |= 2;
                        break;
                    }
                }
            }
            std::uint64_t shared_deps_hash = 0;
            if (forest_ != nullptr) {
                // The correlated-failure structure of the pair is the
                // multiset of probability classes of the dependencies the
                // two chains SHARE — regardless of where in the chain the
                // sharing occurs (host-group supply vs rack supply): any
                // shared component's failure kills both instances.
                const auto deps_i = chain_dependencies(plan.hosts[i]);
                const auto deps_j = chain_dependencies(plan.hosts[j]);
                std::vector<component_id> shared;
                std::set_intersection(deps_i.begin(), deps_i.end(),
                                      deps_j.begin(), deps_j.end(),
                                      std::back_inserter(shared));
                for (const component_id dep : shared) {
                    shared_deps_hash =
                        hash_multiset_add(shared_deps_hash, dependency_class(dep));
                }
            }
            const std::uint64_t lo = std::min(features[i], features[j]);
            const std::uint64_t hi = std::max(features[i], features[j]);
            pair_part = hash_multiset_add(
                pair_part, hash_combine(hash_combine(hash_combine(lo, hi), rel),
                                        shared_deps_hash));
        }
    }
    return hash_combine(instance_part, pair_part);
}

}  // namespace recloud
