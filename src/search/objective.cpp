// objective is header-only; compiled standalone once for include hygiene.
#include "search/objective.hpp"
