// Common-practice baselines (paper §4.2.2).
//
// Vanilla common practice: "deploy application instances onto the
// least-loaded hosts where each host is in a different rack" (learned from
// the paper authors' cloud operator contacts).
//
// Enhanced common practice: run the vanilla practice 5 times to obtain the
// top-5 non-repeating plans, then pick the plan whose instances draw power
// from the most diversified set of supplies.
#pragma once

#include <cstdint>
#include <vector>

#include "app/deployment.hpp"
#include "search/workload.hpp"
#include "topology/graph.hpp"
#include "topology/power.hpp"

namespace recloud {

/// Least-loaded distinct-rack selection. Hosts in `excluded` are skipped
/// (used to build non-repeating plans). If distinct racks run out, the rack
/// constraint is relaxed for the remaining slots (distinct hosts stay hard).
/// Throws if fewer than `instances` non-excluded hosts exist.
[[nodiscard]] deployment_plan common_practice_plan(
    const built_topology& topo, const workload_map& workloads,
    std::uint32_t instances, const std::vector<node_id>& excluded = {});

/// Number of distinct power supplies feeding the plan's hosts and their
/// rack switches — the enhanced baseline's diversity criterion.
[[nodiscard]] std::size_t power_diversity(const built_topology& topo,
                                          const power_assignment& power,
                                          const deployment_plan& plan);

struct enhanced_common_practice_options {
    std::uint32_t candidate_plans = 5;  ///< the paper's "top-5"
};

/// The enhanced baseline: top-N non-repeating vanilla plans, most
/// power-diversified one wins (ties: lower average workload).
[[nodiscard]] deployment_plan enhanced_common_practice_plan(
    const built_topology& topo, const workload_map& workloads,
    const power_assignment& power, std::uint32_t instances,
    const enhanced_common_practice_options& options = {});

}  // namespace recloud
