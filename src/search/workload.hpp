// Host workload model (paper §4.2.2): data-center resource utilization is
// typically low, so each host's workload over [0,1] is drawn from
// N(0.2, 0.05). The common-practice baseline selects least-loaded hosts and
// the multi-objective search converts average workload into a utility score.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace recloud {

struct workload_model_options {
    double mean = 0.2;
    double stddev = 0.05;
};

/// Per-host workload map. Indexed by *position in the topology's host list*
/// would be error-prone; instead it is indexed densely by node id (non-host
/// ids carry 0).
class workload_map {
public:
    workload_map(const built_topology& topo, rng& random,
                 const workload_model_options& options = {});

    [[nodiscard]] double of(node_id host) const { return load_.at(host); }

    /// Average workload across the plan's hosts.
    [[nodiscard]] double average(std::span<const node_id> hosts) const;

    /// Re-draws every host's workload — models "varying conditions collected
    /// at (near) real-time" that reCloud adapts to (§3.3.3, §4.2.2).
    void refresh(rng& random);

private:
    const built_topology* topo_;
    workload_model_options options_;
    std::vector<double> load_;
};

}  // namespace recloud
