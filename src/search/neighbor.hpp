// Deployment-plan generation for the annealing search (paper §3.3.1,
// Steps 1 & 3): random initial plans with optional placement heuristics, and
// neighboring plans produced by replacing one host with a new random host.
#pragma once

#include <cstdint>
#include <vector>

#include "app/deployment.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace recloud {

/// Placement heuristic applied on top of "all hosts distinct" (§3.3.1
/// Step 1: "this selection can use any additional heuristics such as 'no
/// hosts from the same rack'").
enum class anti_affinity : std::uint8_t {
    none,  ///< distinct hosts only
    rack,  ///< best-effort: no two instances under the same ToR switch
};

/// The single-slot move a neighbor_of() call performed — the exact swap
/// delta of the candidate plan relative to its parent. Observability /
/// diagnostics only: the verdict cache derives its retention delta by
/// self-diffing the bound plan inside bind(), never from this hint, because
/// an accepted candidate may be several rejected candidates away from the
/// plan the cache last bound (the chain of swaps is not a single swap).
struct plan_swap {
    std::size_t slot = 0;       ///< index into deployment_plan::hosts
    node_id old_host = invalid_node;
    node_id new_host = invalid_node;
};

class neighbor_generator {
public:
    neighbor_generator(const built_topology& topo, anti_affinity affinity,
                       std::uint64_t seed);

    /// Step 1: a uniformly random plan of `instances` distinct hosts.
    /// Invalidates last_swap() — an initial plan is not a single-slot move.
    [[nodiscard]] deployment_plan initial_plan(std::uint32_t instances);

    /// Step 3: replaces one randomly chosen slot of `current` with a new,
    /// randomly chosen host not already used by the plan.
    [[nodiscard]] deployment_plan neighbor_of(const deployment_plan& current);

    /// The swap performed by the most recent neighbor_of(), or nullptr when
    /// no neighbor has been generated since construction / initial_plan().
    [[nodiscard]] const plan_swap* last_swap() const noexcept {
        return has_last_swap_ ? &last_swap_ : nullptr;
    }

private:
    [[nodiscard]] bool respects_affinity(const std::vector<node_id>& hosts,
                                         node_id candidate,
                                         std::size_t skip_slot) const;
    [[nodiscard]] node_id random_host();

    const built_topology* topo_;
    anti_affinity affinity_;
    rng random_;
    plan_swap last_swap_{};
    bool has_last_swap_ = false;
};

}  // namespace recloud
