#include "faults/fault_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace recloud {

fault_tree_forest::fault_tree_forest(std::size_t component_count)
    : roots_(component_count, invalid_tree_node) {}

tree_node_id fault_tree_forest::add_leaf(component_id dependency) {
    tree_node node;
    node.kind = gate_kind::leaf;
    node.leaf = dependency;
    nodes_.push_back(node);
    return static_cast<tree_node_id>(nodes_.size() - 1);
}

tree_node_id fault_tree_forest::add_gate(gate_kind kind, std::uint32_t k,
                                         std::vector<tree_node_id> children) {
    if (children.empty()) {
        throw std::invalid_argument{"fault_tree: gate needs at least one child"};
    }
    for (tree_node_id child : children) {
        if (child >= nodes_.size()) {
            throw std::out_of_range{"fault_tree: unknown child node"};
        }
    }
    tree_node node;
    node.kind = kind;
    node.k = k;
    node.children_begin = static_cast<std::uint32_t>(children_.size());
    node.children_count = static_cast<std::uint32_t>(children.size());
    children_.insert(children_.end(), children.begin(), children.end());
    nodes_.push_back(node);
    return static_cast<tree_node_id>(nodes_.size() - 1);
}

tree_node_id fault_tree_forest::add_or(std::vector<tree_node_id> children) {
    return add_gate(gate_kind::or_gate, 0, std::move(children));
}

tree_node_id fault_tree_forest::add_and(std::vector<tree_node_id> children) {
    return add_gate(gate_kind::and_gate, 0, std::move(children));
}

tree_node_id fault_tree_forest::add_k_of_n(std::uint32_t k,
                                           std::vector<tree_node_id> children) {
    if (k == 0 || k > children.size()) {
        throw std::invalid_argument{"fault_tree: k must be in [1, #children]"};
    }
    return add_gate(gate_kind::k_of_n_gate, k, std::move(children));
}

void fault_tree_forest::attach(component_id component, tree_node_id root) {
    if (component >= roots_.size()) {
        // Components registered after the forest was created (dependency
        // components) can still receive trees; grow on demand.
        roots_.resize(component + 1, invalid_tree_node);
    }
    if (root >= nodes_.size()) {
        throw std::out_of_range{"fault_tree: unknown tree node"};
    }
    tree_node_id& slot = roots_[component];
    if (slot == invalid_tree_node) {
        slot = root;
    } else {
        slot = add_or({slot, root});
    }
}

tree_node_id fault_tree_forest::root_of(component_id component) const {
    // Ids beyond the tracked range simply have no tree.
    return component < roots_.size() ? roots_[component] : invalid_tree_node;
}

std::vector<component_id> fault_tree_forest::dependencies_of(
    component_id component) const {
    std::vector<component_id> deps;
    const tree_node_id root = root_of(component);
    if (root == invalid_tree_node) {
        return deps;
    }
    std::vector<tree_node_id> stack{root};
    while (!stack.empty()) {
        const tree_node_id id = stack.back();
        stack.pop_back();
        const tree_node& n = nodes_[id];
        if (n.kind == gate_kind::leaf) {
            deps.push_back(n.leaf);
        } else {
            const auto children = children_of(id);
            stack.insert(stack.end(), children.begin(), children.end());
        }
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    return deps;
}

}  // namespace recloud
