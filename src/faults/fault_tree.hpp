// Fault trees over shared dependencies (paper §3.2.3, Figure 5).
//
// Each host/switch may have a fault tree describing the additional
// dependencies that can bring it down: the tree's leaves are dependency
// components (power supplies, cooling units, OS images, libraries,
// firmware, ...) and its internal nodes are logical gates. A component's
// *effective* failure in a round is: its own sampled state OR its fault
// tree evaluating to failed.
//
// Trees of different components are connected simply by referencing the
// same leaf component id — that is exactly how shared dependencies produce
// correlated failures.
//
// Gates: OR (any child failed), AND (all children failed — redundant
// supplies), and the generalization K_OF_N (at least k children failed).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "faults/component_registry.hpp"

namespace recloud {

enum class gate_kind : std::uint8_t { leaf, or_gate, and_gate, k_of_n_gate };

/// Index of a tree node inside the forest's node pool.
using tree_node_id = std::uint32_t;

inline constexpr tree_node_id invalid_tree_node = static_cast<tree_node_id>(-1);

class fault_tree_forest {
public:
    /// Creates a forest for `component_count` components, none of which has
    /// a dependency tree yet.
    explicit fault_tree_forest(std::size_t component_count);

    /// Adds a leaf referencing a dependency component.
    tree_node_id add_leaf(component_id dependency);

    /// Adds an OR / AND gate over the given children.
    tree_node_id add_or(std::vector<tree_node_id> children);
    tree_node_id add_and(std::vector<tree_node_id> children);

    /// Adds a gate that fails when at least `k` of the children failed.
    tree_node_id add_k_of_n(std::uint32_t k, std::vector<tree_node_id> children);

    /// Attaches `root` as the dependency tree of `component`. If the
    /// component already has a tree, the new root is OR-ed with the existing
    /// one (dependencies accumulate: power AND-redundancy lives inside the
    /// subtree, but independent dependency *sources* combine with OR).
    void attach(component_id component, tree_node_id root);

    /// Root of the component's tree, or invalid_tree_node if it has none.
    [[nodiscard]] tree_node_id root_of(component_id component) const;

    [[nodiscard]] bool has_tree(component_id component) const {
        return root_of(component) != invalid_tree_node;
    }

    [[nodiscard]] std::size_t component_count() const noexcept {
        return roots_.size();
    }
    [[nodiscard]] std::size_t tree_node_count() const noexcept {
        return nodes_.size();
    }

    /// All dependency component ids referenced by the component's tree
    /// (deduplicated, sorted). Used by symmetry signatures.
    [[nodiscard]] std::vector<component_id> dependencies_of(component_id component) const;

    /// Structural view of one tree node — the introspection the wire
    /// serializer needs to ship a forest to an out-of-process worker.
    /// Children always have smaller ids than their gate (gates are created
    /// after their children), so re-adding nodes in id order reproduces an
    /// identical forest.
    struct node_view {
        gate_kind kind = gate_kind::leaf;
        std::uint32_t k = 0;               ///< k_of_n threshold
        component_id leaf = invalid_node;  ///< leaves only
        std::span<const tree_node_id> children;  ///< gates only
    };
    [[nodiscard]] node_view node(tree_node_id id) const {
        const tree_node& n = nodes_.at(id);
        return {n.kind, n.k, n.leaf,
                n.kind == gate_kind::leaf ? std::span<const tree_node_id>{}
                                          : children_of(id)};
    }

    /// Evaluates the tree rooted at `node` against a per-component failure
    /// predicate. `leaf_failed(component_id) -> bool`.
    template <typename FailedFn>
    [[nodiscard]] bool evaluate(tree_node_id node, FailedFn&& leaf_failed) const {
        const tree_node& n = nodes_[node];
        switch (n.kind) {
            case gate_kind::leaf:
                return leaf_failed(n.leaf);
            case gate_kind::or_gate:
                for (tree_node_id child : children_of(node)) {
                    if (evaluate(child, leaf_failed)) {
                        return true;
                    }
                }
                return false;
            case gate_kind::and_gate:
                for (tree_node_id child : children_of(node)) {
                    if (!evaluate(child, leaf_failed)) {
                        return false;
                    }
                }
                return true;
            case gate_kind::k_of_n_gate: {
                std::uint32_t failed = 0;
                const auto children = children_of(node);
                std::uint32_t remaining = static_cast<std::uint32_t>(children.size());
                for (tree_node_id child : children) {
                    if (evaluate(child, leaf_failed)) {
                        if (++failed >= n.k) {
                            return true;
                        }
                    }
                    --remaining;
                    if (failed + remaining < n.k) {
                        return false;  // cannot reach k anymore
                    }
                }
                return false;
            }
        }
        return false;
    }

    /// Evaluates the *effective* failure of a component: `own_failed` OR its
    /// fault tree (if any) against `leaf_failed`.
    template <typename FailedFn>
    [[nodiscard]] bool effective_failed(component_id component, bool own_failed,
                                        FailedFn&& leaf_failed) const {
        if (own_failed) {
            return true;
        }
        const tree_node_id root = root_of(component);
        if (root == invalid_tree_node) {
            return false;
        }
        return evaluate(root, std::forward<FailedFn>(leaf_failed));
    }

    /// Reduces the tree rooted at `node` to a single equivalent failure
    /// probability, assuming independent leaves: OR gates combine as
    /// 1 - prod(1-p), AND gates as prod(p), k-of-n via the Poisson-binomial
    /// tail. `leaf_probability(component_id) -> double`. This is the
    /// "collapse a subnetwork into one equivalent component" step of the
    /// network-transformations equivalence check (§3.3.1).
    template <typename ProbFn>
    [[nodiscard]] double failure_probability(tree_node_id node,
                                             ProbFn&& leaf_probability) const {
        const tree_node& n = nodes_[node];
        switch (n.kind) {
            case gate_kind::leaf:
                return leaf_probability(n.leaf);
            case gate_kind::or_gate: {
                double survive = 1.0;
                for (tree_node_id child : children_of(node)) {
                    survive *= 1.0 - failure_probability(child, leaf_probability);
                }
                return 1.0 - survive;
            }
            case gate_kind::and_gate: {
                double fail = 1.0;
                for (tree_node_id child : children_of(node)) {
                    fail *= failure_probability(child, leaf_probability);
                }
                return fail;
            }
            case gate_kind::k_of_n_gate: {
                // Poisson-binomial: dp[j] = P(exactly j children failed).
                const auto children = children_of(node);
                std::vector<double> dp(children.size() + 1, 0.0);
                dp[0] = 1.0;
                std::size_t seen = 0;
                for (tree_node_id child : children) {
                    const double p = failure_probability(child, leaf_probability);
                    for (std::size_t j = ++seen; j > 0; --j) {
                        dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p;
                    }
                    dp[0] *= 1.0 - p;
                }
                double tail = 0.0;
                for (std::size_t j = n.k; j < dp.size(); ++j) {
                    tail += dp[j];
                }
                return tail;
            }
        }
        return 0.0;
    }

private:
    struct tree_node {
        gate_kind kind = gate_kind::leaf;
        std::uint32_t k = 0;             ///< threshold for k_of_n gates
        component_id leaf = invalid_node;  ///< for leaves
        std::uint32_t children_begin = 0;
        std::uint32_t children_count = 0;
    };

    [[nodiscard]] std::span<const tree_node_id> children_of(tree_node_id node) const {
        const tree_node& n = nodes_[node];
        return {children_.data() + n.children_begin, n.children_count};
    }

    tree_node_id add_gate(gate_kind kind, std::uint32_t k,
                          std::vector<tree_node_id> children);

    std::vector<tree_node> nodes_;
    std::vector<tree_node_id> children_;  ///< flattened children pool
    std::vector<tree_node_id> roots_;     ///< per component; invalid if none
};

}  // namespace recloud
