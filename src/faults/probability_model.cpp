#include "faults/probability_model.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace recloud {

void assign_paper_probabilities(component_registry& registry, rng& random,
                                const probability_model_options& options) {
    for (component_id id = 0; id < registry.size(); ++id) {
        const component_kind kind = registry.kind(id);
        if (kind == component_kind::external) {
            registry.set_probability(id, 0.0);
            continue;
        }
        const bool is_switch_kind =
            kind == component_kind::edge_switch ||
            kind == component_kind::aggregation_switch ||
            kind == component_kind::core_switch ||
            kind == component_kind::border_switch;
        const double mean = is_switch_kind ? options.switch_mean : options.other_mean;
        const double stddev =
            is_switch_kind ? options.switch_stddev : options.other_stddev;
        double p = random.normal(mean, stddev);
        p = round_to_decimals(p, options.round_decimals);
        p = clamp(p, options.min_probability, options.max_probability);
        registry.set_probability(id, p);
    }
}

void assign_default_probabilities(component_registry& registry,
                                  double default_probability) {
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.kind(id) == component_kind::external) {
            continue;
        }
        if (registry.probability(id) == 0.0) {
            registry.set_probability(id, default_probability);
        }
    }
}

double bathtub_adjusted_probability(double base_probability,
                                    double life_fraction) noexcept {
    const double t = clamp(life_fraction, 0.0, 1.0);
    // Smooth bathtub: infant-mortality and wear-out multipliers decay /
    // grow exponentially towards the flat useful-life floor of 1x.
    const double infant = 2.0 * std::exp(-t / 0.08);
    const double wearout = 3.0 * std::exp((t - 1.0) / 0.06);
    const double multiplier = 1.0 + infant + wearout;
    return clamp(base_probability * multiplier, 0.0, 1.0);
}

}  // namespace recloud
