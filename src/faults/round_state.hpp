// Per-round failure state with fault-tree reasoning (paper §3.2.3).
//
// A round binds the sampler's raw failed-set and lazily answers "is this
// component *effectively* failed?" — its own sampled state OR its fault
// tree evaluating to failed on the sampled dependency states. Effective
// results are memoized per round.
//
// All per-component arrays are epoch-stamped so that starting a new round is
// O(|failed set|), not O(component count): this is the cheap "context setup"
// that route-and-check performs every round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"

namespace recloud {

class round_state {
public:
    /// `forest` may be nullptr when no dependency information exists
    /// (§3.4: reCloud works with limited dependency information).
    round_state(std::size_t component_count, const fault_tree_forest* forest)
        : forest_(forest),
          raw_epoch_(component_count, 0),
          eff_epoch_(component_count, 0),
          eff_value_(component_count, 0) {}

    /// Starts a new round whose raw failed components are `failed`.
    void begin_round(std::span<const component_id> failed) {
        ++epoch_;
        raw_list_.assign(failed.begin(), failed.end());
        for (const component_id id : failed) {
            raw_epoch_[id] = epoch_;
        }
    }

    /// The raw failed-set of the current round, exactly as passed to
    /// begin_round (unsorted, duplicates preserved). Lets oracles detect
    /// that two consecutive rounds share the same raw set and reuse flood
    /// results across them.
    [[nodiscard]] std::span<const component_id> raw_failed_list()
        const noexcept {
        return raw_list_;
    }

    /// The component's own sampled state (no dependency reasoning).
    [[nodiscard]] bool raw_failed(component_id id) const noexcept {
        return raw_epoch_[id] == epoch_;
    }

    /// Effective failure: raw state OR fault tree. Memoized per round.
    /// Fault-tree leaves read the *raw* state of dependency components;
    /// dependency-of-dependency chains are expressed inside the tree itself.
    [[nodiscard]] bool failed(component_id id) {
        if (eff_epoch_[id] == epoch_) {
            return eff_value_[id] != 0;
        }
        bool result = raw_failed(id);
        if (!result && forest_ != nullptr) {
            const tree_node_id root = forest_->root_of(id);
            if (root != invalid_tree_node) {
                result = forest_->evaluate(
                    root, [this](component_id dep) { return raw_failed(dep); });
            }
        }
        eff_epoch_[id] = epoch_;
        eff_value_[id] = result ? 1 : 0;
        return result;
    }

    [[nodiscard]] std::size_t component_count() const noexcept {
        return raw_epoch_.size();
    }

    /// Monotonically increasing round counter; lets oracles invalidate their
    /// own per-round caches.
    [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

    /// The forest effective-failure reasoning runs against (may be null).
    /// Oracles compare it with their own dependency index to decide whether
    /// precomputed failure->consequence maps apply to this round.
    [[nodiscard]] const fault_tree_forest* forest() const noexcept {
        return forest_;
    }

private:
    const fault_tree_forest* forest_;
    std::uint32_t epoch_ = 0;
    std::vector<component_id> raw_list_;
    std::vector<std::uint32_t> raw_epoch_;
    std::vector<std::uint32_t> eff_epoch_;
    std::vector<std::uint8_t> eff_value_;
};

}  // namespace recloud
