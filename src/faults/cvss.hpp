// CVSS v3.1 base-score calculator and score -> failure-probability mapping.
//
// The paper (§2.1) notes that software failure probabilities, when not
// directly measurable, "could be ... estimated using the publicly-available
// CVSS scores". This module implements the standard CVSS v3.1 base-score
// equations (FIRST specification) and a monotone heuristic mapping from
// base score to an annual failure probability, so software components can
// be fed into the fault model from vulnerability data alone.
#pragma once

#include <cstdint>

namespace recloud {

enum class cvss_attack_vector : std::uint8_t { network, adjacent, local, physical };
enum class cvss_attack_complexity : std::uint8_t { low, high };
enum class cvss_privileges_required : std::uint8_t { none, low, high };
enum class cvss_user_interaction : std::uint8_t { none, required };
enum class cvss_scope : std::uint8_t { unchanged, changed };
enum class cvss_impact : std::uint8_t { none, low, high };

struct cvss_metrics {
    cvss_attack_vector attack_vector = cvss_attack_vector::network;
    cvss_attack_complexity attack_complexity = cvss_attack_complexity::low;
    cvss_privileges_required privileges_required = cvss_privileges_required::none;
    cvss_user_interaction user_interaction = cvss_user_interaction::none;
    cvss_scope scope = cvss_scope::unchanged;
    cvss_impact confidentiality = cvss_impact::none;
    cvss_impact integrity = cvss_impact::none;
    cvss_impact availability = cvss_impact::none;
};

/// CVSS v3.1 base score in [0, 10], rounded up to one decimal per the
/// specification's Roundup function.
[[nodiscard]] double cvss_base_score(const cvss_metrics& metrics) noexcept;

/// Heuristic, monotone mapping from a base score to an annual failure
/// probability in [1e-4, 0.05]: p = 1e-4 + (score/10)^2 * (0.05 - 1e-4).
/// Severity-10 software is treated as roughly as unreliable as the paper's
/// 5%-tail hardware; benign software approaches the 0.01% floor.
[[nodiscard]] double probability_from_cvss(double base_score) noexcept;

}  // namespace recloud
