// Registry of all infrastructure components in the fault model (paper §2.1).
//
// Components cover hardware (hosts, switches, power supplies, cooling),
// software (OS, libraries, firmware) and network elements. Each component is
// either alive or failed, and carries a failure probability
// p = downtime / window_length.
//
// Id space: the first graph.node_count() ids belong to the routing graph's
// nodes (host/switch/external), in the same order; dependency components
// that do not participate in routing (power supplies, software, ...) are
// appended after them. This lets samplers, fault trees and routing oracles
// all index the same dense arrays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace recloud {

using component_id = node_id;

/// What a component is; used for per-type failure-probability models and
/// for symmetry classing.
enum class component_kind : std::uint8_t {
    host,
    edge_switch,
    aggregation_switch,
    core_switch,
    border_switch,
    external,  ///< the synthetic Internet node; never fails
    power_supply,
    cooling_unit,
    operating_system,
    software_package,
    firmware,
    network_service,
    network_link,  ///< a physical link between two routing-graph nodes
    other,
};

[[nodiscard]] const char* to_string(component_kind kind) noexcept;

/// Maps a routing-graph node kind to the corresponding component kind.
[[nodiscard]] component_kind component_kind_of(node_kind kind) noexcept;

class component_registry {
public:
    /// Creates an empty registry.
    component_registry() = default;

    /// Creates a registry pre-populated with one component per graph node,
    /// in node-id order, with failure probability 0 (to be assigned by a
    /// probability model).
    explicit component_registry(const network_graph& graph);

    /// Registers a non-routing dependency component; returns its id.
    component_id add(component_kind kind, std::string name,
                     double failure_probability = 0.0);

    [[nodiscard]] std::size_t size() const noexcept { return kinds_.size(); }

    [[nodiscard]] component_kind kind(component_id id) const { return kinds_.at(id); }
    [[nodiscard]] const std::string& name(component_id id) const { return names_.at(id); }
    [[nodiscard]] double probability(component_id id) const {
        return probabilities_.at(id);
    }

    /// Sets a failure probability; must lie in [0, 1].
    void set_probability(component_id id, double p);

    /// Dense probability array, indexed by component id (sampler input).
    [[nodiscard]] std::span<const double> probabilities() const noexcept {
        return probabilities_;
    }

    [[nodiscard]] std::span<const component_kind> kinds() const noexcept {
        return kinds_;
    }

    /// All components of a kind, in id order.
    [[nodiscard]] std::vector<component_id> of_kind(component_kind kind) const;

private:
    std::vector<component_kind> kinds_;
    std::vector<std::string> names_;
    std::vector<double> probabilities_;
};

}  // namespace recloud
