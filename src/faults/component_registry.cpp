#include "faults/component_registry.hpp"

#include <stdexcept>

namespace recloud {

const char* to_string(component_kind kind) noexcept {
    switch (kind) {
        case component_kind::host: return "host";
        case component_kind::edge_switch: return "edge_switch";
        case component_kind::aggregation_switch: return "aggregation_switch";
        case component_kind::core_switch: return "core_switch";
        case component_kind::border_switch: return "border_switch";
        case component_kind::external: return "external";
        case component_kind::power_supply: return "power_supply";
        case component_kind::cooling_unit: return "cooling_unit";
        case component_kind::operating_system: return "operating_system";
        case component_kind::software_package: return "software_package";
        case component_kind::firmware: return "firmware";
        case component_kind::network_service: return "network_service";
        case component_kind::network_link: return "network_link";
        case component_kind::other: return "other";
    }
    return "unknown";
}

component_kind component_kind_of(node_kind kind) noexcept {
    switch (kind) {
        case node_kind::host: return component_kind::host;
        case node_kind::edge_switch: return component_kind::edge_switch;
        case node_kind::aggregation_switch: return component_kind::aggregation_switch;
        case node_kind::core_switch: return component_kind::core_switch;
        case node_kind::border_switch: return component_kind::border_switch;
        case node_kind::external: return component_kind::external;
    }
    return component_kind::other;
}

component_registry::component_registry(const network_graph& graph) {
    const std::size_t n = graph.node_count();
    kinds_.reserve(n);
    names_.reserve(n);
    probabilities_.reserve(n);
    for (node_id id = 0; id < n; ++id) {
        const node_kind nk = graph.kind(id);
        kinds_.push_back(component_kind_of(nk));
        names_.push_back(std::string{to_string(nk)} + "#" + std::to_string(id));
        probabilities_.push_back(0.0);
    }
}

component_id component_registry::add(component_kind kind, std::string name,
                                     double failure_probability) {
    if (failure_probability < 0.0 || failure_probability > 1.0) {
        throw std::invalid_argument{"component_registry: probability out of [0,1]"};
    }
    kinds_.push_back(kind);
    names_.push_back(std::move(name));
    probabilities_.push_back(failure_probability);
    return static_cast<component_id>(kinds_.size() - 1);
}

void component_registry::set_probability(component_id id, double p) {
    if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument{"component_registry: probability out of [0,1]"};
    }
    probabilities_.at(id) = p;
}

std::vector<component_id> component_registry::of_kind(component_kind kind) const {
    std::vector<component_id> result;
    for (component_id id = 0; id < kinds_.size(); ++id) {
        if (kinds_[id] == kind) {
            result.push_back(id);
        }
    }
    return result;
}

}  // namespace recloud
