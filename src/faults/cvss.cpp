#include "faults/cvss.hpp"

#include <algorithm>
#include <cmath>

namespace recloud {
namespace {

double impact_value(cvss_impact impact) noexcept {
    switch (impact) {
        case cvss_impact::none: return 0.0;
        case cvss_impact::low: return 0.22;
        case cvss_impact::high: return 0.56;
    }
    return 0.0;
}

double attack_vector_value(cvss_attack_vector av) noexcept {
    switch (av) {
        case cvss_attack_vector::network: return 0.85;
        case cvss_attack_vector::adjacent: return 0.62;
        case cvss_attack_vector::local: return 0.55;
        case cvss_attack_vector::physical: return 0.20;
    }
    return 0.0;
}

double privileges_value(cvss_privileges_required pr, cvss_scope scope) noexcept {
    const bool changed = scope == cvss_scope::changed;
    switch (pr) {
        case cvss_privileges_required::none: return 0.85;
        case cvss_privileges_required::low: return changed ? 0.68 : 0.62;
        case cvss_privileges_required::high: return changed ? 0.50 : 0.27;
    }
    return 0.0;
}

/// CVSS v3.1 Roundup: smallest number with one decimal >= input.
double round_up_1(double value) noexcept {
    const double scaled = std::round(value * 100000.0);
    if (std::fmod(scaled, 10000.0) == 0.0) {
        return scaled / 100000.0;
    }
    return (std::floor(scaled / 10000.0) + 1.0) / 10.0;
}

}  // namespace

double cvss_base_score(const cvss_metrics& m) noexcept {
    const double iss = 1.0 - (1.0 - impact_value(m.confidentiality)) *
                                 (1.0 - impact_value(m.integrity)) *
                                 (1.0 - impact_value(m.availability));
    double impact = 0.0;
    if (m.scope == cvss_scope::unchanged) {
        impact = 6.42 * iss;
    } else {
        impact = 7.52 * (iss - 0.029) - 3.25 * std::pow(iss - 0.02, 15.0);
    }
    if (impact <= 0.0) {
        return 0.0;
    }
    const double ac =
        m.attack_complexity == cvss_attack_complexity::low ? 0.77 : 0.44;
    const double ui =
        m.user_interaction == cvss_user_interaction::none ? 0.85 : 0.62;
    const double exploitability = 8.22 * attack_vector_value(m.attack_vector) *
                                  ac * privileges_value(m.privileges_required, m.scope) *
                                  ui;
    const double raw = m.scope == cvss_scope::unchanged
                           ? impact + exploitability
                           : 1.08 * (impact + exploitability);
    return round_up_1(std::min(raw, 10.0));
}

double probability_from_cvss(double base_score) noexcept {
    const double s = std::clamp(base_score, 0.0, 10.0) / 10.0;
    constexpr double floor = 1e-4;
    constexpr double ceiling = 0.05;
    return floor + s * s * (ceiling - floor);
}

}  // namespace recloud
