// Failure-probability models (paper §2.1, §4.1).
//
// The paper's evaluation setting: switches fail with probability
// ~ N(0.008, 0.001) and every other component (hosts, power supplies, ...)
// with ~ N(0.01, 0.001); all probabilities are rounded to 4 decimal places.
// The models here also cover §3.4 (limited information → default
// probability) and the "bathtub curve" lifetime adjustment mentioned in
// §3.2.2.
#pragma once

#include "faults/component_registry.hpp"
#include "util/rng.hpp"

namespace recloud {

/// Per-type normal-distribution parameters for the paper's setting.
struct probability_model_options {
    double switch_mean = 0.008;
    double switch_stddev = 0.001;
    double other_mean = 0.01;
    double other_stddev = 0.001;
    int round_decimals = 4;  ///< paper rounds to 4 decimal places
    /// Draws are clamped into [min_probability, max_probability] so that a
    /// tail draw can't produce p <= 0 (dagger cycle length would blow up)
    /// or p >= 1.
    double min_probability = 0.0001;
    double max_probability = 0.5;
};

/// Assigns failure probabilities to every component in the registry
/// according to the paper's per-type normal distributions. The external
/// node keeps probability 0 (it never fails).
void assign_paper_probabilities(component_registry& registry, rng& random,
                                const probability_model_options& options = {});

/// §3.4: assigns `default_probability` to every component whose probability
/// is still 0 (i.e. unknown), except the external node.
void assign_default_probabilities(component_registry& registry,
                                  double default_probability);

/// Bathtub-curve adjustment (§3.2.2): scales a base probability by the
/// component's position in its lifetime. `life_fraction` in [0, 1]:
/// early-life (infant mortality) and end-of-life draws are scaled up, the
/// useful-life middle stays at the base rate.
[[nodiscard]] double bathtub_adjusted_probability(double base_probability,
                                                  double life_fraction) noexcept;

}  // namespace recloud
