// Concurrent deployment service — the provider's front door for the
// paper's workflow (§2.2): many developers submit reliability requirements
// at once, each against a shared immutable scenario snapshot
// (core/scenario.hpp), and each gets back a plan or a "cannot be
// fulfilled" verdict.
//
// The service owns a registry of named scenarios, a BOUNDED pending queue
// and a fixed pool of search workers. Every request runs in its own
// re_cloud instance (own backends, own RNG substreams derived from the
// request seed), so requests share nothing mutable — the scenario layer
// guarantees the model they read is frozen. Overflowing the queue resolves
// the request immediately as `rejected` instead of blocking or throwing:
// admission control is part of the response, not an exception, because
// callers race each other for the slots.
//
// Telemetry: every observer event a request's search emits is stamped with
// the service-assigned request id (obs::search_iteration_event::request_id,
// ids start at 1), and the service counts submissions/rejections/
// completions/failures both in service_stats and in the global metrics
// registry ("service.*" counters).
#pragma once

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/recloud.hpp"

namespace recloud {

struct service_options {
    /// Concurrent searches (each worker runs one request at a time).
    std::size_t workers = 2;
    /// Pending (admitted but not yet running) requests; submissions beyond
    /// it resolve as request_status::rejected.
    std::size_t queue_capacity = 64;
    /// Base search configuration for every request; per-request fields
    /// (seed, chains, iteration budget) override it. The observer (if any)
    /// receives events from ALL requests, stamped with their request id,
    /// possibly from several worker threads at once — it must be
    /// thread-safe or wrapped appropriately by the caller.
    recloud_options defaults{};
};

enum class request_status : std::uint8_t {
    completed,  ///< the search ran; see result.fulfilled for R_desired
    rejected,   ///< refused at admission (queue full or shutting down)
    failed,     ///< admitted but errored (unknown scenario, invalid app, ...)
};

[[nodiscard]] const char* to_string(request_status status) noexcept;

/// One developer request (§2.2): application structure + R_desired + Tmax,
/// bound to a named scenario.
struct service_request {
    std::string scenario;  ///< name registered via add_scenario()
    application app;
    double desired_reliability = 1.0;  ///< R_desired
    std::chrono::nanoseconds max_search_time = std::chrono::seconds{30};  ///< Tmax
    std::uint64_t seed = 1;
    /// Per-request overrides of the service defaults (unset = inherit).
    std::optional<std::size_t> search_chains;
    std::optional<std::size_t> max_iterations;
};

struct service_response {
    request_status status = request_status::failed;
    std::uint64_t request_id = 0;
    std::string scenario;
    std::string error;          ///< set for rejected/failed
    deployment_response result; ///< meaningful iff status == completed
};

/// Cumulative service counters (also exported as "service.*" metrics).
struct service_stats {
    std::uint64_t submitted = 0;  ///< admitted into the queue
    std::uint64_t rejected = 0;   ///< refused at admission
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::size_t peak_queue_depth = 0;
};

class deployment_service {
public:
    explicit deployment_service(const service_options& options = {});
    /// Drains the queue (every admitted request still completes), then
    /// joins the workers.
    ~deployment_service();
    deployment_service(const deployment_service&) = delete;
    deployment_service& operator=(const deployment_service&) = delete;

    /// Registers (or replaces) a named snapshot. Requests capture the
    /// scenario_ptr at submission, so replacing a name never affects
    /// already-admitted requests.
    void add_scenario(std::string name, scenario_ptr scenario);
    [[nodiscard]] scenario_ptr find_scenario(const std::string& name) const;

    /// Admits a request. The future resolves when the search completes —
    /// or immediately with `rejected` (queue full / shutting down) or
    /// `failed` (unknown scenario). Never throws on overload.
    [[nodiscard]] std::future<service_response> submit(service_request request);

    /// Stops admitting, drains every queued request, joins the workers.
    /// Idempotent; the destructor calls it.
    void shutdown();

    [[nodiscard]] service_stats stats() const;
    [[nodiscard]] std::size_t queue_depth() const;

private:
    struct pending_request {
        std::uint64_t id = 0;
        service_request request;
        scenario_ptr scenario;
        std::promise<service_response> promise;
    };

    void worker_loop();
    [[nodiscard]] service_response run(pending_request& pending) const;

    service_options options_;
    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::deque<pending_request> queue_;
    std::unordered_map<std::string, scenario_ptr> scenarios_;
    service_stats stats_{};
    std::uint64_t next_request_id_ = 1;
    bool shutting_down_ = false;
    std::vector<std::thread> workers_;  ///< last member: joins before the rest dies
};

}  // namespace recloud
