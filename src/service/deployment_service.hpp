// Concurrent deployment service — the provider's front door for the
// paper's workflow (§2.2): many developers submit reliability requirements
// at once, each against a shared immutable scenario snapshot
// (core/scenario.hpp), and each gets back a plan or a "cannot be
// fulfilled" verdict.
//
// The service owns a registry of named scenarios and a fixed fleet of
// SHARDS: each shard has its own bounded pending queue and its own pool of
// search workers, and a request is routed to the shard owning its scenario
// (hash of the scenario name), so one hot scenario saturating its shard's
// queue sheds load for that scenario only — requests against other
// scenarios keep flowing through their own shards. Every request runs in
// its own re_cloud instance (own backends, own RNG substreams derived from
// the request seed), so requests share nothing mutable — the scenario
// layer guarantees the model they read is frozen.
//
// Admission control is part of the response, not an exception, because
// callers race each other for the slots. A submission is SHED — resolved
// immediately as `rejected` — when its shard's queue is full
// (stats.shed_queue_full, "service.shed.queue_full") or when its tenant
// already has `tenant_quota` requests in flight (stats.shed_quota,
// "service.shed.quota").
//
// Telemetry: every observer event a request's search emits is stamped with
// the service-assigned request id (obs::search_iteration_event::request_id,
// ids start at 1), and the service counts submissions/rejections/
// completions/failures both in service_stats and in the global metrics
// registry ("service.*" counters).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/recloud.hpp"
#include "obs/metrics.hpp"

namespace recloud {

namespace obs {
class admin_server;
}

/// How a shard orders its pending queue (DESIGN.md §13).
enum class scheduling_policy : std::uint8_t {
    /// Strict admission order; slo_deadline is never ENFORCED (no EDF pop,
    /// no shedding, no preemption) but deadline met/missed is still
    /// MEASURED — the baseline the bench_slo_sched comparison runs against.
    fifo,
    /// Earliest-deadline-first: the pop takes the smallest (deadline, id)
    /// key, requests whose deadline already passed are shed without
    /// running, provably-unmeetable submissions are shed at admission
    /// (min_service_grant), and a running search is cooperatively
    /// preempted at its deadline, returning its anytime best-so-far plan.
    /// With NO deadlines configured every key is (+inf, id), so the pop
    /// degenerates to admission order — bit-identical to fifo.
    edf,
};

[[nodiscard]] const char* to_string(scheduling_policy policy) noexcept;

struct service_options {
    /// Concurrent searches PER SHARD (each worker runs one request at a
    /// time).
    std::size_t workers = 2;
    /// Pending (admitted but not yet running) requests PER SHARD;
    /// submissions beyond it are shed as request_status::rejected.
    std::size_t queue_capacity = 64;
    /// Independent engine shards. A request is routed to the shard owning
    /// its scenario — std::hash of the scenario name modulo `shards` — so
    /// all requests for one scenario are serviced (and shed) by one shard's
    /// queue while other scenarios ride other shards.
    std::size_t shards = 1;
    /// Per-tenant admission quota: max requests a tenant may have in
    /// flight (queued or running) across all shards; submissions beyond it
    /// are shed as rejected. 0 = unlimited. The empty tenant name is a
    /// tenant like any other.
    std::size_t tenant_quota = 0;
    /// Queue ordering + deadline enforcement (see scheduling_policy).
    scheduling_policy scheduling = scheduling_policy::edf;
    /// Admission-time feasibility floor: the minimum wall time the service
    /// commits to grant any admitted search. A deadline submission whose
    /// earliest possible start — now + min_service_grant x
    /// (requests ahead of it / workers) — leaves less than this grant
    /// before its deadline is PROVABLY UNMEETABLE and shed at submit()
    /// (stats.shed_unmeetable, "service.deadline.shed_unmeetable").
    /// 0 disables admission shedding (expired requests are still shed at
    /// dequeue under edf).
    std::chrono::nanoseconds min_service_grant{0};
    /// Safety margin subtracted from a request's remaining time when arming
    /// its search run_budget, reserving room for response assembly and the
    /// final unbiased re-assessment so the RESPONSE (not just the search)
    /// meets the deadline.
    std::chrono::nanoseconds deadline_headroom{0};
    /// Base search configuration for every request; per-request fields
    /// (seed, chains, iteration budget) override it. The observer (if any)
    /// receives events from ALL requests, stamped with their request id,
    /// possibly from several worker threads at once — it must be
    /// thread-safe or wrapped appropriately by the caller.
    recloud_options defaults{};
    /// Unix-domain socket path of the live introspection endpoint
    /// (obs::admin_server): GET /metrics serves a Prometheus text
    /// exposition of the global registry (per-shard queue gauges and, after
    /// a telemetry harvest, socket-worker counters included), /status the
    /// service health JSON (status_json()), /healthz a liveness probe, and
    /// /trace an on-demand Chrome trace dump. Empty = no endpoint. The
    /// socket file is bound at construction (construction throws if it
    /// cannot be) and unlinked at shutdown.
    std::string admin_socket;
};

enum class request_status : std::uint8_t {
    completed,  ///< the search ran; see result.fulfilled for R_desired
    rejected,   ///< refused at admission (queue full or shutting down)
    failed,     ///< admitted but errored (unknown scenario, invalid app, ...)
};

[[nodiscard]] const char* to_string(request_status status) noexcept;

/// One developer request (§2.2): application structure + R_desired + Tmax,
/// bound to a named scenario.
struct service_request {
    std::string scenario;  ///< name registered via add_scenario()
    /// Tenant identity for admission quotas (empty = the anonymous tenant).
    std::string tenant;
    application app;
    double desired_reliability = 1.0;  ///< R_desired
    std::chrono::nanoseconds max_search_time = std::chrono::seconds{30};  ///< Tmax
    std::uint64_t seed = 1;
    /// SLO deadline for the whole request lifecycle (queue wait + search +
    /// response assembly), measured from submit(). 0 = no deadline: the
    /// request is never shed, never preempted, and its search runs exactly
    /// the historic trajectory. Distinct from max_search_time (Tmax, the
    /// search's own annealing budget): slo_deadline is the caller's
    /// patience, Tmax the paper's Eq. 6 cooling horizon.
    std::chrono::nanoseconds slo_deadline{0};
    /// Per-request overrides of the service defaults (unset = inherit).
    std::optional<std::size_t> search_chains;
    std::optional<std::size_t> max_iterations;
};

struct service_response {
    request_status status = request_status::failed;
    std::uint64_t request_id = 0;
    std::string scenario;
    std::string error;          ///< set for rejected/failed
    deployment_response result; ///< meaningful iff status == completed
    /// Time the request sat admitted-but-not-running (submit → dequeue).
    /// Also observed into the "service.latency.queue_wait_ns" histogram.
    std::chrono::nanoseconds queue_wait_ns{0};
    /// Time the search ran (dequeue → response ready), histogram
    /// "service.latency.search_ns". Both are 0 for admission-shed requests.
    std::chrono::nanoseconds search_ns{0};
    /// Whether a deadline request's response was ready by its deadline.
    /// Meaningful only when the request carried an slo_deadline; a
    /// preempted-but-on-time request still reads true here (its result is
    /// the anytime plan, see result.outcome).
    bool deadline_met = false;
};

/// Cumulative service counters (also exported as "service.*" metrics).
struct service_stats {
    std::uint64_t submitted = 0;  ///< admitted into a shard queue
    std::uint64_t rejected = 0;   ///< refused at admission (all causes)
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    /// Load shed because the target shard's queue was full
    /// ("service.shed.queue_full"). Counted inside `rejected` too.
    std::uint64_t shed_queue_full = 0;
    /// Load shed because the tenant hit its in-flight quota
    /// ("service.shed.quota"). Counted inside `rejected` too.
    std::uint64_t shed_quota = 0;
    /// Deadline requests shed as provably unmeetable — at admission by the
    /// min_service_grant bound, or at dequeue because the deadline had
    /// already passed ("service.deadline.shed_unmeetable"). Counted inside
    /// `rejected` too.
    std::uint64_t shed_unmeetable = 0;
    /// Deadline requests whose response was ready by the deadline
    /// ("service.deadline.met"). met + missed + shed_unmeetable covers
    /// every resolved deadline request.
    std::uint64_t deadline_met = 0;
    /// Deadline requests that ran but resolved late ("service.deadline.missed").
    std::uint64_t deadline_missed = 0;
    /// Searches cooperatively preempted by their run_budget — the response
    /// carries the anytime best-so-far plan with
    /// search_outcome::deadline_exceeded ("service.deadline.preempted").
    /// Orthogonal to met/missed: a preempted search usually still meets its
    /// deadline (that is the point).
    std::uint64_t preempted = 0;
    /// Deepest any single shard queue ever got.
    std::size_t peak_queue_depth = 0;
    /// Live queue depth per shard (index = shard id) at the stats() call.
    /// Also exported live as "service.shard.N.queue_depth" gauges.
    std::vector<std::size_t> shard_queue_depth;
    /// Per-shard queue high-water marks ("service.shard.N.queue_peak"
    /// gauges); peak_queue_depth is their maximum.
    std::vector<std::size_t> shard_queue_peak;
};

class deployment_service {
public:
    explicit deployment_service(const service_options& options = {});
    /// Drains the queue (every admitted request still completes), then
    /// joins the workers.
    ~deployment_service();
    deployment_service(const deployment_service&) = delete;
    deployment_service& operator=(const deployment_service&) = delete;

    /// Registers (or replaces) a named snapshot. Requests capture the
    /// scenario_ptr at submission, so replacing a name never affects
    /// already-admitted requests.
    void add_scenario(std::string name, scenario_ptr scenario);
    [[nodiscard]] scenario_ptr find_scenario(const std::string& name) const;

    /// Admits a request. The future resolves when the search completes —
    /// or immediately with `rejected` (shard queue full / tenant over quota
    /// / shutting down) or `failed` (unknown scenario). Never throws on
    /// overload.
    [[nodiscard]] std::future<service_response> submit(service_request request);

    /// Stops admitting, drains every queued request, joins every shard's
    /// workers. Each request's re_cloud (and with it any socket-transport
    /// worker fleet of child recloud_worker processes) is destroyed when
    /// its search finishes, so after shutdown() returns the service has no
    /// live child processes. Idempotent; the destructor calls it.
    void shutdown();

    [[nodiscard]] service_stats stats() const;
    /// Health/status JSON served at the admin endpoint's /status route:
    /// admission configuration, cumulative stats() (per-shard queue depth
    /// and high-water mark included), per-tenant in-flight counts, and the
    /// fleet gauges last published to the metrics registry
    /// (engine.stats.worker_respawns, trace.dropped). Callable without an
    /// admin endpoint.
    [[nodiscard]] std::string status_json() const;
    /// Pending requests across all shards.
    [[nodiscard]] std::size_t queue_depth() const;
    /// Which shard services a scenario name (stable across the lifetime).
    [[nodiscard]] std::size_t shard_of(const std::string& scenario) const noexcept;
    [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
    /// In-flight (queued or running) requests for one tenant.
    [[nodiscard]] std::size_t tenant_in_flight(const std::string& tenant) const;

private:
    struct pending_request {
        std::uint64_t id = 0;
        service_request request;
        scenario_ptr scenario;
        std::promise<service_response> promise;
        /// submit() wall-clock instant (queue_wait starts here).
        monotonic_clock::time_point admitted_at{};
        /// Absolute deadline (admitted_at + slo_deadline); the EDF sort key.
        monotonic_clock::time_point deadline_at{};
        bool has_deadline = false;
    };

    /// One shard: a bounded queue plus the workers draining it. Requests
    /// for a scenario always land on the same shard, so shedding is scoped
    /// to the overloaded scenario's shard.
    struct shard {
        mutable std::mutex mutex;
        std::condition_variable work_available;
        std::deque<pending_request> queue;
        std::vector<std::thread> workers;
        std::size_t peak = 0;  ///< queue high-water mark (under `mutex`)
        /// "service.shard.N.queue_depth"/".queue_peak" gauges, registered
        /// at construction so the queue hot path never allocates a name.
        obs::metric_id depth_gauge{};
        obs::metric_id peak_gauge{};
        bool gauges_registered = false;  ///< false once gauge capacity ran out
    };

    /// EDF total order: (deadline or +inf, admission id). Deadline-free
    /// requests compare by id alone, so an all-FIFO workload pops in
    /// admission order under edf too — the PR 9 bit-identity hinge.
    [[nodiscard]] static bool edf_before(const pending_request& a,
                                         const pending_request& b) noexcept;

    void worker_loop(shard& sh);
    [[nodiscard]] service_response run(pending_request& pending,
                                       const run_budget_ptr& budget) const;

    service_options options_;
    /// Registry + stats + tenant bookkeeping; never held while a shard
    /// mutex is held (lock order: service mutex_ before shard.mutex).
    mutable std::mutex mutex_;
    std::unordered_map<std::string, scenario_ptr> scenarios_;
    std::unordered_map<std::string, std::size_t> tenant_in_flight_;
    service_stats stats_{};
    std::uint64_t next_request_id_ = 1;
    /// Atomic because shard workers read it in their wait predicate under
    /// the SHARD mutex, while admission flips it under the service mutex.
    std::atomic<bool> shutting_down_{false};
    /// unique_ptr: shards are address-stable for the worker threads.
    std::vector<std::unique_ptr<shard>> shards_;
    /// Live introspection endpoint (engaged iff options.admin_socket is
    /// set). Declared after shards_ so it is destroyed — its server thread
    /// joined — before the shards its /status handler reads.
    std::unique_ptr<obs::admin_server> admin_;
};

}  // namespace recloud
