#include "service/deployment_service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {

const char* to_string(request_status status) noexcept {
    switch (status) {
        case request_status::completed: return "completed";
        case request_status::rejected: return "rejected";
        case request_status::failed: return "failed";
    }
    return "unknown";
}

deployment_service::deployment_service(const service_options& options)
    : options_(options) {
    const std::size_t workers = std::max<std::size_t>(1, options_.workers);
    workers_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

deployment_service::~deployment_service() { shutdown(); }

void deployment_service::add_scenario(std::string name, scenario_ptr scenario) {
    if (scenario == nullptr) {
        throw std::invalid_argument{"deployment_service: null scenario"};
    }
    const std::lock_guard<std::mutex> lock{mutex_};
    scenarios_[std::move(name)] = std::move(scenario);
}

scenario_ptr deployment_service::find_scenario(const std::string& name) const {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = scenarios_.find(name);
    return it != scenarios_.end() ? it->second : nullptr;
}

std::future<service_response> deployment_service::submit(
    service_request request) {
    pending_request pending;
    pending.request = std::move(request);
    std::future<service_response> future = pending.promise.get_future();

    // Resolved-at-admission responses (rejection, unknown scenario) bypass
    // the queue so an overloaded service answers in O(1).
    const auto resolve_now = [&](request_status status, std::string error) {
        service_response response;
        response.status = status;
        response.request_id = pending.id;
        response.scenario = pending.request.scenario;
        response.error = std::move(error);
        pending.promise.set_value(std::move(response));
    };

    {
        const std::lock_guard<std::mutex> lock{mutex_};
        pending.id = next_request_id_++;
        if (shutting_down_) {
            ++stats_.rejected;
            RECLOUD_COUNTER_INC("service.rejected");
            resolve_now(request_status::rejected, "service is shutting down");
            return future;
        }
        if (queue_.size() >= options_.queue_capacity) {
            ++stats_.rejected;
            RECLOUD_COUNTER_INC("service.rejected");
            resolve_now(request_status::rejected, "queue is full");
            return future;
        }
        const auto it = scenarios_.find(pending.request.scenario);
        if (it == scenarios_.end()) {
            ++stats_.failed;
            RECLOUD_COUNTER_INC("service.failed");
            resolve_now(request_status::failed,
                        "unknown scenario: " + pending.request.scenario);
            return future;
        }
        // Snapshot semantics: the request keeps the scenario it was admitted
        // with, even if the name is re-registered later.
        pending.scenario = it->second;
        queue_.push_back(std::move(pending));
        ++stats_.submitted;
        RECLOUD_COUNTER_INC("service.submitted");
        stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
    }
    work_available_.notify_one();
    return future;
}

void deployment_service::worker_loop() {
    for (;;) {
        pending_request pending;
        {
            std::unique_lock<std::mutex> lock{mutex_};
            work_available_.wait(
                lock, [this] { return shutting_down_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // shutting down and drained
            }
            pending = std::move(queue_.front());
            queue_.pop_front();
        }
        service_response response = run(pending);
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            if (response.status == request_status::completed) {
                ++stats_.completed;
                RECLOUD_COUNTER_INC("service.completed");
            } else {
                ++stats_.failed;
                RECLOUD_COUNTER_INC("service.failed");
            }
        }
        pending.promise.set_value(std::move(response));
    }
}

service_response deployment_service::run(pending_request& pending) const {
    RECLOUD_SPAN("service.request");
    service_response response;
    response.request_id = pending.id;
    response.scenario = pending.request.scenario;

    recloud_options options = options_.defaults;
    options.seed = pending.request.seed;
    if (pending.request.search_chains) {
        options.search_chains = *pending.request.search_chains;
    }
    if (pending.request.max_iterations) {
        options.max_iterations = *pending.request.max_iterations;
    }
    if (options_.defaults.observer) {
        // Stamp every event of this request's search with the request id;
        // the shared downstream observer must cope with several requests'
        // workers calling it concurrently.
        options.observer = [id = pending.id,
                            &observer = options_.defaults.observer](
                               const obs::search_iteration_event& e) {
            obs::search_iteration_event event = e;
            event.request_id = id;
            observer(event);
        };
    }

    try {
        re_cloud instance{pending.scenario, options};
        deployment_request request;
        request.app = pending.request.app;
        request.desired_reliability = pending.request.desired_reliability;
        request.max_search_time = pending.request.max_search_time;
        response.result = instance.find_deployment(request);
        response.status = request_status::completed;
    } catch (const std::exception& error) {
        response.status = request_status::failed;
        response.error = error.what();
    }
    return response;
}

void deployment_service::shutdown() {
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        if (shutting_down_ && workers_.empty()) {
            return;
        }
        shutting_down_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    workers_.clear();
}

service_stats deployment_service::stats() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return stats_;
}

std::size_t deployment_service::queue_depth() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return queue_.size();
}

}  // namespace recloud
