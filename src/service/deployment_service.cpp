#include "service/deployment_service.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/admin_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/report.hpp"

namespace recloud {

const char* to_string(request_status status) noexcept {
    switch (status) {
        case request_status::completed: return "completed";
        case request_status::rejected: return "rejected";
        case request_status::failed: return "failed";
    }
    return "unknown";
}

const char* to_string(scheduling_policy policy) noexcept {
    switch (policy) {
        case scheduling_policy::fifo: return "fifo";
        case scheduling_policy::edf: return "edf";
    }
    return "unknown";
}

bool deployment_service::edf_before(const pending_request& a,
                                    const pending_request& b) noexcept {
    const auto key = [](const pending_request& p) {
        return p.has_deadline ? p.deadline_at
                              : monotonic_clock::time_point::max();
    };
    const auto ka = key(a);
    const auto kb = key(b);
    return ka != kb ? ka < kb : a.id < b.id;
}

deployment_service::deployment_service(const service_options& options)
    : options_(options) {
    const std::size_t shard_count = std::max<std::size_t>(1, options_.shards);
    const std::size_t workers = std::max<std::size_t>(1, options_.workers);
    shards_.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
        auto sh = std::make_unique<shard>();
        try {
            // Pre-register the per-shard queue gauges; registration is the
            // only allocating step, so the queue hot path stays a set().
            auto& registry = obs::metrics_registry::global();
            const std::string prefix = "service.shard." + std::to_string(s);
            sh->depth_gauge = registry.gauge(prefix + ".queue_depth");
            sh->peak_gauge = registry.gauge(prefix + ".queue_peak");
            sh->gauges_registered = true;
        } catch (const std::length_error&) {
            // Gauge capacity exhausted (very wide fleets): this shard keeps
            // its stats() depth/peak but stops publishing gauges.
        }
        sh->workers.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            sh->workers.emplace_back([this, &sh = *sh] { worker_loop(sh); });
        }
        shards_.push_back(std::move(sh));
    }
    if (!options_.admin_socket.empty()) {
        try {
            obs::admin_endpoints endpoints;
            endpoints.metrics = [] {
                return obs::metrics_registry::global().snapshot();
            };
            endpoints.status_json = [this] { return status_json(); };
            endpoints.trace_json = [] {
                return obs::tracer::global().export_chrome_trace();
            };
            admin_ = std::make_unique<obs::admin_server>(options_.admin_socket,
                                                         std::move(endpoints));
        } catch (...) {
            // The worker threads are already running; join them before the
            // bind failure propagates, or ~thread would terminate().
            shutdown();
            throw;
        }
    }
}

deployment_service::~deployment_service() { shutdown(); }

void deployment_service::add_scenario(std::string name, scenario_ptr scenario) {
    if (scenario == nullptr) {
        throw std::invalid_argument{"deployment_service: null scenario"};
    }
    const std::lock_guard<std::mutex> lock{mutex_};
    scenarios_[std::move(name)] = std::move(scenario);
}

scenario_ptr deployment_service::find_scenario(const std::string& name) const {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = scenarios_.find(name);
    return it != scenarios_.end() ? it->second : nullptr;
}

std::size_t deployment_service::shard_of(
    const std::string& scenario) const noexcept {
    return std::hash<std::string>{}(scenario) % shards_.size();
}

std::future<service_response> deployment_service::submit(
    service_request request) {
    pending_request pending;
    pending.request = std::move(request);
    pending.admitted_at = monotonic_clock::now();
    if (pending.request.slo_deadline.count() > 0) {
        // Tracked under both policies (fifo still measures met/missed);
        // enforcement — EDF pop, shedding, preemption — is edf-only.
        pending.has_deadline = true;
        pending.deadline_at = pending.admitted_at + pending.request.slo_deadline;
    }
    std::future<service_response> future = pending.promise.get_future();

    // Resolved-at-admission responses (shed, unknown scenario) bypass the
    // queue so an overloaded service answers in O(1).
    const auto resolve_now = [&](request_status status, std::string error) {
        service_response response;
        response.status = status;
        response.request_id = pending.id;
        response.scenario = pending.request.scenario;
        response.error = std::move(error);
        pending.promise.set_value(std::move(response));
    };

    shard& sh = *shards_[shard_of(pending.request.scenario)];
    {
        // Lock order everywhere: service mutex_ before a shard mutex.
        const std::lock_guard<std::mutex> lock{mutex_};
        pending.id = next_request_id_++;
        if (shutting_down_.load(std::memory_order_relaxed)) {
            ++stats_.rejected;
            RECLOUD_COUNTER_INC("service.rejected");
            resolve_now(request_status::rejected, "service is shutting down");
            return future;
        }
        const auto it = scenarios_.find(pending.request.scenario);
        if (it == scenarios_.end()) {
            ++stats_.failed;
            RECLOUD_COUNTER_INC("service.failed");
            resolve_now(request_status::failed,
                        "unknown scenario: " + pending.request.scenario);
            return future;
        }
        if (options_.tenant_quota > 0) {
            const auto in_flight = tenant_in_flight_.find(pending.request.tenant);
            if (in_flight != tenant_in_flight_.end() &&
                in_flight->second >= options_.tenant_quota) {
                ++stats_.rejected;
                ++stats_.shed_quota;
                RECLOUD_COUNTER_INC("service.rejected");
                RECLOUD_COUNTER_INC("service.shed.quota");
                resolve_now(request_status::rejected,
                            "tenant quota exceeded: " + pending.request.tenant);
                return future;
            }
        }
        const std::lock_guard<std::mutex> shard_lock{sh.mutex};
        if (sh.queue.size() >= options_.queue_capacity) {
            ++stats_.rejected;
            ++stats_.shed_queue_full;
            RECLOUD_COUNTER_INC("service.rejected");
            RECLOUD_COUNTER_INC("service.shed.queue_full");
            resolve_now(request_status::rejected, "queue is full");
            return future;
        }
        if (options_.scheduling == scheduling_policy::edf &&
            pending.has_deadline && options_.min_service_grant.count() > 0) {
            // Unmeetable-at-admission bound (DESIGN.md §13): every queued
            // request EDF-ordered ahead of this one is owed at least
            // min_service_grant of search time first, spread across the
            // shard's workers — if even that optimistic start leaves less
            // than one grant before the deadline, running it would only
            // burn capacity the on-time requests need.
            const std::size_t workers =
                std::max<std::size_t>(1, options_.workers);
            std::size_t ahead = 0;
            for (const pending_request& queued : sh.queue) {
                if (edf_before(queued, pending)) {
                    ++ahead;
                }
            }
            const monotonic_clock::time_point earliest_finish =
                pending.admitted_at +
                options_.min_service_grant * ((ahead / workers) + 1);
            if (earliest_finish > pending.deadline_at) {
                ++stats_.rejected;
                ++stats_.shed_unmeetable;
                RECLOUD_COUNTER_INC("service.rejected");
                RECLOUD_COUNTER_INC("service.deadline.shed_unmeetable");
                resolve_now(request_status::rejected,
                            "deadline provably unmeetable at admission");
                return future;
            }
        }
        // Snapshot semantics: the request keeps the scenario it was admitted
        // with, even if the name is re-registered later.
        pending.scenario = it->second;
        ++tenant_in_flight_[pending.request.tenant];
        sh.queue.push_back(std::move(pending));
        ++stats_.submitted;
        RECLOUD_COUNTER_INC("service.submitted");
        const std::size_t depth = sh.queue.size();
        sh.peak = std::max(sh.peak, depth);
        stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, depth);
        if (sh.gauges_registered) {
            auto& registry = obs::metrics_registry::global();
            registry.set(sh.depth_gauge, depth);
            registry.set(sh.peak_gauge, sh.peak);
        }
    }
    sh.work_available.notify_one();
    return future;
}

void deployment_service::worker_loop(shard& sh) {
    const bool edf = options_.scheduling == scheduling_policy::edf;
    for (;;) {
        pending_request pending;
        {
            std::unique_lock<std::mutex> lock{sh.mutex};
            sh.work_available.wait(lock, [this, &sh] {
                return shutting_down_.load(std::memory_order_relaxed) ||
                       !sh.queue.empty();
            });
            if (sh.queue.empty()) {
                return;  // shutting down and drained
            }
            auto it = sh.queue.begin();
            if (edf) {
                it = std::min_element(sh.queue.begin(), sh.queue.end(),
                                      &deployment_service::edf_before);
            }
            pending = std::move(*it);
            sh.queue.erase(it);
            if (sh.gauges_registered) {
                obs::metrics_registry::global().set(sh.depth_gauge,
                                                    sh.queue.size());
            }
        }
        const monotonic_clock::time_point dequeued_at = monotonic_clock::now();
        const auto queue_wait =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                dequeued_at - pending.admitted_at);

        // Dequeue-time shed: a deadline that passed while the request sat
        // in the queue cannot be met by any search, so don't start one.
        if (edf && pending.has_deadline && dequeued_at >= pending.deadline_at) {
            service_response response;
            response.status = request_status::rejected;
            response.request_id = pending.id;
            response.scenario = pending.request.scenario;
            response.error = "deadline expired before the search started";
            response.queue_wait_ns = queue_wait;
            RECLOUD_HIST_OBSERVE("service.latency.queue_wait_ns",
                                 static_cast<std::uint64_t>(queue_wait.count()));
            {
                const std::lock_guard<std::mutex> lock{mutex_};
                ++stats_.rejected;
                ++stats_.shed_unmeetable;
                RECLOUD_COUNTER_INC("service.rejected");
                RECLOUD_COUNTER_INC("service.deadline.shed_unmeetable");
                const auto in_flight =
                    tenant_in_flight_.find(pending.request.tenant);
                if (in_flight != tenant_in_flight_.end() &&
                    --in_flight->second == 0) {
                    tenant_in_flight_.erase(in_flight);
                }
            }
            pending.promise.set_value(std::move(response));
            continue;
        }

        // Arm the request's lifecycle token: the search must yield by the
        // deadline minus the headroom reserved for response assembly.
        run_budget_ptr budget;
        if (edf && pending.has_deadline) {
            budget = std::make_shared<run_budget>();
            budget->set_deadline(pending.deadline_at -
                                 options_.deadline_headroom);
        }

        service_response response = run(pending, budget);
        const monotonic_clock::time_point finished_at = monotonic_clock::now();
        response.queue_wait_ns = queue_wait;
        response.search_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(finished_at -
                                                                 dequeued_at);
        RECLOUD_HIST_OBSERVE("service.latency.queue_wait_ns",
                             static_cast<std::uint64_t>(queue_wait.count()));
        RECLOUD_HIST_OBSERVE(
            "service.latency.search_ns",
            static_cast<std::uint64_t>(response.search_ns.count()));
        if (pending.has_deadline) {
            response.deadline_met = finished_at <= pending.deadline_at;
        }
        const bool was_preempted =
            response.status == request_status::completed &&
            response.result.outcome == search_outcome::deadline_exceeded;
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            if (response.status == request_status::completed) {
                ++stats_.completed;
                RECLOUD_COUNTER_INC("service.completed");
            } else {
                ++stats_.failed;
                RECLOUD_COUNTER_INC("service.failed");
            }
            if (pending.has_deadline) {
                if (response.deadline_met) {
                    ++stats_.deadline_met;
                    RECLOUD_COUNTER_INC("service.deadline.met");
                } else {
                    ++stats_.deadline_missed;
                    RECLOUD_COUNTER_INC("service.deadline.missed");
                }
            }
            if (was_preempted) {
                ++stats_.preempted;
                RECLOUD_COUNTER_INC("service.deadline.preempted");
            }
            const auto in_flight = tenant_in_flight_.find(pending.request.tenant);
            if (in_flight != tenant_in_flight_.end() && --in_flight->second == 0) {
                tenant_in_flight_.erase(in_flight);
            }
        }
        pending.promise.set_value(std::move(response));
    }
}

service_response deployment_service::run(pending_request& pending,
                                         const run_budget_ptr& budget) const {
    RECLOUD_SPAN("service.request");
    service_response response;
    response.request_id = pending.id;
    response.scenario = pending.request.scenario;

    recloud_options options = options_.defaults;
    options.seed = pending.request.seed;
    if (pending.request.search_chains) {
        options.search_chains = *pending.request.search_chains;
    }
    if (pending.request.max_iterations) {
        options.max_iterations = *pending.request.max_iterations;
    }
    if (options_.defaults.observer) {
        // Stamp every event of this request's search with the request id;
        // the shared downstream observer must cope with several requests'
        // workers calling it concurrently.
        options.observer = [id = pending.id,
                            &observer = options_.defaults.observer](
                               const obs::search_iteration_event& e) {
            obs::search_iteration_event event = e;
            event.request_id = id;
            observer(event);
        };
    }

    try {
        re_cloud instance{pending.scenario, options};
        deployment_request request;
        request.app = pending.request.app;
        request.desired_reliability = pending.request.desired_reliability;
        request.max_search_time = pending.request.max_search_time;
        request.budget = budget;
        response.result = instance.find_deployment(request);
        response.status = request_status::completed;
    } catch (const std::exception& error) {
        response.status = request_status::failed;
        response.error = error.what();
    }
    return response;
}

void deployment_service::shutdown() {
    // The admin server goes first, OUTSIDE the service mutex: stop() joins
    // the server thread, and a /status request in flight on that thread
    // needs the service mutex to finish.
    if (admin_ != nullptr) {
        admin_->stop();
    }
    // Idempotent: only the caller that flips the flag joins the workers;
    // later calls (including the destructor after an explicit shutdown)
    // see joined-and-cleared shards and return immediately.
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        bool all_joined = true;
        for (const std::unique_ptr<shard>& sh : shards_) {
            all_joined = all_joined && sh->workers.empty();
        }
        if (shutting_down_.load(std::memory_order_relaxed) && all_joined) {
            return;
        }
        shutting_down_.store(true, std::memory_order_relaxed);
    }
    for (const std::unique_ptr<shard>& sh : shards_) {
        // Take (and drop) the shard mutex before notifying: a worker that
        // checked the predicate before the flag flipped must be parked on
        // the CV before this notify fires, or it would sleep forever — we
        // only notify once.
        { const std::lock_guard<std::mutex> shard_lock{sh->mutex}; }
        sh->work_available.notify_all();
    }
    // Joining drains every queue; each request's re_cloud (and any child
    // recloud_worker fleet it spawned for the socket transport) dies with
    // its search, so no child processes survive this point.
    for (const std::unique_ptr<shard>& sh : shards_) {
        for (std::thread& worker : sh->workers) {
            if (worker.joinable()) {
                worker.join();
            }
        }
        sh->workers.clear();
    }
}

service_stats deployment_service::stats() const {
    service_stats out;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        out = stats_;
    }
    // Per-shard views are taken shard by shard after the service mutex is
    // released (lock order: never service mutex_ inside a shard mutex, and
    // no nesting needed here).
    out.shard_queue_depth.reserve(shards_.size());
    out.shard_queue_peak.reserve(shards_.size());
    for (const std::unique_ptr<shard>& sh : shards_) {
        const std::lock_guard<std::mutex> lock{sh->mutex};
        out.shard_queue_depth.push_back(sh->queue.size());
        out.shard_queue_peak.push_back(sh->peak);
    }
    return out;
}

std::string deployment_service::status_json() const {
    const service_stats snapshot = stats();
    std::string out = "{\"status\":";
    out += shutting_down_.load(std::memory_order_relaxed) ? "\"shutting_down\""
                                                          : "\"ok\"";
    out += ",\"shards\":" + std::to_string(shards_.size());
    out += ",\"workers_per_shard\":" +
           std::to_string(std::max<std::size_t>(1, options_.workers));
    out += ",\"queue_capacity\":" + std::to_string(options_.queue_capacity);
    out += ",\"tenant_quota\":" + std::to_string(options_.tenant_quota);
    out += ",\"scheduling\":\"";
    out += to_string(options_.scheduling);
    out += "\",\"min_service_grant_ns\":" +
           std::to_string(options_.min_service_grant.count());
    out += ",\"deadline_headroom_ns\":" +
           std::to_string(options_.deadline_headroom.count());
    out += ",\"stats\":" + to_json(snapshot);
    out += ",\"tenants_in_flight\":{";
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        bool first = true;
        for (const auto& [tenant, in_flight] : tenant_in_flight_) {
            if (!first) {
                out.push_back(',');
            }
            first = false;
            out += json_escape(tenant) + ":" + std::to_string(in_flight);
        }
    }
    out += "}";
    // Fleet liveness as last published into the registry (re_cloud's
    // telemetry() harvest updates these; 0 until then).
    const obs::telemetry_snapshot metrics =
        obs::metrics_registry::global().snapshot();
    out += ",\"fleet\":{\"worker_respawns\":" +
           std::to_string(metrics.value("engine.stats.worker_respawns")) +
           ",\"trace_dropped\":" + std::to_string(metrics.value("trace.dropped")) +
           "}";
    out += "}\n";
    return out;
}

std::size_t deployment_service::queue_depth() const {
    std::size_t depth = 0;
    for (const std::unique_ptr<shard>& sh : shards_) {
        const std::lock_guard<std::mutex> lock{sh->mutex};
        depth += sh->queue.size();
    }
    return depth;
}

std::size_t deployment_service::tenant_in_flight(const std::string& tenant) const {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = tenant_in_flight_.find(tenant);
    return it != tenant_in_flight_.end() ? it->second : 0;
}

}  // namespace recloud
