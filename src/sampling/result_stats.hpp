// Accumulation of per-round route-and-check outcomes into the paper's
// reliability score and error bound (Eqs. 1-3), plus planning helpers.
#pragma once

#include <cstddef>

#include "util/stats.hpp"

namespace recloud {

/// Accumulates the result list L = {d_1..d_n} (d_i = 1 iff the plan was
/// reliable in round i) without storing it.
class result_accumulator {
public:
    void add(bool reliable) noexcept {
        ++rounds_;
        if (reliable) {
            ++reliable_;
        }
    }

    /// Merges results computed elsewhere (parallel workers).
    void merge(std::size_t reliable_rounds, std::size_t total_rounds) noexcept {
        reliable_ += reliable_rounds;
        rounds_ += total_rounds;
    }

    [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
    [[nodiscard]] std::size_t reliable_rounds() const noexcept { return reliable_; }

    /// Eqs. 1-3: R, V = Var[L]/n, CIW95 = 4*sqrt(V).
    [[nodiscard]] assessment_stats stats() const noexcept {
        return make_assessment_stats(reliable_, rounds_);
    }

private:
    std::size_t rounds_ = 0;
    std::size_t reliable_ = 0;
};

/// Ceiling on what rounds_for_target_ciw may plan. Far beyond any runnable
/// assessment, but small enough that the planning arithmetic (doubles) maps
/// back into size_t without overflow; 2^62 is exactly representable as a
/// double, so the clamp comparison is itself exact.
inline constexpr std::size_t max_ciw_planning_rounds = std::size_t{1} << 62;

/// Estimates how many rounds are needed so that CIW95 <= target, given an
/// anticipated reliability level (worst case at R=0.5). From Eq. 3:
/// n >= 16 * R(1-R) / target^2, clamped to max_ciw_planning_rounds. For
/// anticipated reliability exactly 0 or 1 (zero anticipated variance) it
/// plans ceil(4/target) rounds — the smallest sample whose CIW could still
/// meet the target if one round contradicts the anticipation.
[[nodiscard]] std::size_t rounds_for_target_ciw(double target_ciw,
                                                double anticipated_reliability);

}  // namespace recloud
