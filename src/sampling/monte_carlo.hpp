// Monte-Carlo failure-state sampler — the strawman design of §3.2.1 and what
// the state-of-the-art INDaaS system uses. One uniform draw per component
// per round: r < p  =>  'failed'. Kept as the baseline for Figure 7 and as
// the ground-truth reference in sampler property tests.
#pragma once

#include <vector>

#include "sampling/sampler.hpp"
#include "util/rng.hpp"

namespace recloud {

class monte_carlo_sampler final : public failure_sampler {
public:
    /// Copies the probability vector (the sampler outlives registry edits).
    monte_carlo_sampler(std::span<const double> probabilities, std::uint64_t seed);

    void next_round(std::vector<component_id>& failed) override;
    void reset(std::uint64_t seed) override;
    [[nodiscard]] std::unique_ptr<failure_sampler> fork(
        std::uint64_t stream_id) const override;
    [[nodiscard]] const char* name() const noexcept override { return "monte-carlo"; }

private:
    std::vector<double> probabilities_;
    std::uint64_t seed_;
    rng random_;
};

}  // namespace recloud
