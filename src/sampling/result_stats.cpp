#include "sampling/result_stats.hpp"

#include <cmath>
#include <stdexcept>

namespace recloud {

std::size_t rounds_for_target_ciw(double target_ciw,
                                  double anticipated_reliability) {
    if (target_ciw <= 0.0) {
        throw std::invalid_argument{"rounds_for_target_ciw: target must be > 0"};
    }
    const double r = clamp(anticipated_reliability, 0.0, 1.0);
    const double var_l = r * (1.0 - r);
    if (var_l == 0.0) {
        return 1;
    }
    // CIW = 4*sqrt(Var[L]/n) <= target  =>  n >= 16*Var[L]/target^2.
    return static_cast<std::size_t>(
        std::ceil(16.0 * var_l / (target_ciw * target_ciw)));
}

}  // namespace recloud
