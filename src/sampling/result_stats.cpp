#include "sampling/result_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace recloud {

std::size_t rounds_for_target_ciw(double target_ciw,
                                  double anticipated_reliability) {
    if (!(target_ciw > 0.0)) {  // also rejects NaN
        throw std::invalid_argument{"rounds_for_target_ciw: target must be > 0"};
    }
    // The cap keeps the double -> size_t cast in range: for a tiny target
    // 16*Var[L]/target^2 can exceed even size_t's range, and casting such a
    // double is undefined behaviour. Comparisons stay in double, where the
    // cap is exactly representable.
    const double cap = static_cast<double>(max_ciw_planning_rounds);
    const double r = clamp(anticipated_reliability, 0.0, 1.0);
    const double var_l = r * (1.0 - r);
    double n;
    if (var_l == 0.0) {
        // Anticipating certainty (R exactly 0 or 1): the formula degenerates
        // to 0 rounds, and answering "1" makes the planned sample useless.
        // If even one of n rounds disagrees with the anticipated outcome,
        // Var[L] ~= 1/n and CIW95 = 4*sqrt(Var[L]/n) ~= 4/n — so plan
        // n >= 4/target, the smallest sample whose error bound could still
        // meet the target under a single surprise.
        n = std::ceil(4.0 / target_ciw);
    } else {
        // CIW = 4*sqrt(Var[L]/n) <= target  =>  n >= 16*Var[L]/target^2.
        n = std::ceil(16.0 * var_l / (target_ciw * target_ciw));
    }
    if (!(n < cap)) {
        return max_ciw_planning_rounds;
    }
    return std::max<std::size_t>(static_cast<std::size_t>(n), 1);
}

}  // namespace recloud
