#include "sampling/extended_dagger.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {

extended_dagger_sampler::extended_dagger_sampler(
    std::span<const double> probabilities, std::uint64_t seed)
    : seed_(seed), random_(seed) {
    plans_.reserve(probabilities.size());
    for (component_id id = 0; id < probabilities.size(); ++id) {
        plans_.push_back(make_dagger_plan(probabilities[id]));
        if (plans_.back().cycle_length > 0) {
            can_fail_.push_back(id);
            block_length_ = std::max(block_length_, plans_.back().cycle_length);
        }
    }
    buckets_.resize(block_length_);
    cursor_ = block_length_;  // force block generation on first next_round
}

void extended_dagger_sampler::generate_block() {
    RECLOUD_SPAN("sample.dagger_block");
    for (auto& bucket : buckets_) {
        bucket.clear();
    }
    for (const component_id id : can_fail_) {
        const dagger_plan& plan = plans_[id];
        // Concatenate this component's dagger cycles across the block; the
        // final cycle is truncated at the block boundary (cycle reset).
        for (std::uint32_t cycle_start = 0; cycle_start < block_length_;
             cycle_start += plan.cycle_length) {
            const auto slot = dagger_slot(plan, random_.uniform());
            if (!slot) {
                continue;
            }
            const std::uint32_t round = cycle_start + *slot;
            if (round < block_length_) {
                buckets_[round].push_back(id);
            }
            // else: the truncated cycle placed the failure beyond the reset
            // line — a discarded round (Figure 4).
        }
    }
    cursor_ = 0;
}

void extended_dagger_sampler::next_round(std::vector<component_id>& failed) {
    if (cursor_ >= block_length_) {
        generate_block();
    }
    const auto& bucket = buckets_[cursor_++];
    failed.assign(bucket.begin(), bucket.end());
    RECLOUD_COUNTER_INC("sample.rounds");
    RECLOUD_HIST_OBSERVE("sample.failed_size", failed.size());
}

void extended_dagger_sampler::reset(std::uint64_t seed) {
    seed_ = seed;
    random_ = rng{seed};
    cursor_ = block_length_;  // discard the current block
}

std::unique_ptr<failure_sampler> extended_dagger_sampler::fork(
    std::uint64_t stream_id) const {
    // Recover the probability vector from the per-component plans (p == 0
    // entries are represented by cycle_length 0 and survive the roundtrip).
    std::vector<double> probabilities;
    probabilities.reserve(plans_.size());
    for (const dagger_plan& plan : plans_) {
        probabilities.push_back(plan.probability);
    }
    return std::make_unique<extended_dagger_sampler>(
        probabilities, substream_seed(seed_, stream_id));
}

}  // namespace recloud
