#include "sampling/dagger.hpp"

#include <cmath>

namespace recloud {

dagger_plan make_dagger_plan(double p) noexcept {
    dagger_plan plan;
    plan.probability = p;
    if (p <= 0.0) {
        plan.cycle_length = 0;
    } else if (p >= 1.0) {
        plan.cycle_length = 1;
    } else {
        plan.cycle_length = static_cast<std::uint32_t>(std::floor(1.0 / p));
    }
    return plan;
}

std::optional<std::uint32_t> dagger_slot(const dagger_plan& plan, double r) noexcept {
    if (plan.cycle_length == 0) {
        return std::nullopt;
    }
    // r in the i-th subinterval [i*p, (i+1)*p)  <=>  floor(r/p) == i < s.
    const auto slot = static_cast<std::uint32_t>(r / plan.probability);
    if (slot < plan.cycle_length) {
        return slot;
    }
    return std::nullopt;  // remainder section: alive all cycle
}

}  // namespace recloud
