#include "sampling/monte_carlo.hpp"

#include "obs/metrics.hpp"

namespace recloud {

monte_carlo_sampler::monte_carlo_sampler(std::span<const double> probabilities,
                                         std::uint64_t seed)
    : probabilities_(probabilities.begin(), probabilities.end()),
      seed_(seed),
      random_(seed) {}

void monte_carlo_sampler::next_round(std::vector<component_id>& failed) {
    failed.clear();
    // One individual failure-state generation per component per round —
    // the C x X cost the paper calls out as prohibitive at scale.
    for (component_id id = 0; id < probabilities_.size(); ++id) {
        const double p = probabilities_[id];
        if (p > 0.0 && random_.uniform() < p) {
            failed.push_back(id);
        }
    }
    RECLOUD_COUNTER_INC("sample.rounds");
    RECLOUD_HIST_OBSERVE("sample.failed_size", failed.size());
}

void monte_carlo_sampler::reset(std::uint64_t seed) {
    seed_ = seed;
    random_ = rng{seed};
}

std::unique_ptr<failure_sampler> monte_carlo_sampler::fork(
    std::uint64_t stream_id) const {
    return std::make_unique<monte_carlo_sampler>(probabilities_,
                                                 substream_seed(seed_, stream_id));
}

}  // namespace recloud
