// Failure-state sampling interface (paper §3.2, Table 1).
//
// A sampler streams rounds: each call to next_round() yields the set of
// components that are 'failed' in that round, drawn according to the
// per-component failure probabilities. Streaming a sparse failed-set —
// rather than materializing the dense C x X table of Table 1 — is what
// makes large data centers tractable: with per-component probabilities
// around 1%, a round touches ~1% of components.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/component_registry.hpp"
#include "util/rng.hpp"

namespace recloud {

class failure_sampler {
public:
    virtual ~failure_sampler() = default;

    /// Clears `failed` and fills it with the ids of the components that are
    /// failed in the next round. Ids are unique but not necessarily sorted.
    virtual void next_round(std::vector<component_id>& failed) = 0;

    /// Restarts the stream with a new seed.
    virtual void reset(std::uint64_t seed) = 0;

    /// Forks an independent sampler of the same kind whose stream is derived
    /// ONLY from this sampler's base seed (the one given at construction or
    /// last reset) and `stream_id` — never from how far the parent stream has
    /// been consumed. Equal (base seed, stream_id) pairs always yield the
    /// identical stream, which is what lets the parallel assessment backend
    /// assign round batches to substreams by batch index and stay
    /// bit-deterministic for any worker count. Returns nullptr when the
    /// sampler cannot provide substreams (e.g. scripted replays).
    [[nodiscard]] virtual std::unique_ptr<failure_sampler> fork(
        std::uint64_t stream_id) const {
        (void)stream_id;
        return nullptr;
    }

    [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Derives the seed of substream `stream_id` from a base seed. Two splitmix64
/// steps keep nearby stream ids (0, 1, 2, ...) well decorrelated.
[[nodiscard]] constexpr std::uint64_t substream_seed(std::uint64_t base_seed,
                                                     std::uint64_t stream_id) noexcept {
    std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    (void)splitmix64_next(state);
    return splitmix64_next(state);
}

}  // namespace recloud
