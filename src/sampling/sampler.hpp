// Failure-state sampling interface (paper §3.2, Table 1).
//
// A sampler streams rounds: each call to next_round() yields the set of
// components that are 'failed' in that round, drawn according to the
// per-component failure probabilities. Streaming a sparse failed-set —
// rather than materializing the dense C x X table of Table 1 — is what
// makes large data centers tractable: with per-component probabilities
// around 1%, a round touches ~1% of components.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/component_registry.hpp"

namespace recloud {

class failure_sampler {
public:
    virtual ~failure_sampler() = default;

    /// Clears `failed` and fills it with the ids of the components that are
    /// failed in the next round. Ids are unique but not necessarily sorted.
    virtual void next_round(std::vector<component_id>& failed) = 0;

    /// Restarts the stream with a new seed.
    virtual void reset(std::uint64_t seed) = 0;

    [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace recloud
