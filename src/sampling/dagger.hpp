// Dagger sampling primitives (paper §3.2.2, Figures 3-4; Kumamoto et al.).
//
// For a component with failure probability p, let s = floor(1/p). The unit
// interval splits into s subintervals of length p plus a remainder. ONE
// uniform draw r decides the component's failure states for s consecutive
// rounds (a "dagger cycle"): if r lands in the i-th subinterval the
// component fails exactly in round i of the cycle, otherwise it is alive
// throughout. The expected failure ratio remains exactly p, and the
// induced negative correlation within a cycle is the source of dagger
// sampling's variance reduction.
#pragma once

#include <cstdint>
#include <optional>

namespace recloud {

/// Cycle parameters for one component.
struct dagger_plan {
    double probability = 0.0;
    std::uint32_t cycle_length = 0;  ///< s = floor(1/p); 0 means "never fails"
};

/// Computes s = floor(1/p). p == 0 yields cycle_length 0 ("never fails");
/// p >= 1 yields cycle_length 1 (fails every round).
[[nodiscard]] dagger_plan make_dagger_plan(double p) noexcept;

/// Maps one uniform draw r in [0,1) to the failing round within a cycle:
/// returns the slot index in [0, s) if r fell into a subinterval, or
/// nullopt if it fell into the remainder (alive for the whole cycle).
[[nodiscard]] std::optional<std::uint32_t> dagger_slot(const dagger_plan& plan,
                                                       double r) noexcept;

}  // namespace recloud
