#include "sampling/antithetic.hpp"

#include "obs/metrics.hpp"

namespace recloud {

antithetic_sampler::antithetic_sampler(std::span<const double> probabilities,
                                       std::uint64_t seed)
    : probabilities_(probabilities.begin(), probabilities.end()),
      seed_(seed),
      random_(seed) {}

void antithetic_sampler::next_round(std::vector<component_id>& failed) {
    RECLOUD_COUNTER_INC("sample.rounds");
    if (pending_) {
        failed.assign(mirror_.begin(), mirror_.end());
        pending_ = false;
        RECLOUD_HIST_OBSERVE("sample.failed_size", failed.size());
        return;
    }
    failed.clear();
    mirror_.clear();
    for (component_id id = 0; id < probabilities_.size(); ++id) {
        const double p = probabilities_[id];
        if (p <= 0.0) {
            continue;
        }
        const double r = random_.uniform();
        if (r < p) {
            failed.push_back(id);
        }
        if (r > 1.0 - p) {
            // The mirrored draw 1-r falls below p.
            mirror_.push_back(id);
        }
    }
    pending_ = true;
    RECLOUD_HIST_OBSERVE("sample.failed_size", failed.size());
}

void antithetic_sampler::reset(std::uint64_t seed) {
    seed_ = seed;
    random_ = rng{seed};
    pending_ = false;
}

std::unique_ptr<failure_sampler> antithetic_sampler::fork(
    std::uint64_t stream_id) const {
    return std::make_unique<antithetic_sampler>(probabilities_,
                                                substream_seed(seed_, stream_id));
}

}  // namespace recloud
