// Extended dagger sampling (paper §3.2.2, Figure 4; Rios et al.).
//
// Components have different failure probabilities, hence different dagger
// cycle lengths. The extension generates each component's cycles
// independently but resets ALL cycles at the end of the longest cycle
// s_max: rounds are produced in blocks of s_max; within a block a
// component's consecutive cycles are concatenated and the last one is
// truncated at the block boundary — a failure that a truncated cycle would
// place beyond the boundary is discarded (Figure 4's "discarded round").
//
// Cost per block: sum_i ceil(s_max / s_i) ~ s_max * sum_i p_i random draws
// for s_max rounds, i.e. ~sum_i p_i draws per round — versus C draws per
// round for Monte-Carlo. With 1% failure probabilities that is the
// two-orders-of-magnitude gap Figure 7 shows.
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/dagger.hpp"
#include "sampling/sampler.hpp"
#include "util/rng.hpp"

namespace recloud {

class extended_dagger_sampler final : public failure_sampler {
public:
    extended_dagger_sampler(std::span<const double> probabilities,
                            std::uint64_t seed);

    void next_round(std::vector<component_id>& failed) override;
    void reset(std::uint64_t seed) override;
    [[nodiscard]] std::unique_ptr<failure_sampler> fork(
        std::uint64_t stream_id) const override;
    [[nodiscard]] const char* name() const noexcept override {
        return "extended-dagger";
    }

    /// Block length = longest dagger cycle s_max across components (at
    /// least 1). Exposed for tests.
    [[nodiscard]] std::uint32_t block_length() const noexcept { return block_length_; }

private:
    void generate_block();

    std::vector<dagger_plan> plans_;       ///< per component (never-failing skipped at gen time)
    std::vector<component_id> can_fail_;   ///< components with p > 0
    std::uint32_t block_length_ = 1;
    std::uint64_t seed_;
    rng random_;

    // Current block: bucket b holds the components failed in block round b.
    std::vector<std::vector<component_id>> buckets_;
    std::uint32_t cursor_ = 0;  ///< next round within the block
};

}  // namespace recloud
