// Antithetic-variates Monte-Carlo sampler — an extension beyond the paper.
//
// Classic variance-reduction alternative to dagger sampling: rounds come in
// pairs driven by mirrored uniforms (r and 1-r). Within a pair a component
// fails in the first round iff r < p and in the second iff r > 1-p, which
// are negatively correlated events; the per-round failure probability stays
// exactly p. Gives a second point of comparison for the variance-reduction
// ablation (bench_ablation_sampling) and a fallback for workloads where
// dagger cycles would be short (large p).
#pragma once

#include <vector>

#include "sampling/sampler.hpp"
#include "util/rng.hpp"

namespace recloud {

class antithetic_sampler final : public failure_sampler {
public:
    antithetic_sampler(std::span<const double> probabilities, std::uint64_t seed);

    void next_round(std::vector<component_id>& failed) override;
    void reset(std::uint64_t seed) override;
    [[nodiscard]] std::unique_ptr<failure_sampler> fork(
        std::uint64_t stream_id) const override;
    [[nodiscard]] const char* name() const noexcept override { return "antithetic"; }

private:
    std::vector<double> probabilities_;
    std::uint64_t seed_;
    rng random_;
    /// Failed set of the buffered mirror round (valid when pending_).
    std::vector<component_id> mirror_;
    bool pending_ = false;
};

}  // namespace recloud
