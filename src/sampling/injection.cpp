#include "sampling/injection.hpp"

#include <algorithm>
#include <stdexcept>

namespace recloud {

scripted_sampler::scripted_sampler(std::vector<std::vector<component_id>> rounds)
    : rounds_(std::move(rounds)) {
    if (rounds_.empty()) {
        throw std::invalid_argument{"scripted_sampler: empty script"};
    }
}

void scripted_sampler::next_round(std::vector<component_id>& failed) {
    const auto& round = rounds_[cursor_];
    failed.assign(round.begin(), round.end());
    cursor_ = (cursor_ + 1) % rounds_.size();
}

void scripted_sampler::reset(std::uint64_t /*seed*/) {
    cursor_ = 0;
}

forced_failure_sampler::forced_failure_sampler(failure_sampler& inner,
                                               std::vector<component_id> forced)
    : inner_(&inner), forced_(std::move(forced)) {
    std::sort(forced_.begin(), forced_.end());
    forced_.erase(std::unique(forced_.begin(), forced_.end()), forced_.end());
}

void forced_failure_sampler::next_round(std::vector<component_id>& failed) {
    inner_->next_round(failed);
    for (const component_id id : forced_) {
        if (std::find(failed.begin(), failed.end(), id) == failed.end()) {
            failed.push_back(id);
        }
    }
}

void forced_failure_sampler::reset(std::uint64_t seed) {
    inner_->reset(seed);
}

}  // namespace recloud
