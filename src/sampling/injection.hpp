// Fault-injection samplers (inspired by the FIFL framework the paper cites
// in §2.1 for simulating software failures via fault injections).
//
// * scripted_sampler replays an explicit failure schedule — deterministic
//   regression tests, incident post-mortems ("replay last Tuesday"), and
//   golden-file comparisons.
// * forced_failure_sampler wraps any sampler and adds a fixed set of
//   components to every round's failed set — the conditional distribution
//   "given that these components are down", which turns the assessor into
//   a blast-radius analyzer (see assess/criticality.hpp).
#pragma once

#include <vector>

#include "sampling/sampler.hpp"

namespace recloud {

/// Replays a fixed schedule; wraps around at the end so any number of
/// rounds can be drawn.
class scripted_sampler final : public failure_sampler {
public:
    /// `rounds` must be non-empty.
    explicit scripted_sampler(std::vector<std::vector<component_id>> rounds);

    void next_round(std::vector<component_id>& failed) override;
    /// Restarts the script from round 0 (the seed is ignored — the script
    /// IS the randomness).
    void reset(std::uint64_t seed) override;
    [[nodiscard]] const char* name() const noexcept override { return "scripted"; }

    [[nodiscard]] std::size_t script_length() const noexcept {
        return rounds_.size();
    }

private:
    std::vector<std::vector<component_id>> rounds_;
    std::size_t cursor_ = 0;
};

/// Decorates an inner sampler: every round additionally contains `forced`
/// (deduplicated against the inner draw). The inner sampler must outlive
/// the decorator.
class forced_failure_sampler final : public failure_sampler {
public:
    forced_failure_sampler(failure_sampler& inner,
                           std::vector<component_id> forced);

    void next_round(std::vector<component_id>& failed) override;
    void reset(std::uint64_t seed) override;
    [[nodiscard]] const char* name() const noexcept override {
        return "forced-failure";
    }

    [[nodiscard]] std::span<const component_id> forced() const noexcept {
        return forced_;
    }

private:
    failure_sampler* inner_;
    std::vector<component_id> forced_;  ///< sorted, unique
};

}  // namespace recloud
