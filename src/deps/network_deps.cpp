#include "deps/network_deps.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace recloud {

network_services deploy_network_services(const built_topology& topo,
                                         component_registry& registry,
                                         const network_services_options& options) {
    if (options.service_categories < 1 || options.instances_per_category < 1) {
        throw std::invalid_argument{"deploy_network_services: invalid options"};
    }
    network_services result;
    result.services.resize(options.service_categories);
    for (int c = 0; c < options.service_categories; ++c) {
        for (int i = 0; i < options.instances_per_category; ++i) {
            result.services[c].push_back(registry.add(
                component_kind::network_service,
                "svc" + std::to_string(c) + "-" + std::to_string(i),
                options.service_failure_probability));
        }
    }
    result.assignment.assign(topo.graph.node_count(), {});
    std::size_t cursor = 0;
    for (const node_id host : topo.hosts) {
        auto& per_category = result.assignment[host];
        per_category.resize(options.service_categories, -1);
        for (int c = 0; c < options.service_categories; ++c) {
            per_category[c] =
                static_cast<int>((cursor + c) % options.instances_per_category);
        }
        ++cursor;
    }
    return result;
}

std::vector<flow_record> synthesize_flows(const built_topology& topo,
                                          const network_services& services,
                                          const flow_synthesis_options& options) {
    rng random{options.seed};
    std::vector<flow_record> flows;

    // Real dependency traffic: every (host, assigned service) pair emits
    // flows_per_dependency records.
    for (const node_id host : topo.hosts) {
        const auto& per_category = services.assignment[host];
        for (std::size_t c = 0; c < per_category.size(); ++c) {
            const component_id service = services.services[c][per_category[c]];
            for (int f = 0; f < options.flows_per_dependency; ++f) {
                flows.push_back(flow_record{host, service});
            }
        }
    }
    // Background noise: one-off flows to random services from random hosts
    // (what trips up naive traffic-based dependency discovery).
    for (int n = 0; n < options.noise_flows; ++n) {
        const node_id host = topo.hosts[random.uniform_below(topo.hosts.size())];
        const auto& category =
            services.services[random.uniform_below(services.services.size())];
        flows.push_back(
            flow_record{host, category[random.uniform_below(category.size())]});
    }
    // A passive monitor sees traffic interleaved, not grouped.
    for (std::size_t i = flows.size(); i > 1; --i) {
        std::swap(flows[i - 1], flows[random.uniform_below(i)]);
    }
    return flows;
}

std::vector<mined_dependency> mine_dependencies(
    const std::vector<flow_record>& flows, int min_flows) {
    if (min_flows < 1) {
        throw std::invalid_argument{"mine_dependencies: min_flows must be >= 1"};
    }
    std::map<std::pair<node_id, component_id>, int> counts;
    for (const flow_record& flow : flows) {
        ++counts[{flow.source_host, flow.service}];
    }
    std::vector<mined_dependency> mined;
    for (const auto& [pair, count] : counts) {
        if (count >= min_flows) {
            mined.push_back(mined_dependency{pair.first, pair.second, count});
        }
    }
    return mined;
}

void attach_mined_dependencies(const std::vector<mined_dependency>& mined,
                               fault_tree_forest& forest) {
    for (const mined_dependency& dep : mined) {
        forest.attach(dep.host, forest.add_leaf(dep.service));
    }
}

}  // namespace recloud
