#include "deps/hardware_inventory.hpp"

#include <array>
#include <stdexcept>

namespace recloud {
namespace {

constexpr std::array<const char*, 4> cpu_catalog = {
    "xeon-4c-2.26", "xeon-8c-2.60", "epyc-16c-2.45", "xeon-12c-3.00"};
constexpr std::array<const char*, 3> mainboard_catalog = {
    "mb-rev-a", "mb-rev-b", "mb-rev-c"};

}  // namespace

hardware_inventory survey_hardware(const built_topology& topo,
                                   component_registry& registry,
                                   fault_tree_forest& forest,
                                   const hardware_inventory_options& options) {
    if (options.firmware_versions < 1) {
        throw std::invalid_argument{"survey_hardware: need >= 1 firmware version"};
    }
    rng random{options.seed};
    hardware_inventory inventory;
    inventory.firmware_components.reserve(options.firmware_versions);
    for (int v = 0; v < options.firmware_versions; ++v) {
        inventory.firmware_components.push_back(
            registry.add(component_kind::firmware, "firmware-v" + std::to_string(v),
                         options.firmware_failure_probability));
    }
    inventory.profiles.reserve(topo.hosts.size());
    for (const node_id host : topo.hosts) {
        host_hardware_profile profile;
        profile.host = host;
        profile.cpu_model = cpu_catalog[random.uniform_below(cpu_catalog.size())];
        profile.mainboard =
            mainboard_catalog[random.uniform_below(mainboard_catalog.size())];
        profile.firmware_version =
            static_cast<int>(random.uniform_below(options.firmware_versions));
        forest.attach(host, forest.add_leaf(inventory.firmware_components
                                                [profile.firmware_version]));
        inventory.profiles.push_back(std::move(profile));
    }
    return inventory;
}

}  // namespace recloud
