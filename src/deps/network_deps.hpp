// Network-service dependency source (simulating NSDMiner, §2.1).
//
// NSDMiner "can identify the network dependencies by passively monitoring
// and analyzing the network traffic". This module has two halves:
//
//   1. a *flow synthesizer* that, given a ground-truth assignment of hosts
//      to shared network services (DNS, auth, storage, ...), produces the
//      flow records a passive monitor would capture — real dependency flows
//      plus uniform background noise;
//   2. a *miner* that reconstructs host -> service dependencies from those
//      flows with a minimum-flow-count threshold, exactly the evidence
//      NSDMiner-class tools emit.
//
// The mined dependencies are then attached to the hosts' fault trees: if a
// service a host depends on fails, the host fails.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace recloud {

struct network_services_options {
    int service_categories = 2;       ///< e.g. DNS + auth
    int instances_per_category = 2;   ///< redundant service instances
    double service_failure_probability = 0.005;
    std::uint64_t seed = 11;
};

struct network_services {
    /// [category][instance] -> service component id.
    std::vector<std::vector<component_id>> services;
    /// Ground truth: per host (dense by node id), the service instance index
    /// used for each category (-1 for non-hosts).
    std::vector<std::vector<int>> assignment;
};

/// Registers the shared service components and assigns each host one
/// instance per category (round-robin ground truth).
[[nodiscard]] network_services deploy_network_services(
    const built_topology& topo, component_registry& registry,
    const network_services_options& options = {});

struct flow_record {
    node_id source_host = invalid_node;
    component_id service = invalid_node;
};

struct flow_synthesis_options {
    int flows_per_dependency = 20;  ///< traffic a real dependency generates
    int noise_flows = 50;           ///< total spurious one-off flows
    std::uint64_t seed = 13;
};

/// Produces the traffic a passive monitor would see.
[[nodiscard]] std::vector<flow_record> synthesize_flows(
    const built_topology& topo, const network_services& services,
    const flow_synthesis_options& options = {});

struct mined_dependency {
    node_id host = invalid_node;
    component_id service = invalid_node;
    int flow_count = 0;
};

/// NSDMiner-style inference: a host depends on a service if at least
/// `min_flows` flows between them were observed.
[[nodiscard]] std::vector<mined_dependency> mine_dependencies(
    const std::vector<flow_record>& flows, int min_flows);

/// Attaches each mined dependency as a fault-tree leaf on the host.
void attach_mined_dependencies(const std::vector<mined_dependency>& mined,
                               fault_tree_forest& forest);

}  // namespace recloud
