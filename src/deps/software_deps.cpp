#include "deps/software_deps.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "faults/cvss.hpp"

namespace recloud {
namespace {

/// Draws a plausible CVSS metrics vector for a synthetic package.
cvss_metrics random_cvss(rng& random) {
    cvss_metrics m;
    m.attack_vector = static_cast<cvss_attack_vector>(random.uniform_below(4));
    m.attack_complexity =
        static_cast<cvss_attack_complexity>(random.uniform_below(2));
    m.privileges_required =
        static_cast<cvss_privileges_required>(random.uniform_below(3));
    m.user_interaction =
        static_cast<cvss_user_interaction>(random.uniform_below(2));
    m.scope = static_cast<cvss_scope>(random.uniform_below(2));
    m.confidentiality = static_cast<cvss_impact>(random.uniform_below(3));
    m.integrity = static_cast<cvss_impact>(random.uniform_below(3));
    m.availability = static_cast<cvss_impact>(random.uniform_below(3));
    return m;
}

}  // namespace

software_catalog generate_software_catalog(
    component_registry& registry, const software_catalog_options& options) {
    if (options.packages < 1 || options.os_images < 1 || options.stacks < 1 ||
        options.top_level_packages_per_stack < 1) {
        throw std::invalid_argument{"generate_software_catalog: invalid options"};
    }
    rng random{options.seed};
    software_catalog catalog;
    catalog.packages.reserve(options.packages);
    catalog.depends_on.resize(options.packages);
    for (int p = 0; p < options.packages; ++p) {
        const double probability =
            probability_from_cvss(cvss_base_score(random_cvss(random)));
        catalog.packages.push_back(registry.add(
            component_kind::software_package, "pkg" + std::to_string(p),
            probability));
        if (p > 0) {
            // Depend on up to max_dependencies earlier packages (keeps the
            // dependency graph a DAG by construction, like real archives).
            const auto deps = random.uniform_below(
                static_cast<std::uint64_t>(options.max_dependencies_per_package) + 1);
            for (std::uint64_t d = 0; d < deps; ++d) {
                catalog.depends_on[p].push_back(
                    static_cast<std::uint32_t>(random.uniform_below(p)));
            }
            std::sort(catalog.depends_on[p].begin(), catalog.depends_on[p].end());
            catalog.depends_on[p].erase(
                std::unique(catalog.depends_on[p].begin(),
                            catalog.depends_on[p].end()),
                catalog.depends_on[p].end());
        }
    }
    for (int o = 0; o < options.os_images; ++o) {
        catalog.os_images.push_back(registry.add(
            component_kind::operating_system, "os-image" + std::to_string(o),
            options.os_failure_probability));
    }
    catalog.stacks.resize(options.stacks);
    for (int s = 0; s < options.stacks; ++s) {
        for (int t = 0; t < options.top_level_packages_per_stack; ++t) {
            catalog.stacks[s].push_back(
                static_cast<std::uint32_t>(random.uniform_below(options.packages)));
        }
        std::sort(catalog.stacks[s].begin(), catalog.stacks[s].end());
        catalog.stacks[s].erase(
            std::unique(catalog.stacks[s].begin(), catalog.stacks[s].end()),
            catalog.stacks[s].end());
    }
    return catalog;
}

std::vector<std::uint32_t> stack_closure(const software_catalog& catalog,
                                         std::uint32_t stack) {
    if (stack >= catalog.stacks.size()) {
        throw std::out_of_range{"stack_closure: unknown stack"};
    }
    std::vector<std::uint8_t> visited(catalog.packages.size(), 0);
    std::vector<std::uint32_t> frontier = catalog.stacks[stack];
    std::vector<std::uint32_t> closure;
    while (!frontier.empty()) {
        const std::uint32_t package = frontier.back();
        frontier.pop_back();
        if (visited[package] != 0) {
            continue;
        }
        visited[package] = 1;
        closure.push_back(package);
        const auto& deps = catalog.depends_on[package];
        frontier.insert(frontier.end(), deps.begin(), deps.end());
    }
    std::sort(closure.begin(), closure.end());
    return closure;
}

install_report install_software(const built_topology& topo,
                                const software_catalog& catalog,
                                fault_tree_forest& forest) {
    install_report report;
    report.stack_of_host.assign(topo.graph.node_count(), -1);
    report.os_of_host.assign(topo.graph.node_count(), -1);

    // Precompute each stack's closure subtree inputs once.
    std::vector<std::vector<std::uint32_t>> closures;
    closures.reserve(catalog.stacks.size());
    for (std::uint32_t s = 0; s < catalog.stacks.size(); ++s) {
        closures.push_back(stack_closure(catalog, s));
    }

    std::size_t cursor = 0;
    for (const node_id host : topo.hosts) {
        const std::size_t stack = cursor % catalog.stacks.size();
        const std::size_t os = cursor % catalog.os_images.size();
        ++cursor;
        report.stack_of_host[host] = static_cast<int>(stack);
        report.os_of_host[host] = static_cast<int>(os);

        // "software fails" = OS fails OR any package in the closure fails.
        std::vector<tree_node_id> children;
        children.reserve(closures[stack].size() + 1);
        children.push_back(forest.add_leaf(catalog.os_images[os]));
        for (const std::uint32_t package : closures[stack]) {
            children.push_back(forest.add_leaf(catalog.packages[package]));
        }
        forest.attach(host, forest.add_or(std::move(children)));
    }
    return report;
}

}  // namespace recloud
