// Hardware-inventory dependency source (simulating HardwareLister, §2.1).
//
// The paper acquires "detailed hardware configurations (e.g., CPU / memory /
// mainboard configuration, firmware version, etc.)" with HardwareLister.
// This simulator draws a hardware profile per host from small catalogs; all
// hosts sharing a firmware version depend on one shared firmware component
// (a firmware bug takes them down together), which is attached to the fault
// trees exactly like the paper's power-supply dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace recloud {

struct hardware_inventory_options {
    int firmware_versions = 3;           ///< distinct firmware images in the fleet
    double firmware_failure_probability = 0.002;
    std::uint64_t seed = 1;
};

struct host_hardware_profile {
    node_id host = invalid_node;
    std::string cpu_model;
    std::string mainboard;
    int firmware_version = 0;
};

struct hardware_inventory {
    /// One shared component per firmware version.
    std::vector<component_id> firmware_components;
    std::vector<host_hardware_profile> profiles;  ///< one per host
};

/// Surveys the topology's hosts, registers the shared firmware components,
/// and attaches a firmware leaf to each host's fault tree.
[[nodiscard]] hardware_inventory survey_hardware(
    const built_topology& topo, component_registry& registry,
    fault_tree_forest& forest, const hardware_inventory_options& options = {});

}  // namespace recloud
