// Software-dependency source (simulating apt-rdepends, §2.1).
//
// apt-rdepends "can recursively extract the dependencies of software
// packages and libraries". This simulator builds a package dependency DAG,
// assigns each package a failure probability from a synthetic CVSS profile,
// defines software stacks (top-level package sets), and installs a stack +
// OS image on each host: the host's software fails if its OS fails or ANY
// package in the stack's transitive dependency closure fails — an OR
// subtree like Figure 5's "software fails" branch.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace recloud {

struct software_catalog_options {
    int packages = 40;
    int max_dependencies_per_package = 3;  ///< each depends on earlier packages
    int os_images = 2;
    int stacks = 4;
    int top_level_packages_per_stack = 4;
    double os_failure_probability = 0.003;
    std::uint64_t seed = 7;
};

struct software_catalog {
    std::vector<component_id> packages;              ///< per package
    std::vector<std::vector<std::uint32_t>> depends_on;  ///< package -> deps (indices)
    std::vector<component_id> os_images;
    /// stack -> top-level package indices.
    std::vector<std::vector<std::uint32_t>> stacks;
};

/// Generates the package DAG, OS images and stacks; registers every package
/// and OS as a component (package probabilities derived from synthetic CVSS
/// scores via probability_from_cvss).
[[nodiscard]] software_catalog generate_software_catalog(
    component_registry& registry, const software_catalog_options& options = {});

/// Transitive dependency closure of a stack (sorted unique package indices,
/// including the top-level packages themselves) — what apt-rdepends would
/// print for the stack.
[[nodiscard]] std::vector<std::uint32_t> stack_closure(
    const software_catalog& catalog, std::uint32_t stack);

struct install_report {
    std::vector<int> stack_of_host;  ///< dense by node id; -1 for non-hosts
    std::vector<int> os_of_host;     ///< dense by node id; -1 for non-hosts
};

/// Installs a stack + OS image on every host (round-robin) and attaches the
/// corresponding OR subtree to the host's fault tree.
[[nodiscard]] install_report install_software(const built_topology& topo,
                                              const software_catalog& catalog,
                                              fault_tree_forest& forest);

}  // namespace recloud
