// In-process transport backend: worker "nodes" are thread-pool threads
// judging through worker_context — the engine's historic execution path,
// rehomed behind the transport seam with zero behavior change (same
// serialization, same byte accounting, same chaos semantics), so the whole
// recovery test matrix keeps proving the same machine.
#include "exec/transport.hpp"

#include <utility>

#include "exec/worker_context.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace recloud {

const char* to_string(transport_kind kind) noexcept {
    switch (kind) {
        case transport_kind::loopback: return "loopback";
        case transport_kind::socket: return "socket";
    }
    return "unknown";
}

namespace {

class loopback_transport final : public engine_transport {
public:
    loopback_transport(std::size_t workers, transport_env env)
        : env_(std::move(env)), pool_(workers) {}

    [[nodiscard]] const char* name() const noexcept override {
        return "loopback";
    }
    [[nodiscard]] std::size_t workers() const noexcept override {
        return pool_.size();
    }

    std::uint64_t begin_assessment(
        std::span<const std::byte> framed_setup) override {
        if (env_.verdict_cache.cross_plan && contexts_.size() == pool_.size()) {
            // Cross-plan incremental mode: contexts persist across
            // assessments so each worker's verdict cache can rebind
            // in-place and keep the entries the plan swap cannot affect.
            for (const auto& context : contexts_) {
                context->rebind(framed_setup);
            }
            return static_cast<std::uint64_t>(framed_setup.size()) *
                   pool_.size();
        }
        contexts_.clear();
        contexts_.reserve(pool_.size());
        for (std::size_t w = 0; w < pool_.size(); ++w) {
            contexts_.push_back(std::make_unique<worker_context>(
                framed_setup, env_.component_count, env_.forest,
                env_.make_oracle, env_.verdict_cache));
        }
        // Every worker deserializes its own setup copy — what shipping the
        // job to a remote node would cost (Figure 12's fixed costs).
        return static_cast<std::uint64_t>(framed_setup.size()) * pool_.size();
    }

    void end_assessment() override {
        if (env_.verdict_cache.cross_plan) {
            return;  // contexts persist; cache_stats() reads them live
        }
        for (const auto& context : contexts_) {
            if (const verdict_cache_stats* stats = context->cache_stats()) {
                cache_stats_.accumulate(*stats);
                have_cache_stats_ = true;
            }
        }
        contexts_.clear();
    }

    [[nodiscard]] std::future<std::vector<std::byte>> dispatch(
        std::size_t worker, std::span<const std::byte> framed_task,
        std::uint64_t batch, std::uint64_t attempt) override {
        RECLOUD_COUNTER_INC("engine.transport.dispatches");
        RECLOUD_COUNTER_ADD("engine.transport.bytes_sent", framed_task.size());
        worker_context* context = contexts_[worker].get();
        return pool_.submit([context, framed_task, chaos = env_.chaos, batch,
                             attempt, worker] {
            return context->run_batch(framed_task, chaos, batch, attempt,
                                      worker);
        });
    }

    [[nodiscard]] const verdict_cache_stats* cache_stats()
        const noexcept override {
        if (contexts_.empty()) {
            return have_cache_stats_ ? &cache_stats_ : nullptr;
        }
        // Persistent (cross-plan) contexts: retired-context totals plus the
        // live caches. Only read between assessments (engine contract).
        live_cache_stats_ = cache_stats_;
        bool have = have_cache_stats_;
        for (const auto& context : contexts_) {
            if (const verdict_cache_stats* stats = context->cache_stats()) {
                live_cache_stats_.accumulate(*stats);
                have = true;
            }
        }
        return have ? &live_cache_stats_ : nullptr;
    }

private:
    transport_env env_;
    thread_pool pool_;
    std::vector<std::unique_ptr<worker_context>> contexts_;
    verdict_cache_stats cache_stats_;
    mutable verdict_cache_stats live_cache_stats_;
    bool have_cache_stats_ = false;
};

}  // namespace

std::unique_ptr<engine_transport> make_loopback_transport(
    std::size_t workers, const transport_env& env) {
    return std::make_unique<loopback_transport>(workers, env);
}

}  // namespace recloud
