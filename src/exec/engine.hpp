// MapReduce-style parallel route-and-check (paper §3.2.1 "Note that, the
// route-and-check process can be performed in parallel via MapReduce",
// evaluated in §4.2.4 / Figure 12).
//
// A master partitions the sampled rounds into batches, SERIALIZES each
// batch (plus the plan and application, sent once per assessment) into a
// byte buffer, and hands it to a worker. Workers deserialize, set up their
// route-and-check context (their own round_state + routing oracle), judge
// their rounds, and serialize a result record back; the master aggregates.
//
// The serialization is real even though workers are in-process threads:
// Figure 12's shape — parallelism only pays off for very large round
// counts, because serialization/transfer and context setup dominate small
// ones — depends on actually paying those costs.
// Fault tolerance: the master treats workers as unreliable. Every task and
// result message is framed (magic/version/length/checksum — see
// util/serialize.hpp); the master keeps each serialized batch until its
// result frame validates, and on a worker crash, a missed deadline, or a
// corrupt frame it retries with exponential backoff, re-dispatching to
// workers that have not yet failed that batch. When every worker has been
// exhausted for a batch the master degrades gracefully and runs the
// route-and-check locally. Because a batch's rounds are sampled once and
// the kept bytes are replayed verbatim, every recovery path recomputes the
// identical per-batch counts — assessment_stats are bit-identical to the
// fault-free run for any worker count. exec/chaos.hpp injects the faults
// deterministically for tests and benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "assess/backend.hpp"
#include "exec/chaos.hpp"
#include "exec/transport.hpp"
#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"
#include "sampling/sampler.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"

namespace recloud {

// ---- wire format (exposed for tests) ----------------------------------
namespace wire {

void encode_application(byte_writer& out, const application& app);
[[nodiscard]] application decode_application(byte_reader& in);

void encode_plan(byte_writer& out, const deployment_plan& plan);
[[nodiscard]] deployment_plan decode_plan(byte_reader& in);

/// A batch is a sequence of rounds, each a failed-component id list.
void encode_round_batch(byte_writer& out,
                        const std::vector<std::vector<component_id>>& rounds);
[[nodiscard]] std::vector<std::vector<component_id>> decode_round_batch(
    byte_reader& in);

struct batch_result {
    std::uint64_t rounds = 0;
    std::uint64_t reliable = 0;
};

void encode_batch_result(byte_writer& out, const batch_result& result);
[[nodiscard]] batch_result decode_batch_result(byte_reader& in);

}  // namespace wire

struct engine_options {
    std::size_t workers = 1;
    /// Rounds per serialized batch ("portions of rounds" the master
    /// distributes).
    std::size_t batch_rounds = 1000;
    /// Dispatch attempts per batch before the master gives up on workers
    /// and runs the batch locally. 0 skips workers entirely (every batch
    /// degrades to master-local route-and-check).
    std::size_t max_attempts = 3;
    /// Master-side deadline for one dispatch attempt's result; an attempt
    /// missing it counts as failed (straggler) and the batch is
    /// re-dispatched. zero = wait forever (no straggler detection).
    std::chrono::milliseconds batch_deadline{0};
    /// Backoff before retry attempt k (1-based): retry_backoff << (k-1).
    /// zero = retry immediately.
    std::chrono::microseconds retry_backoff{0};
    /// Optional deterministic fault injection (must outlive the engine).
    const chaos_schedule* chaos = nullptr;
    /// Per-worker verdict memoization (each worker context owns a private
    /// cache; `verdict_cache.support` must outlive the engine when enabled).
    /// Counts are summed per batch and addition commutes, so the cache
    /// cannot perturb the engine's bit-identical recovery guarantee.
    verdict_cache_options verdict_cache{};
    /// Where workers live: in-process thread-pool nodes (loopback, the
    /// default — the historic engine) or real recloud_worker processes over
    /// Unix-domain sockets. The recovery state machine and the stats it
    /// produces are transport-independent.
    transport_kind transport = transport_kind::loopback;
    /// Socket transport tuning (worker binary, respawn budget). Ignored by
    /// loopback.
    socket_transport_options socket{};
    /// Structural environment shipped to out-of-process workers so they can
    /// rebuild a route-and-check context (a BFS oracle over this topology).
    /// REQUIRED for the socket transport; ignored by loopback (its workers
    /// use the in-process oracle factory). Borrowed — must outlive the
    /// engine.
    const built_topology* topology = nullptr;
    const link_attachment* links = nullptr;
};

/// Recovery/observability counters for one engine, cumulative across
/// assess() calls. All counting happens on the master thread.
struct engine_stats {
    std::uint64_t batches = 0;          ///< distinct batches produced
    std::uint64_t dispatches = 0;       ///< dispatch attempts sent to workers
    std::uint64_t retries = 0;          ///< attempts beyond a batch's first
    std::uint64_t redispatches = 0;     ///< retries that switched worker
    std::uint64_t degraded = 0;         ///< batches run master-local
    std::uint64_t worker_crashes = 0;   ///< attempts failed by exception
    std::uint64_t deadline_misses = 0;  ///< attempts failed by deadline
    std::uint64_t invalid_frames = 0;   ///< attempts failed by validation
    std::uint64_t bytes_sent = 0;       ///< framed setup + task bytes
    std::uint64_t bytes_received = 0;   ///< framed result bytes
    /// Worker process respawns performed by the transport (0 for loopback
    /// threads, which never die). Snapshotted from the transport after each
    /// assess().
    std::uint64_t worker_respawns = 0;
    std::vector<std::uint64_t> worker_failures;  ///< failed attempts per worker

    [[nodiscard]] std::uint64_t failures() const noexcept {
        return worker_crashes + deadline_misses + invalid_frames;
    }
};

/// Distributed-execution engine for assessments.
class assessment_engine {
public:
    /// `forest` may be nullptr. The factory is invoked once per worker per
    /// assessment (context setup).
    assessment_engine(std::size_t component_count, const fault_tree_forest* forest,
                      oracle_factory make_oracle, const engine_options& options);

    /// Assesses one plan over `rounds` rounds. Sampling stays on the master
    /// (the failure schedule is the data being distributed); workers do the
    /// route-and-check. `budget` (nullable, borrowed) is the request
    /// lifecycle token: the master polls it between batches and WHILE
    /// waiting on dispatched results (sliced waits), and when it fires the
    /// assessment aborts cleanly — outstanding dispatches are abandoned,
    /// drained, and their late results dropped; the transport stays
    /// reusable (no zombie workers, no desync) — then search_preempted
    /// propagates with the partial tally discarded.
    [[nodiscard]] assessment_stats assess(failure_sampler& sampler,
                                          const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds,
                                          const run_budget* budget = nullptr);

    [[nodiscard]] std::size_t workers() const noexcept {
        return transport_->workers();
    }

    /// The transport hosting the workers (process pids, respawn counters —
    /// what the socket chaos tests introspect).
    [[nodiscard]] const engine_transport& transport() const noexcept {
        return *transport_;
    }

    /// Recovery counters, cumulative since construction.
    [[nodiscard]] const engine_stats& stats() const noexcept { return stats_; }

    /// Verdict-cache counters summed over every worker (and degraded-local)
    /// context of every assess() so far; nullptr when the cache is off.
    /// Socket workers contribute the totals pulled back by the last
    /// telemetry harvest (harvest_telemetry(), or the transport's final
    /// shutdown harvest).
    [[nodiscard]] const verdict_cache_stats* cache_stats() const noexcept;

    /// Pulls worker-process telemetry (registry deltas, cumulative cache
    /// counters, trace spans) into this process. No-op on loopback. Pure
    /// observability — never perturbs assessment state (§6).
    void harvest_telemetry() { transport_->harvest_telemetry(); }

    /// Per-worker totals accumulated by harvests (empty on loopback).
    [[nodiscard]] worker_fleet_telemetry fleet_telemetry() const {
        return transport_->fleet_telemetry();
    }

private:
    std::size_t component_count_;
    const fault_tree_forest* forest_;
    oracle_factory make_oracle_;
    engine_options options_;
    std::unique_ptr<engine_transport> transport_;
    engine_stats stats_;
    /// Master-local (degraded-path) cache counters; worker-context counters
    /// accumulate inside the transport. cache_stats() combines both.
    verdict_cache_stats local_cache_stats_;
    mutable verdict_cache_stats combined_cache_stats_;
};

/// assessment_backend adapter over the wire-format engine: sampling stays on
/// the master (the backend's base sampler), workers do the route-and-check.
/// Unlike parallel_backend, results are deterministic for any worker count
/// because the master's single stream defines every round — but serialization
/// and context setup are paid per assessment (Figure 12's fixed costs).
class engine_backend final : public assessment_backend {
public:
    /// `forest` may be nullptr. LIFETIME CONTRACT: the backend keeps a
    /// pointer to `sampler` and dereferences it on every assess() and
    /// reset_stream() — the sampler must strictly outlive the backend.
    /// re_cloud satisfies this by owning the sampler in a member declared
    /// before the backend (destroyed after it); anyone constructing an
    /// engine_backend directly owes the same guarantee.
    engine_backend(std::size_t component_count, const fault_tree_forest* forest,
                   oracle_factory make_oracle, failure_sampler& sampler,
                   const engine_options& options = {});

    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds) override;
    void reset_stream(std::uint64_t seed) override;
    [[nodiscard]] const char* name() const noexcept override { return "engine"; }
    [[nodiscard]] const verdict_cache_stats* cache_stats()
        const noexcept override {
        return engine_.cache_stats();
    }

    [[nodiscard]] std::size_t workers() const noexcept { return engine_.workers(); }

    /// Recovery counters, cumulative since construction.
    [[nodiscard]] const engine_stats& stats() const noexcept {
        return engine_.stats();
    }

    /// See assessment_engine::harvest_telemetry / fleet_telemetry.
    void harvest_telemetry() { engine_.harvest_telemetry(); }
    [[nodiscard]] worker_fleet_telemetry fleet_telemetry() const {
        return engine_.fleet_telemetry();
    }

private:
    failure_sampler* sampler_;  ///< non-owning; see ctor lifetime contract
    assessment_engine engine_;
};

}  // namespace recloud
