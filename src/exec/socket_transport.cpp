// Process-backed transport: each worker slot is a recloud_worker process on
// the far side of a Unix-domain socket pair, served by one master-side I/O
// thread.
//
// Restartability is the point: a dead worker process (an injected chaos
// crash is a real _exit, an external SIGKILL is a real SIGKILL) fails its
// in-flight dispatches with transport_error — the engine's recovery counts
// a worker crash and re-dispatches the batch — while the I/O thread
// respawns the process and re-feeds it the environment and the current
// assessment setup, so the slot serves later batches as if nothing
// happened. Determinism survives because the worker is a pure function
// framed task -> framed result over state the master ships.
//
// Threading: ONE I/O thread per slot multiplexes reads and writes over a
// nonblocking fd with poll() (a writer that blocked while the worker also
// blocked writing its result would deadlock both kernel buffers); dispatch
// enqueues and pokes a self-pipe.
#include "exec/transport.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exec/worker_protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace recloud {

std::string default_worker_binary() {
    if (const char* env = std::getenv("RECLOUD_WORKER_BIN");
        env != nullptr && *env != '\0') {
        return env;
    }
    // Sibling of the running executable, the layout the build tree and an
    // installed prefix both produce.
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n > 0) {
        self[n] = '\0';
        std::string path{self};
        const std::size_t slash = path.find_last_of('/');
        if (slash != std::string::npos) {
            std::string sibling = path.substr(0, slash + 1) + "recloud_worker";
            if (::access(sibling.c_str(), X_OK) == 0) {
                return sibling;
            }
        }
    }
    return "recloud_worker";  // PATH lookup by execvp
}

namespace {

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw transport_error{"fcntl(O_NONBLOCK) failed"};
    }
}

void close_quiet(int& fd) noexcept {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/// Deterministic nonzero flow id for one (batch, attempt, worker) dispatch:
/// splitmix64 finalizer over the packed triple. Both sides derive nothing —
/// the id travels in the envelope — so it only has to be unique-ish within
/// a capture.
std::uint64_t flow_id_of(std::uint64_t batch, std::uint64_t attempt,
                         std::uint64_t worker) noexcept {
    std::uint64_t z =
        (batch * 0x9e3779b97f4a7c15ULL) ^ (attempt << 21) ^ (worker << 42);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z | 1;  // 0 means "no flow" on the wire
}

class socket_transport final : public engine_transport {
public:
    socket_transport(std::size_t workers, const transport_env& env,
                     const socket_transport_options& options)
        : options_(options),
          cross_plan_(env.verdict_cache.enabled &&
                      env.verdict_cache.cross_plan) {
        if (workers == 0) {
            throw std::invalid_argument{"socket transport needs >= 1 worker"};
        }
        if (options_.worker_binary.empty()) {
            options_.worker_binary = default_worker_binary();
        }
        slots_.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            slots_.push_back(std::make_unique<slot>());
            slots_[w]->env_blob = encode_worker_environment(env, w);
        }
        try {
            for (std::size_t w = 0; w < workers; ++w) {
                spawn_worker(*slots_[w]);
                slots_[w]->io = std::thread{[this, w] { io_loop(*slots_[w]); }};
            }
        } catch (...) {
            shutdown_fleet();
            throw;
        }
        // Final-harvest-at-shutdown only pays off (and only costs a
        // round-trip) when observability was on when the fleet started —
        // the same state the env blob shipped to the workers.
        harvest_at_shutdown_ = obs::metrics_registry::global().enabled() ||
                               obs::tracer::global().enabled();
        started_ = true;
    }

    ~socket_transport() override { shutdown_fleet(); }

    [[nodiscard]] const char* name() const noexcept override {
        return "socket";
    }
    [[nodiscard]] std::size_t workers() const noexcept override {
        return slots_.size();
    }

    std::uint64_t begin_assessment(
        std::span<const std::byte> framed_setup) override {
        const std::vector<std::byte> msg = pack_envelope(
            worker_msg::setup, 0, 0, framed_setup);
        // Cross-plan incremental mode: a worker already holding a context
        // (from the previous assessment — teardown is skipped) gets a
        // `rebind` instead of `setup`, so its verdict cache keeps the
        // entries the plan swap cannot affect. The slot's replay copy is
        // ALWAYS the full setup: a respawned worker has no context and must
        // rebuild from scratch.
        const std::vector<std::byte> rebind_msg =
            cross_plan_ ? pack_envelope(worker_msg::rebind, 0, 0, framed_setup)
                        : std::vector<std::byte>{};
        for (const auto& s : slots_) {
            const std::lock_guard lock{s->mu};
            const bool use_rebind = cross_plan_ && s->context_live;
            s->setup = msg;  // respawns replay it
            if (!s->dead) {
                s->outgoing.push_back(use_rebind ? rebind_msg : msg);
                s->context_live = true;
                poke(*s);
            }
        }
        return static_cast<std::uint64_t>(framed_setup.size()) * slots_.size();
    }

    void end_assessment() override {
        if (cross_plan_) {
            // Contexts (and their warm caches) persist on the workers; the
            // next begin_assessment rebinds them in place. s->setup keeps
            // the last full setup so a death between assessments still
            // respawns into a working context.
            return;
        }
        const std::vector<std::byte> msg =
            pack_envelope(worker_msg::teardown, 0, 0, {});
        for (const auto& s : slots_) {
            const std::lock_guard lock{s->mu};
            s->setup.clear();
            s->context_live = false;
            if (!s->dead) {
                s->outgoing.push_back(msg);
                poke(*s);
            }
        }
    }

    [[nodiscard]] std::future<std::vector<std::byte>> dispatch(
        std::size_t worker, std::span<const std::byte> framed_task,
        std::uint64_t batch, std::uint64_t attempt) override {
        RECLOUD_COUNTER_INC("engine.transport.dispatches");
        RECLOUD_COUNTER_ADD("engine.transport.bytes_sent", framed_task.size());
        // Distributed-trace propagation: tag the envelope with a flow id and
        // open the flow here; the worker closes it on its batch span, so the
        // merged export stitches dispatch -> execute across the pid boundary.
        obs::tracer& tracer = obs::tracer::global();
        std::uint64_t trace_id = 0;
        std::uint64_t flow = 0;
        if (tracer.enabled()) {
            trace_id = tracer.epoch_ns();
            flow = flow_id_of(batch, attempt, worker);
            tracer.record_flow("engine.dispatch.send", tracer.now_ns(), 0,
                               flow, obs::flow_start);
        }
        slot& s = *slots_[worker];
        std::promise<std::vector<std::byte>> promise;
        std::future<std::vector<std::byte>> future = promise.get_future();
        {
            const std::lock_guard lock{s.mu};
            if (s.dead) {
                promise.set_exception(std::make_exception_ptr(transport_error{
                    "worker slot dead (respawn budget exhausted)"}));
                return future;
            }
            s.pending.push_back({batch, attempt, std::move(promise)});
            s.outgoing.push_back(pack_envelope(worker_msg::task, batch,
                                               attempt, framed_task, trace_id,
                                               flow));
            poke(s);
        }
        return future;
    }

    void harvest_telemetry() override {
        // One harvest at a time: replies match waiters per slot, and the
        // fold below must see a consistent fleet pass.
        const std::lock_guard harvest_lock{harvest_mu_};
        const std::uint64_t seq = ++harvest_seq_;
        const std::vector<std::byte> request =
            pack_envelope(worker_msg::telemetry, 0, seq, {});
        std::vector<std::pair<slot*, std::future<worker_telemetry>>> waits;
        waits.reserve(slots_.size());
        for (const auto& s : slots_) {
            const std::lock_guard lock{s->mu};
            if (s->dead || s->fd < 0) {
                continue;
            }
            s->telemetry_pending.emplace();
            waits.emplace_back(s.get(), s->telemetry_pending->get_future());
            s->outgoing.push_back(request);
            poke(*s);
        }
        for (auto& [s, fut] : waits) {
            if (fut.wait_for(harvest_timeout) != std::future_status::ready) {
                // Abandon under the slot lock: a reply racing in either beat
                // the reset (future already ready) or finds no waiter.
                const std::lock_guard lock{s->mu};
                s->telemetry_pending.reset();
                if (fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                    continue;
                }
            }
            try {
                fold_harvest(fut.get());
            } catch (const std::exception&) {
                // Worker died or sent garbage mid-harvest: the respawn
                // machinery owns the death; telemetry just misses a round.
            }
        }
    }

    [[nodiscard]] worker_fleet_telemetry fleet_telemetry() const override {
        const std::lock_guard lock{fleet_mu_};
        worker_fleet_telemetry fleet;
        fleet.workers.reserve(fleet_.size());
        for (const fleet_slot_totals& t : fleet_) {
            worker_fleet_telemetry::worker_entry e;
            e.worker_id = t.worker_id;
            e.pid = t.pid;
            e.cache = t.cache_base;
            e.cache.accumulate(t.cache_live);
            e.trace_dropped = t.trace_dropped;
            e.harvests = t.harvests;
            fleet.workers.push_back(e);
        }
        return fleet;
    }

    [[nodiscard]] const verdict_cache_stats* cache_stats()
        const noexcept override {
        const std::lock_guard lock{fleet_mu_};
        if (!have_harvest_) {
            return nullptr;  // nothing pulled back from the fleet yet
        }
        cache_scratch_ = {};
        for (const fleet_slot_totals& t : fleet_) {
            cache_scratch_.accumulate(t.cache_base);
            cache_scratch_.accumulate(t.cache_live);
        }
        return &cache_scratch_;
    }

    [[nodiscard]] std::uint64_t respawns() const noexcept override {
        return respawns_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t live_worker_processes() const noexcept override {
        std::size_t live = 0;
        for (const auto& s : slots_) {
            const std::lock_guard lock{s->mu};
            if (!s->dead && s->pid > 0) {
                ++live;
            }
        }
        return live;
    }

    [[nodiscard]] std::vector<int> worker_pids() const override {
        std::vector<int> pids;
        pids.reserve(slots_.size());
        for (const auto& s : slots_) {
            const std::lock_guard lock{s->mu};
            pids.push_back(s->dead ? -1 : static_cast<int>(s->pid));
        }
        return pids;
    }

private:
    struct pending_result {
        std::uint64_t batch = 0;
        std::uint64_t attempt = 0;
        std::promise<std::vector<std::byte>> promise;
    };

    struct slot {
        mutable std::mutex mu;
        int fd = -1;
        pid_t pid = -1;
        int wake_r = -1;
        int wake_w = -1;
        std::thread io;
        std::vector<std::byte> env_blob;      ///< immutable after ctor
        std::vector<std::byte> setup;          ///< current assessment (framed envelope)
        std::deque<std::vector<std::byte>> outgoing;
        std::size_t write_off = 0;  ///< progress into outgoing.front()
        std::deque<pending_result> pending;
        /// At most one in-flight harvest reply (harvest_mu_ serializes
        /// fleet passes; death fails it, a timeout abandons it).
        std::optional<std::promise<worker_telemetry>> telemetry_pending;
        frame_assembler assembler;
        std::size_t respawns_used = 0;
        bool dead = false;
        /// Worker currently holds a route-and-check context (cross-plan
        /// mode only): the next begin_assessment may send `rebind`.
        bool context_live = false;
    };

    /// Wakes a slot's poll() (write end is nonblocking; a full pipe already
    /// guarantees a pending wake-up, so EAGAIN is fine).
    static void poke(slot& s) noexcept {
        if (s.wake_w >= 0) {
            const char b = 1;
            [[maybe_unused]] const ssize_t n = ::write(s.wake_w, &b, 1);
        }
    }

    /// Forks + execs one worker process for the slot and completes the
    /// env/hello handshake (blocking, bounded by spawn_timeout). On success
    /// the slot's fd is nonblocking and its assembler fresh. Caller holds no
    /// lock (ctor) or the slot is only touched by its own I/O thread.
    void spawn_worker(slot& s) {
        // The wake pipe goes into the slot before anything can throw, so a
        // failed first spawn still has its fds closed by shutdown_fleet.
        // O_CLOEXEC (atomically, pipe2 — a concurrent respawn's fork must
        // not capture these) keeps other slots' children from inheriting
        // them; same for the master-side socket below, so a worker never
        // holds a sibling's socket open past a master crash.
        if (s.wake_r < 0) {
            int wake[2];
            if (::pipe2(wake, O_CLOEXEC | O_NONBLOCK) != 0) {
                throw transport_error{"pipe2 failed"};
            }
            const std::lock_guard lock{s.mu};
            s.wake_r = wake[0];
            s.wake_w = wake[1];
        }
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
            throw transport_error{"socketpair failed"};
        }
        const std::string fd_arg = std::to_string(fds[1]);
        std::size_t index = 0;
        for (; index < slots_.size(); ++index) {
            if (slots_[index].get() == &s) {
                break;
            }
        }
        const std::string worker_arg = std::to_string(index);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            throw transport_error{"fork failed"};
        }
        if (pid == 0) {
            // Child: keep only the worker end across exec — everything else
            // (sibling sockets, wake pipes, master-side end) is CLOEXEC.
            ::close(fds[0]);
            ::fcntl(fds[1], F_SETFD, 0);
            const char* argv[] = {options_.worker_binary.c_str(), "--fd",
                                  fd_arg.c_str(),  "--worker",
                                  worker_arg.c_str(), nullptr};
            ::execvp(argv[0], const_cast<char* const*>(argv));
            ::_exit(127);  // exec failed; master sees EOF
        }
        ::close(fds[1]);
        // Handshake on a still-blocking fd: ship the environment, wait for
        // hello (sent only after the worker decoded it).
        // set_nonblocking stays inside the guarded region: any failure past
        // the fork must close the fd AND kill+reap the live child, not leak
        // them.
        bool ok = false;
        try {
            fd_write_all(fds[0],
                         pack_envelope(worker_msg::env, 0, 0, s.env_blob));
            ok = await_hello(fds[0]);
            if (ok) {
                set_nonblocking(fds[0]);
            }
        } catch (const transport_error&) {
            ok = false;
        }
        if (!ok) {
            ::close(fds[0]);
            ::kill(pid, SIGKILL);
            int status = 0;
            ::waitpid(pid, &status, 0);
            throw transport_error{
                "worker failed to start (binary '" + options_.worker_binary +
                "': exec failure, env rejected, or hello timeout)"};
        }
        const std::lock_guard lock{s.mu};
        s.fd = fds[0];
        s.pid = pid;
        s.write_off = 0;
        s.assembler = frame_assembler{options_.max_frame_payload};
    }

    /// Blocks (poll + read) until the worker's hello frame, EOF, or the
    /// spawn timeout. Leftover bytes past the hello would be a protocol
    /// violation (workers only speak when spoken to), so they are dropped.
    [[nodiscard]] bool await_hello(int fd) const {
        frame_assembler assembler{options_.max_frame_payload};
        const auto deadline =
            std::chrono::steady_clock::now() + options_.spawn_timeout;
        std::byte buf[4096];
        for (;;) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) {
                return false;
            }
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                      now);
            struct pollfd p {fd, static_cast<short>(POLLIN), 0};
            const int rc = ::poll(&p, 1, static_cast<int>(left.count()) + 1);
            if (rc < 0) {
                if (errno == EINTR) {
                    continue;
                }
                return false;
            }
            if (rc == 0) {
                return false;
            }
            const ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n <= 0) {
                if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
                    continue;
                }
                return false;  // EOF: the child died (exec failure, env rejected)
            }
            try {
                assembler.feed(std::span<const std::byte>{buf,
                                                          static_cast<std::size_t>(n)});
                while (auto frame = assembler.next_frame()) {
                    if (unpack_envelope(*frame).kind == worker_msg::hello) {
                        return true;
                    }
                }
            } catch (const serialize_error&) {
                return false;
            }
        }
    }

    /// Serves one slot for the transport's lifetime: multiplexes queued
    /// writes and result reads, and turns process death into failed
    /// promises + (budget permitting) a respawn.
    void io_loop(slot& s) {
        while (!stop_.load(std::memory_order_acquire)) {
            int fd = -1;
            bool want_write = false;
            {
                const std::lock_guard lock{s.mu};
                if (s.dead) {
                    return;
                }
                fd = s.fd;
                want_write = !s.outgoing.empty();
            }
            struct pollfd ps[2] = {
                {fd, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)), 0},
                {s.wake_r, static_cast<short>(POLLIN), 0},
            };
            const int rc = ::poll(ps, 2, 250);
            if (rc < 0 && errno != EINTR) {
                handle_death(s);
                continue;
            }
            if (ps[1].revents & POLLIN) {
                std::byte drain[256];
                while (::read(s.wake_r, drain, sizeof(drain)) > 0) {
                }
            }
            if (ps[0].revents & POLLOUT) {
                if (!flush_writes(s)) {
                    handle_death(s);
                    continue;
                }
            }
            if (ps[0].revents & (POLLIN | POLLHUP | POLLERR)) {
                if (!drain_reads(s)) {
                    handle_death(s);
                    continue;
                }
            }
        }
        // Shutdown: flush the farewell (shutdown envelope) best-effort.
        flush_writes(s);
    }

    /// Writes queued envelopes until EAGAIN or empty. False = peer gone.
    bool flush_writes(slot& s) {
        for (;;) {
            std::vector<std::byte>* front = nullptr;
            std::size_t off = 0;
            int fd = -1;
            {
                const std::lock_guard lock{s.mu};
                if (s.outgoing.empty() || s.fd < 0) {
                    return true;
                }
                front = &s.outgoing.front();
                off = s.write_off;
                fd = s.fd;
            }
            // MSG_NOSIGNAL: a worker may be SIGKILLed between the poll and
            // this send; the death must come back as EPIPE, not SIGPIPE.
            const ssize_t n = ::send(fd, front->data() + off,
                                     front->size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    return true;
                }
                if (errno == EINTR) {
                    continue;
                }
                return false;  // EPIPE etc: worker died
            }
            const std::lock_guard lock{s.mu};
            s.write_off += static_cast<std::size_t>(n);
            if (s.write_off == s.outgoing.front().size()) {
                s.outgoing.pop_front();
                s.write_off = 0;
            }
        }
    }

    /// Reads whatever the kernel has and settles matching promises.
    /// False = EOF/error (worker died) or poisoned stream.
    bool drain_reads(slot& s) {
        std::byte buf[65536];
        for (;;) {
            const ssize_t n = ::read(s.fd, buf, sizeof(buf));
            if (n == 0) {
                return false;  // EOF
            }
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    return true;
                }
                if (errno == EINTR) {
                    continue;
                }
                return false;
            }
            try {
                s.assembler.feed(
                    std::span<const std::byte>{buf, static_cast<std::size_t>(n)});
                while (auto frame = s.assembler.next_frame()) {
                    handle_frame(s, *frame);
                }
            } catch (const serialize_error&) {
                // Outer-envelope desync: the stream is unusable; treat the
                // worker as dead (its in-flight work fails + respawn).
                return false;
            }
        }
    }

    void handle_frame(slot& s, std::span<const std::byte> frame) {
        envelope msg = unpack_envelope(frame);
        if (msg.kind == worker_msg::telemetry) {
            std::optional<std::promise<worker_telemetry>> waiter;
            {
                const std::lock_guard lock{s.mu};
                waiter.swap(s.telemetry_pending);
            }
            if (waiter) {
                // A malformed reply fails this waiter only — the outer
                // envelope was valid, so the stream itself is fine.
                try {
                    waiter->set_value(decode_worker_telemetry(msg.blob));
                } catch (const serialize_error&) {
                    waiter->set_exception(std::current_exception());
                }
            }
            return;
        }
        if (msg.kind != worker_msg::result) {
            return;  // late hello after respawn handshake; ignore
        }
        RECLOUD_COUNTER_INC("engine.transport.results");
        RECLOUD_COUNTER_ADD("engine.transport.bytes_received",
                            msg.blob.size());
        std::promise<std::vector<std::byte>> promise;
        bool found = false;
        {
            const std::lock_guard lock{s.mu};
            for (auto it = s.pending.begin(); it != s.pending.end(); ++it) {
                if (it->batch == msg.batch && it->attempt == msg.attempt) {
                    promise = std::move(it->promise);
                    s.pending.erase(it);
                    found = true;
                    break;
                }
            }
        }
        if (found) {
            promise.set_value(std::move(msg.blob));
        }
        // else: result for an attempt the engine already abandoned — drop.
    }

    /// The worker process is gone: fail its in-flight work (the engine's
    /// recovery takes over) and respawn into the same slot if the budget
    /// allows, re-feeding env + current setup.
    void handle_death(slot& s) {
        std::deque<pending_result> failed;
        std::optional<std::promise<worker_telemetry>> tele;
        pid_t pid = -1;
        {
            const std::lock_guard lock{s.mu};
            close_quiet(s.fd);
            failed.swap(s.pending);
            tele.swap(s.telemetry_pending);
            s.outgoing.clear();
            s.write_off = 0;
            pid = s.pid;
            s.pid = -1;
        }
        if (pid > 0) {
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
        for (pending_result& p : failed) {
            p.promise.set_exception(std::make_exception_ptr(
                transport_error{"worker process died mid-batch"}));
        }
        if (tele) {
            tele->set_exception(std::make_exception_ptr(
                transport_error{"worker process died mid-harvest"}));
        }
        if (stop_.load(std::memory_order_acquire)) {
            mark_dead(s);
            return;
        }
        while (s.respawns_used < options_.max_respawns &&
               !stop_.load(std::memory_order_acquire)) {
            ++s.respawns_used;
            respawns_.fetch_add(1, std::memory_order_relaxed);
            RECLOUD_COUNTER_INC("engine.transport.respawns");
            try {
                spawn_worker(s);
            } catch (const transport_error&) {
                continue;  // burn another respawn credit
            }
            const std::lock_guard lock{s.mu};
            if (!s.setup.empty()) {
                // Front, not back: a task dispatched while the respawn was
                // in flight is already queued and must not reach the fresh
                // worker before its setup. This is always the FULL setup —
                // a respawned worker rebuilds its context (and a cold
                // cache) from scratch; only the warm state is lost.
                s.outgoing.push_front(s.setup);
            } else {
                s.context_live = false;  // fresh worker, no context to rebind
            }
            return;
        }
        mark_dead(s);  // engine degrades around the slot
    }

    /// Declares the slot dead for good. Dispatches may have raced into
    /// `pending` since the death swap — fail them under the SAME lock that
    /// flips `dead`, so no future can ever be left unsettled.
    static void mark_dead(slot& s) {
        std::deque<pending_result> orphaned;
        std::optional<std::promise<worker_telemetry>> tele;
        {
            const std::lock_guard lock{s.mu};
            s.dead = true;
            orphaned.swap(s.pending);
            tele.swap(s.telemetry_pending);
            s.outgoing.clear();
            s.write_off = 0;
        }
        for (pending_result& p : orphaned) {
            p.promise.set_exception(std::make_exception_ptr(
                transport_error{"worker slot dead (respawn budget exhausted)"}));
        }
        if (tele) {
            tele->set_exception(std::make_exception_ptr(
                transport_error{"worker slot dead (respawn budget exhausted)"}));
        }
    }

    /// Stops I/O threads, asks workers to exit, reaps every child.
    /// Idempotent — the ctor failure path and the dtor both run it.
    void shutdown_fleet() noexcept {
        // Final harvest BEFORE stop: worker counters accumulated since the
        // last on-demand pull (or the whole run, if none happened) would
        // otherwise die with the processes. Skipped when observability was
        // off at fleet start — nothing to pull, and chaos-heavy tests must
        // not pay a per-teardown round-trip.
        if (started_ && harvest_at_shutdown_ &&
            !stop_.load(std::memory_order_acquire)) {
            try {
                harvest_telemetry();
            } catch (...) {
            }
        }
        stop_.store(true, std::memory_order_release);
        const std::vector<std::byte> bye =
            pack_envelope(worker_msg::shutdown, 0, 0, {});
        for (const auto& s : slots_) {
            const std::lock_guard lock{s->mu};
            if (!s->dead && s->fd >= 0) {
                s->outgoing.push_back(bye);
            }
            poke(*s);
        }
        for (const auto& s : slots_) {
            if (s->io.joinable()) {
                s->io.join();
            }
        }
        for (const auto& s : slots_) {
            close_quiet(s->fd);
            close_quiet(s->wake_r);
            close_quiet(s->wake_w);
            if (s->pid > 0) {
                reap(s->pid);
                s->pid = -1;
            }
            // Settle anything still pending so waiting futures never see
            // broken_promise.
            std::deque<pending_result> left;
            std::optional<std::promise<worker_telemetry>> tele;
            {
                const std::lock_guard lock{s->mu};
                left.swap(s->pending);
                tele.swap(s->telemetry_pending);
                s->dead = true;
            }
            for (pending_result& p : left) {
                p.promise.set_exception(std::make_exception_ptr(
                    transport_error{"transport shut down"}));
            }
            if (tele) {
                tele->set_exception(std::make_exception_ptr(
                    transport_error{"transport shut down"}));
            }
        }
    }

    /// Waits ~2s for a voluntary exit (it got shutdown and/or EOF), then
    /// SIGKILLs; either way the child is reaped — no zombies survive the
    /// transport.
    static void reap(pid_t pid) noexcept {
        for (int i = 0; i < 200; ++i) {
            int status = 0;
            const pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid || (r < 0 && errno == ECHILD)) {
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }

    /// Folds one worker's harvest into this process: metric DELTAS into the
    /// global registry (the worker reset its own), trace spans into the
    /// tracer (moved, shipped exactly once), and the CUMULATIVE cache
    /// counters into the per-worker store — replacing the previous pull
    /// from the same process, accumulating across respawned processes.
    void fold_harvest(worker_telemetry t) {
        obs::telemetry_snapshot delta;
        delta.metrics = std::move(t.metrics);
        obs::metrics_registry::global().merge_snapshot(delta);
        const std::uint64_t trace_dropped = t.trace.dropped;
        obs::tracer& tracer = obs::tracer::global();
        if (tracer.enabled() &&
            (!t.trace.spans.empty() || !t.trace.thread_names.empty())) {
            tracer.add_remote_capture(std::move(t.trace));
        }
        const std::lock_guard lock{fleet_mu_};
        auto it = std::find_if(fleet_.begin(), fleet_.end(),
                               [&t](const fleet_slot_totals& e) {
                                   return e.worker_id == t.worker_id;
                               });
        if (it == fleet_.end()) {
            fleet_.push_back(fleet_slot_totals{t.worker_id});
            it = std::prev(fleet_.end());
            std::sort(fleet_.begin(), fleet_.end(),
                      [](const fleet_slot_totals& a,
                         const fleet_slot_totals& b) {
                          return a.worker_id < b.worker_id;
                      });
            it = std::find_if(fleet_.begin(), fleet_.end(),
                              [&t](const fleet_slot_totals& e) {
                                  return e.worker_id == t.worker_id;
                              });
        }
        if (it->pid != 0 && it->pid != t.pid) {
            // Respawned slot: the dead process's last-harvested totals move
            // into the base so the fresh process's counters don't regress
            // the fleet view.
            it->cache_base.accumulate(it->cache_live);
            it->cache_live = {};
        }
        it->pid = t.pid;
        it->cache_live = t.cache;
        it->trace_dropped += trace_dropped;
        it->harvests += 1;
        have_harvest_ = true;
    }

    /// Per-worker cumulative totals across harvests (fleet_mu_).
    struct fleet_slot_totals {
        std::uint64_t worker_id = 0;
        std::uint32_t pid = 0;
        verdict_cache_stats cache_base;  ///< processes that died, summed
        verdict_cache_stats cache_live;  ///< current process, last harvest
        std::uint64_t trace_dropped = 0;
        std::uint64_t harvests = 0;
    };

    static constexpr std::chrono::seconds harvest_timeout{5};

    socket_transport_options options_;
    /// Cross-plan incremental caches: skip teardown, rebind on begin.
    bool cross_plan_ = false;
    std::vector<std::unique_ptr<slot>> slots_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> respawns_{0};
    bool started_ = false;  ///< fleet fully constructed (ctor completed)
    bool harvest_at_shutdown_ = false;
    std::mutex harvest_mu_;  ///< serializes fleet harvest passes
    std::uint64_t harvest_seq_ = 0;  ///< under harvest_mu_
    mutable std::mutex fleet_mu_;  ///< guards fleet_ / have_harvest_ / scratch
    std::vector<fleet_slot_totals> fleet_;
    bool have_harvest_ = false;
    mutable verdict_cache_stats cache_scratch_;
};

}  // namespace

std::unique_ptr<engine_transport> make_socket_transport(
    std::size_t workers, const transport_env& env,
    const socket_transport_options& options) {
    return std::make_unique<socket_transport>(workers, env, options);
}

}  // namespace recloud
