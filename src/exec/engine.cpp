#include "exec/engine.hpp"

#include <algorithm>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "app/requirement_eval.hpp"
#include "faults/round_state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/result_stats.hpp"

namespace recloud {
namespace wire {

void encode_application(byte_writer& out, const application& app) {
    out.write_varint(app.components().size());
    for (const app_component& c : app.components()) {
        out.write_string(c.name);
        out.write_varint(c.replicas);
    }
    out.write_varint(app.requirements().size());
    for (const reachability_requirement& req : app.requirements()) {
        out.write_varint(req.target);
        out.write_bool(req.source.has_value());
        if (req.source) {
            out.write_varint(*req.source);
        }
        out.write_varint(req.min_reachable);
    }
}

application decode_application(byte_reader& in) {
    application app;
    // A component costs >= 2 bytes (name length prefix + replicas), a
    // requirement >= 3 (target + has_source + min_reachable).
    const std::uint64_t components = in.read_length_prefix(2);
    for (std::uint64_t c = 0; c < components; ++c) {
        std::string name = in.read_string();
        const auto replicas = static_cast<std::uint32_t>(in.read_varint());
        app.add_component(std::move(name), replicas);
    }
    const std::uint64_t requirements = in.read_length_prefix(3);
    for (std::uint64_t r = 0; r < requirements; ++r) {
        const auto target = static_cast<app_component_id>(in.read_varint());
        const bool has_source = in.read_bool();
        if (has_source) {
            const auto source = static_cast<app_component_id>(in.read_varint());
            app.require_reachable(target, source,
                                  static_cast<std::uint32_t>(in.read_varint()));
        } else {
            app.require_external(target,
                                 static_cast<std::uint32_t>(in.read_varint()));
        }
    }
    app.validate();
    return app;
}

void encode_plan(byte_writer& out, const deployment_plan& plan) {
    out.write_uint_vector(std::span<const node_id>{plan.hosts});
}

deployment_plan decode_plan(byte_reader& in) {
    deployment_plan plan;
    plan.hosts = in.read_uint_vector<node_id>();
    return plan;
}

void encode_round_batch(byte_writer& out,
                        const std::vector<std::vector<component_id>>& rounds) {
    out.write_varint(rounds.size());
    for (const auto& failed : rounds) {
        out.write_uint_vector(std::span<const component_id>{failed});
    }
}

std::vector<std::vector<component_id>> decode_round_batch(byte_reader& in) {
    // Validated length prefix: a hostile count can't drive the reserve.
    const std::uint64_t count = in.read_length_prefix();
    std::vector<std::vector<component_id>> rounds;
    rounds.reserve(count);
    for (std::uint64_t r = 0; r < count; ++r) {
        rounds.push_back(in.read_uint_vector<component_id>());
    }
    return rounds;
}

void encode_batch_result(byte_writer& out, const batch_result& result) {
    out.write_varint(result.rounds);
    out.write_varint(result.reliable);
}

batch_result decode_batch_result(byte_reader& in) {
    batch_result result;
    result.rounds = in.read_varint();
    result.reliable = in.read_varint();
    return result;
}

}  // namespace wire

namespace {

/// A worker's per-assessment route-and-check context: deserialized app and
/// plan, its own round_state and oracle. Setting this up is the context
/// setup the paper identifies as the per-round-batch fixed cost.
struct worker_context {
    application app;
    deployment_plan plan;
    round_state rs;
    std::unique_ptr<reachability_oracle> oracle;
    requirement_evaluator evaluator;
    /// Private per-context verdict memoization; bound once at construction
    /// (the context lives for exactly one (app, plan) assessment).
    std::optional<verdict_cache> cache;
    /// A worker node processes its batches sequentially; the pool may
    /// schedule two batches of the same worker on different threads, so the
    /// context serializes them itself.
    std::mutex busy;

    worker_context(std::span<const std::byte> framed_setup,
                   std::size_t component_count, const fault_tree_forest* forest,
                   const oracle_factory& make_oracle,
                   const verdict_cache_options& cache_options)
        : app(make_app(framed_setup)),
          plan(make_plan(framed_setup)),
          rs(component_count, forest),
          oracle(make_oracle()),
          evaluator(app, plan) {
        if (cache_options.enabled && cache_options.support != nullptr) {
            cache.emplace(*cache_options.support, cache_options.max_entries);
            cache->bind(app, plan);
        }
    }

    static application make_app(std::span<const std::byte> framed_setup) {
        byte_reader reader{unframe_message(framed_setup)};
        return wire::decode_application(reader);
    }

    static deployment_plan make_plan(std::span<const std::byte> framed_setup) {
        byte_reader reader{unframe_message(framed_setup)};
        (void)wire::decode_application(reader);  // skip the app section
        return wire::decode_plan(reader);
    }

    /// Map step: judge every round in a framed serialized batch; returns
    /// the framed serialized result record. `chaos` (optional) injects the
    /// scheduled fault for this (batch, attempt, worker) dispatch.
    [[nodiscard]] std::vector<std::byte> run_batch(
        std::span<const std::byte> framed_task, const chaos_schedule* chaos,
        std::uint64_t batch_id, std::uint64_t attempt, std::uint64_t worker_id) {
        const std::lock_guard lock{busy};
        RECLOUD_SPAN("engine.batch");
        const chaos_fault fault =
            chaos != nullptr ? chaos->fault_for(batch_id, attempt, worker_id)
                             : chaos_fault::none;
        if (fault == chaos_fault::crash) {
            throw chaos_crash{"injected worker crash"};
        }
        if (fault == chaos_fault::stall) {
            std::this_thread::sleep_for(chaos->options().stall_duration);
        }
        byte_reader reader{unframe_message(framed_task)};
        const auto rounds = wire::decode_round_batch(reader);
        wire::batch_result result;
        verdict_cache* vc = cache ? &*cache : nullptr;
        for (const auto& failed : rounds) {
            ++result.rounds;
            if (cached_reliable_in_round(vc, failed, rs, *oracle, plan,
                                         evaluator)) {
                ++result.reliable;
            }
        }
        byte_writer writer;
        wire::encode_batch_result(writer, result);
        std::vector<std::byte> framed = frame_message(writer.bytes());
        if (fault == chaos_fault::corrupt_result) {
            chaos_schedule::corrupt(framed, batch_id, attempt, worker_id);
        } else if (fault == chaos_fault::truncate_result) {
            chaos_schedule::truncate(framed, batch_id, attempt, worker_id);
        }
        return framed;
    }
};

/// One batch the master is responsible for until its result validates.
struct pending_batch {
    std::uint64_t id = 0;
    std::uint64_t rounds = 0;
    /// Kept until validation so retries replay the identical bytes —
    /// the determinism argument for recovery.
    std::vector<std::byte> framed_task;
    std::size_t attempt = 0;  ///< dispatch attempts so far
    std::size_t worker = 0;   ///< worker of the outstanding attempt
    std::vector<bool> failed_on;  ///< workers that already failed this batch
    std::future<std::vector<std::byte>> outcome;
};

}  // namespace

assessment_engine::assessment_engine(std::size_t component_count,
                                     const fault_tree_forest* forest,
                                     oracle_factory make_oracle,
                                     const engine_options& options)
    : component_count_(component_count),
      forest_(forest),
      make_oracle_(std::move(make_oracle)),
      options_(options),
      pool_(options.workers) {
    stats_.worker_failures.assign(pool_.size(), 0);
}

assessment_stats assessment_engine::assess(failure_sampler& sampler,
                                           const application& app,
                                           const deployment_plan& plan,
                                           std::size_t rounds) {
    RECLOUD_SPAN("engine.assess");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    // Serialize the assessment context once; every worker deserializes its
    // own copy (what shipping the job to a remote worker would cost).
    byte_writer setup_writer;
    wire::encode_application(setup_writer, app);
    wire::encode_plan(setup_writer, plan);
    const std::vector<std::byte> framed_setup =
        frame_message(setup_writer.bytes());

    std::vector<std::unique_ptr<worker_context>> contexts;
    contexts.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) {
        contexts.push_back(std::make_unique<worker_context>(
            framed_setup, component_count_, forest_, make_oracle_,
            options_.verdict_cache));
        stats_.bytes_sent += framed_setup.size();
    }

    // Master: sample every round up front. The sampler stream advances
    // identically whatever faults later strike, and each batch's bytes are
    // kept until its result validates — so retries, re-dispatches and
    // degraded local runs all judge the identical rounds.
    std::vector<pending_batch> batches;
    {
        RECLOUD_SPAN("engine.sample");
        std::vector<std::vector<component_id>> batch_rounds;
        std::vector<component_id> failed;
        const auto flush = [&] {
            if (batch_rounds.empty()) {
                return;
            }
            byte_writer writer;
            wire::encode_round_batch(writer, batch_rounds);
            pending_batch b;
            b.id = batches.size();
            b.rounds = batch_rounds.size();
            b.framed_task = frame_message(writer.bytes());
            b.failed_on.assign(pool_.size(), false);
            batches.push_back(std::move(b));
            batch_rounds.clear();
        };
        for (std::size_t produced = 0; produced < rounds; ++produced) {
            sampler.next_round(failed);
            batch_rounds.push_back(failed);
            if (batch_rounds.size() >= options_.batch_rounds) {
                flush();
            }
        }
        flush();
    }
    stats_.batches += batches.size();

    // Results a deadline miss abandoned: the stalled task still runs and
    // must be drained before the contexts it references are destroyed.
    std::vector<std::future<std::vector<std::byte>>> abandoned;
    const auto drain = [&] {
        for (pending_batch& b : batches) {
            if (b.outcome.valid()) {
                b.outcome.wait();
            }
        }
        for (auto& f : abandoned) {
            f.wait();
        }
    };

    const auto dispatch = [&](pending_batch& b, std::size_t worker) {
        RECLOUD_SPAN("engine.dispatch");
        RECLOUD_COUNTER_INC("engine.dispatches");
        b.worker = worker;
        worker_context* context = contexts[worker].get();
        b.outcome = pool_.submit([context, task = std::span<const std::byte>{
                                               b.framed_task},
                                  chaos = options_.chaos, id = b.id,
                                  attempt = std::uint64_t{b.attempt},
                                  worker]() {
            return context->run_batch(task, chaos, id, attempt, worker);
        });
        ++b.attempt;
        ++stats_.dispatches;
        stats_.bytes_sent += b.framed_task.size();
    };

    /// First healthy candidate after `after`, or pool size when every
    /// worker has already failed this batch.
    const auto next_worker = [&](const pending_batch& b, std::size_t after) {
        for (std::size_t step = 1; step <= pool_.size(); ++step) {
            const std::size_t w = (after + step) % pool_.size();
            if (!b.failed_on[w]) {
                return w;
            }
        }
        return pool_.size();
    };

    // Initial wave: batch i to worker i mod workers (round-robin).
    if (options_.max_attempts > 0) {
        for (pending_batch& b : batches) {
            dispatch(b, static_cast<std::size_t>(b.id % pool_.size()));
        }
    }

    result_accumulator results;
    std::unique_ptr<worker_context> local;  // lazily-built degraded path
    try {
        for (pending_batch& b : batches) {
            bool accepted = false;
            while (b.outcome.valid() && !accepted) {
                // Wait (bounded by the per-attempt deadline, if any).
                if (options_.batch_deadline.count() > 0 &&
                    b.outcome.wait_for(options_.batch_deadline) ==
                        std::future_status::timeout) {
                    ++stats_.deadline_misses;
                    abandoned.push_back(std::move(b.outcome));
                } else {
                    try {
                        const std::vector<std::byte> framed = b.outcome.get();
                        stats_.bytes_received += framed.size();
                        byte_reader reader{unframe_message(framed)};
                        const wire::batch_result r =
                            wire::decode_batch_result(reader);
                        if (!reader.at_end() || r.rounds != b.rounds ||
                            r.reliable > r.rounds) {
                            throw serialize_error{"batch result inconsistent"};
                        }
                        results.merge(r.reliable, r.rounds);
                        accepted = true;
                    } catch (const serialize_error&) {
                        ++stats_.invalid_frames;
                    } catch (const std::exception&) {
                        ++stats_.worker_crashes;
                    }
                }
                if (accepted) {
                    break;
                }
                // The attempt failed; retry on a healthy worker or fall
                // through (invalid future) to the degraded local path.
                ++stats_.worker_failures[b.worker];
                b.failed_on[b.worker] = true;
                const std::size_t candidate = next_worker(b, b.worker);
                if (b.attempt >= options_.max_attempts ||
                    candidate == pool_.size()) {
                    break;
                }
                if (options_.retry_backoff.count() > 0) {
                    // Exponential backoff: base * 2^(attempts - 1).
                    std::this_thread::sleep_for(
                        options_.retry_backoff *
                        (std::int64_t{1} << std::min<std::size_t>(b.attempt - 1, 20)));
                }
                ++stats_.retries;
                RECLOUD_COUNTER_INC("engine.retries");
                if (candidate != b.worker) {
                    ++stats_.redispatches;
                }
                dispatch(b, candidate);
            }
            if (!accepted) {
                // Graceful degradation: every worker exhausted (or none
                // allowed) — the master routes and checks the kept batch
                // itself, chaos-free, which cannot fail.
                RECLOUD_SPAN("engine.degraded");
                RECLOUD_COUNTER_INC("engine.degraded");
                if (local == nullptr) {
                    local = std::make_unique<worker_context>(
                        framed_setup, component_count_, forest_, make_oracle_,
                        options_.verdict_cache);
                }
                const std::vector<std::byte> framed = local->run_batch(
                    b.framed_task, nullptr, b.id, b.attempt, pool_.size());
                byte_reader reader{unframe_message(framed)};
                const wire::batch_result r = wire::decode_batch_result(reader);
                results.merge(r.reliable, r.rounds);
                ++stats_.degraded;
            }
            // The batch is settled, but its bytes are only freed with
            // `batches` after drain(): an abandoned stalled attempt may
            // still be reading them.
        }
    } catch (...) {
        drain();
        throw;
    }
    drain();
    // Contexts die with this call; fold their cache counters into the
    // engine-lifetime totals first (after drain: no task still runs).
    for (const std::unique_ptr<worker_context>& context : contexts) {
        if (context->cache) {
            cache_stats_.accumulate(context->cache->stats());
        }
    }
    if (local != nullptr && local->cache) {
        cache_stats_.accumulate(local->cache->stats());
    }
    return results.stats();
}

engine_backend::engine_backend(std::size_t component_count,
                               const fault_tree_forest* forest,
                               oracle_factory make_oracle,
                               failure_sampler& sampler,
                               const engine_options& options)
    : sampler_(&sampler),
      engine_(component_count, forest, std::move(make_oracle), options) {}

assessment_stats engine_backend::assess(const application& app,
                                        const deployment_plan& plan,
                                        std::size_t rounds) {
    return engine_.assess(*sampler_, app, plan, rounds);
}

void engine_backend::reset_stream(std::uint64_t seed) {
    sampler_->reset(seed);
}

}  // namespace recloud
