#include "exec/engine.hpp"

#include <algorithm>
#include <future>
#include <thread>
#include <utility>

#include "exec/worker_context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/result_stats.hpp"

namespace recloud {
namespace wire {

void encode_application(byte_writer& out, const application& app) {
    out.write_varint(app.components().size());
    for (const app_component& c : app.components()) {
        out.write_string(c.name);
        out.write_varint(c.replicas);
    }
    out.write_varint(app.requirements().size());
    for (const reachability_requirement& req : app.requirements()) {
        out.write_varint(req.target);
        out.write_bool(req.source.has_value());
        if (req.source) {
            out.write_varint(*req.source);
        }
        out.write_varint(req.min_reachable);
    }
}

application decode_application(byte_reader& in) {
    application app;
    // A component costs >= 2 bytes (name length prefix + replicas), a
    // requirement >= 3 (target + has_source + min_reachable).
    const std::uint64_t components = in.read_length_prefix(2);
    for (std::uint64_t c = 0; c < components; ++c) {
        std::string name = in.read_string();
        const auto replicas = static_cast<std::uint32_t>(in.read_varint());
        app.add_component(std::move(name), replicas);
    }
    const std::uint64_t requirements = in.read_length_prefix(3);
    for (std::uint64_t r = 0; r < requirements; ++r) {
        const auto target = static_cast<app_component_id>(in.read_varint());
        const bool has_source = in.read_bool();
        if (has_source) {
            const auto source = static_cast<app_component_id>(in.read_varint());
            app.require_reachable(target, source,
                                  static_cast<std::uint32_t>(in.read_varint()));
        } else {
            app.require_external(target,
                                 static_cast<std::uint32_t>(in.read_varint()));
        }
    }
    app.validate();
    return app;
}

void encode_plan(byte_writer& out, const deployment_plan& plan) {
    out.write_uint_vector(std::span<const node_id>{plan.hosts});
}

deployment_plan decode_plan(byte_reader& in) {
    deployment_plan plan;
    plan.hosts = in.read_uint_vector<node_id>();
    return plan;
}

void encode_round_batch(byte_writer& out,
                        const std::vector<std::vector<component_id>>& rounds) {
    out.write_varint(rounds.size());
    for (const auto& failed : rounds) {
        out.write_uint_vector(std::span<const component_id>{failed});
    }
}

std::vector<std::vector<component_id>> decode_round_batch(byte_reader& in) {
    // Validated length prefix: a hostile count can't drive the reserve.
    const std::uint64_t count = in.read_length_prefix();
    std::vector<std::vector<component_id>> rounds;
    rounds.reserve(count);
    for (std::uint64_t r = 0; r < count; ++r) {
        rounds.push_back(in.read_uint_vector<component_id>());
    }
    return rounds;
}

void encode_batch_result(byte_writer& out, const batch_result& result) {
    out.write_varint(result.rounds);
    out.write_varint(result.reliable);
}

batch_result decode_batch_result(byte_reader& in) {
    batch_result result;
    result.rounds = in.read_varint();
    result.reliable = in.read_varint();
    return result;
}

}  // namespace wire

namespace {

/// Builds the transport the options select. The loopback default reproduces
/// the historic in-process engine byte-for-byte.
std::unique_ptr<engine_transport> build_transport(
    std::size_t component_count, const fault_tree_forest* forest,
    const oracle_factory& make_oracle, const engine_options& options) {
    transport_env env;
    env.component_count = component_count;
    env.forest = forest;
    env.make_oracle = make_oracle;
    env.verdict_cache = options.verdict_cache;
    env.chaos = options.chaos;
    env.topology = options.topology;
    env.links = options.links;
    if (options.transport == transport_kind::socket) {
        return make_socket_transport(options.workers, env, options.socket);
    }
    return make_loopback_transport(options.workers, env);
}

/// One batch the master is responsible for until its result validates.
struct pending_batch {
    std::uint64_t id = 0;
    std::uint64_t rounds = 0;
    /// Kept until validation so retries replay the identical bytes —
    /// the determinism argument for recovery.
    std::vector<std::byte> framed_task;
    std::size_t attempt = 0;  ///< dispatch attempts so far
    std::size_t worker = 0;   ///< worker of the outstanding attempt
    std::vector<bool> failed_on;  ///< workers that already failed this batch
    std::future<std::vector<std::byte>> outcome;
};

}  // namespace

assessment_engine::assessment_engine(std::size_t component_count,
                                     const fault_tree_forest* forest,
                                     oracle_factory make_oracle,
                                     const engine_options& options)
    : component_count_(component_count),
      forest_(forest),
      make_oracle_(std::move(make_oracle)),
      options_(options),
      transport_(build_transport(component_count, forest, make_oracle_,
                                 options)) {
    stats_.worker_failures.assign(transport_->workers(), 0);
}

const verdict_cache_stats* assessment_engine::cache_stats() const noexcept {
    const verdict_cache_options& vc = options_.verdict_cache;
    if (!vc.enabled ||
        (vc.support == nullptr &&
         options_.transport == transport_kind::loopback)) {
        return nullptr;
    }
    combined_cache_stats_ = local_cache_stats_;
    if (const verdict_cache_stats* remote = transport_->cache_stats()) {
        combined_cache_stats_.accumulate(*remote);
    }
    return &combined_cache_stats_;
}

assessment_stats assessment_engine::assess(failure_sampler& sampler,
                                           const application& app,
                                           const deployment_plan& plan,
                                           std::size_t rounds,
                                           const run_budget* budget) {
    RECLOUD_SPAN("engine.assess");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    const std::size_t worker_count = transport_->workers();
    // Serialize the assessment context once; every worker receives its own
    // copy (what shipping the job to a remote worker costs — and with the
    // socket transport, what it literally is).
    byte_writer setup_writer;
    wire::encode_application(setup_writer, app);
    wire::encode_plan(setup_writer, plan);
    const std::vector<std::byte> framed_setup =
        frame_message(setup_writer.bytes());
    stats_.bytes_sent += transport_->begin_assessment(framed_setup);

    std::vector<pending_batch> batches;

    // Results a deadline miss (or a lifecycle preempt) abandoned: the
    // stalled task still runs and must be drained before the contexts it
    // references are destroyed.
    std::vector<std::future<std::vector<std::byte>>> abandoned;
    const auto drain = [&] {
        for (pending_batch& b : batches) {
            if (b.outcome.valid()) {
                b.outcome.wait();
            }
        }
        for (auto& f : abandoned) {
            f.wait();
        }
    };

    const auto dispatch = [&](pending_batch& b, std::size_t worker) {
        RECLOUD_SPAN("engine.dispatch");
        RECLOUD_COUNTER_INC("engine.dispatches");
        b.worker = worker;
        b.outcome = transport_->dispatch(worker,
                                         std::span<const std::byte>{
                                             b.framed_task},
                                         b.id, b.attempt);
        ++b.attempt;
        ++stats_.dispatches;
        stats_.bytes_sent += b.framed_task.size();
    };

    /// First healthy candidate after `after`, or the worker count when
    /// every worker has already failed this batch.
    const auto next_worker = [&](const pending_batch& b, std::size_t after) {
        for (std::size_t step = 1; step <= worker_count; ++step) {
            const std::size_t w = (after + step) % worker_count;
            if (!b.failed_on[w]) {
                return w;
            }
        }
        return worker_count;
    };

    // Waits for one attempt's result: bounded by the per-attempt deadline
    // (if any) and — when a lifecycle budget is armed — sliced so the wait
    // aborts within a few milliseconds of the budget firing. With neither,
    // the plain get() below blocks, exactly the historic path.
    const auto attempt_timed_out = [&](pending_batch& b) {
        const bool bounded = options_.batch_deadline.count() > 0;
        if (!bounded && budget == nullptr) {
            return false;
        }
        constexpr std::chrono::milliseconds poll_slice{2};
        const auto attempt_deadline =
            monotonic_clock::now() + options_.batch_deadline;
        for (;;) {
            throw_if_preempted(budget);
            std::chrono::nanoseconds wait = poll_slice;
            if (bounded) {
                const std::chrono::nanoseconds remaining =
                    attempt_deadline - monotonic_clock::now();
                if (remaining <= std::chrono::nanoseconds::zero()) {
                    return true;
                }
                if (budget == nullptr || remaining < wait) {
                    wait = remaining;
                }
            }
            if (b.outcome.wait_for(wait) == std::future_status::ready) {
                return false;
            }
        }
    };

    result_accumulator results;
    std::unique_ptr<worker_context> local;  // lazily-built degraded path
    try {
        // Master: sample every round up front. The sampler stream advances
        // identically whatever faults later strike, and each batch's bytes
        // are kept until its result validates — so retries, re-dispatches
        // and degraded local runs all judge the identical rounds.
        {
            RECLOUD_SPAN("engine.sample");
            std::vector<std::vector<component_id>> batch_rounds;
            std::vector<component_id> failed;
            const auto flush = [&] {
                if (batch_rounds.empty()) {
                    return;
                }
                byte_writer writer;
                wire::encode_round_batch(writer, batch_rounds);
                pending_batch b;
                b.id = batches.size();
                b.rounds = batch_rounds.size();
                b.framed_task = frame_message(writer.bytes());
                b.failed_on.assign(worker_count, false);
                batches.push_back(std::move(b));
                batch_rounds.clear();
            };
            for (std::size_t produced = 0; produced < rounds; ++produced) {
                sampler.next_round(failed);
                batch_rounds.push_back(failed);
                if (batch_rounds.size() >= options_.batch_rounds) {
                    flush();
                    throw_if_preempted(budget);
                }
            }
            flush();
        }
        stats_.batches += batches.size();

        // Initial wave: batch i to worker i mod workers (round-robin).
        if (options_.max_attempts > 0) {
            for (pending_batch& b : batches) {
                dispatch(b, static_cast<std::size_t>(b.id % worker_count));
            }
        }

        for (pending_batch& b : batches) {
            throw_if_preempted(budget);
            bool accepted = false;
            while (b.outcome.valid() && !accepted) {
                if (attempt_timed_out(b)) {
                    ++stats_.deadline_misses;
                    abandoned.push_back(std::move(b.outcome));
                } else {
                    try {
                        const std::vector<std::byte> framed = b.outcome.get();
                        stats_.bytes_received += framed.size();
                        byte_reader reader{unframe_message(framed)};
                        const wire::batch_result r =
                            wire::decode_batch_result(reader);
                        if (!reader.at_end() || r.rounds != b.rounds ||
                            r.reliable > r.rounds) {
                            throw serialize_error{"batch result inconsistent"};
                        }
                        results.merge(r.reliable, r.rounds);
                        accepted = true;
                    } catch (const serialize_error&) {
                        ++stats_.invalid_frames;
                    } catch (const std::exception&) {
                        ++stats_.worker_crashes;
                    }
                }
                if (accepted) {
                    break;
                }
                // The attempt failed; retry on a healthy worker or fall
                // through (invalid future) to the degraded local path.
                ++stats_.worker_failures[b.worker];
                b.failed_on[b.worker] = true;
                const std::size_t candidate = next_worker(b, b.worker);
                if (b.attempt >= options_.max_attempts ||
                    candidate == worker_count) {
                    break;
                }
                if (options_.retry_backoff.count() > 0) {
                    // Exponential backoff: base * 2^(attempts - 1).
                    std::this_thread::sleep_for(
                        options_.retry_backoff *
                        (std::int64_t{1} << std::min<std::size_t>(b.attempt - 1, 20)));
                }
                ++stats_.retries;
                RECLOUD_COUNTER_INC("engine.retries");
                if (candidate != b.worker) {
                    ++stats_.redispatches;
                }
                dispatch(b, candidate);
            }
            if (!accepted) {
                // Graceful degradation: every worker exhausted (or none
                // allowed) — the master routes and checks the kept batch
                // itself, chaos-free, which cannot fail. An over-budget
                // request aborts instead of paying for the local run.
                throw_if_preempted(budget);
                RECLOUD_SPAN("engine.degraded");
                RECLOUD_COUNTER_INC("engine.degraded");
                if (local == nullptr) {
                    local = std::make_unique<worker_context>(
                        framed_setup, component_count_, forest_, make_oracle_,
                        options_.verdict_cache);
                }
                const std::vector<std::byte> framed = local->run_batch(
                    b.framed_task, nullptr, b.id, b.attempt, worker_count);
                byte_reader reader{unframe_message(framed)};
                const wire::batch_result r = wire::decode_batch_result(reader);
                results.merge(r.reliable, r.rounds);
                ++stats_.degraded;
            }
            // The batch is settled, but its bytes are only freed with
            // `batches` after drain(): an abandoned stalled attempt may
            // still be reading them.
        }
    } catch (...) {
        drain();
        transport_->end_assessment();
        stats_.worker_respawns = transport_->respawns();
        throw;
    }
    drain();
    // Worker contexts die inside end_assessment (the transport folds their
    // cache counters); after drain no task still runs, so that is safe.
    transport_->end_assessment();
    stats_.worker_respawns = transport_->respawns();
    if (local != nullptr) {
        if (const verdict_cache_stats* stats = local->cache_stats()) {
            local_cache_stats_.accumulate(*stats);
        }
    }
    return results.stats();
}

engine_backend::engine_backend(std::size_t component_count,
                               const fault_tree_forest* forest,
                               oracle_factory make_oracle,
                               failure_sampler& sampler,
                               const engine_options& options)
    : sampler_(&sampler),
      engine_(component_count, forest, std::move(make_oracle), options) {}

assessment_stats engine_backend::assess(const application& app,
                                        const deployment_plan& plan,
                                        std::size_t rounds) {
    return engine_.assess(*sampler_, app, plan, rounds, budget_);
}

void engine_backend::reset_stream(std::uint64_t seed) {
    sampler_->reset(seed);
}

}  // namespace recloud
