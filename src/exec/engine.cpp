#include "exec/engine.hpp"

#include <future>
#include <mutex>

#include "app/requirement_eval.hpp"
#include "faults/round_state.hpp"
#include "sampling/result_stats.hpp"

namespace recloud {
namespace wire {

void encode_application(byte_writer& out, const application& app) {
    out.write_varint(app.components().size());
    for (const app_component& c : app.components()) {
        out.write_string(c.name);
        out.write_varint(c.replicas);
    }
    out.write_varint(app.requirements().size());
    for (const reachability_requirement& req : app.requirements()) {
        out.write_varint(req.target);
        out.write_bool(req.source.has_value());
        if (req.source) {
            out.write_varint(*req.source);
        }
        out.write_varint(req.min_reachable);
    }
}

application decode_application(byte_reader& in) {
    application app;
    const std::uint64_t components = in.read_varint();
    for (std::uint64_t c = 0; c < components; ++c) {
        std::string name = in.read_string();
        const auto replicas = static_cast<std::uint32_t>(in.read_varint());
        app.add_component(std::move(name), replicas);
    }
    const std::uint64_t requirements = in.read_varint();
    for (std::uint64_t r = 0; r < requirements; ++r) {
        const auto target = static_cast<app_component_id>(in.read_varint());
        const bool has_source = in.read_bool();
        if (has_source) {
            const auto source = static_cast<app_component_id>(in.read_varint());
            app.require_reachable(target, source,
                                  static_cast<std::uint32_t>(in.read_varint()));
        } else {
            app.require_external(target,
                                 static_cast<std::uint32_t>(in.read_varint()));
        }
    }
    app.validate();
    return app;
}

void encode_plan(byte_writer& out, const deployment_plan& plan) {
    out.write_uint_vector(std::span<const node_id>{plan.hosts});
}

deployment_plan decode_plan(byte_reader& in) {
    deployment_plan plan;
    plan.hosts = in.read_uint_vector<node_id>();
    return plan;
}

void encode_round_batch(byte_writer& out,
                        const std::vector<std::vector<component_id>>& rounds) {
    out.write_varint(rounds.size());
    for (const auto& failed : rounds) {
        out.write_uint_vector(std::span<const component_id>{failed});
    }
}

std::vector<std::vector<component_id>> decode_round_batch(byte_reader& in) {
    const std::uint64_t count = in.read_varint();
    std::vector<std::vector<component_id>> rounds;
    rounds.reserve(count);
    for (std::uint64_t r = 0; r < count; ++r) {
        rounds.push_back(in.read_uint_vector<component_id>());
    }
    return rounds;
}

void encode_batch_result(byte_writer& out, const batch_result& result) {
    out.write_varint(result.rounds);
    out.write_varint(result.reliable);
}

batch_result decode_batch_result(byte_reader& in) {
    batch_result result;
    result.rounds = in.read_varint();
    result.reliable = in.read_varint();
    return result;
}

}  // namespace wire

namespace {

/// A worker's per-assessment route-and-check context: deserialized app and
/// plan, its own round_state and oracle. Setting this up is the context
/// setup the paper identifies as the per-round-batch fixed cost.
struct worker_context {
    application app;
    deployment_plan plan;
    round_state rs;
    std::unique_ptr<reachability_oracle> oracle;
    requirement_evaluator evaluator;
    /// A worker node processes its batches sequentially; the pool may
    /// schedule two batches of the same worker on different threads, so the
    /// context serializes them itself.
    std::mutex busy;

    worker_context(std::span<const std::byte> setup_message,
                   std::size_t component_count, const fault_tree_forest* forest,
                   const oracle_factory& make_oracle)
        : app(make_app(setup_message)),
          plan(make_plan(setup_message)),
          rs(component_count, forest),
          oracle(make_oracle()),
          evaluator(app, plan) {}

    static application make_app(std::span<const std::byte> setup_message) {
        byte_reader reader{setup_message};
        return wire::decode_application(reader);
    }

    static deployment_plan make_plan(std::span<const std::byte> setup_message) {
        byte_reader reader{setup_message};
        (void)wire::decode_application(reader);  // skip the app section
        return wire::decode_plan(reader);
    }

    /// Map step: judge every round in a serialized batch; returns the
    /// serialized result record.
    [[nodiscard]] std::vector<std::byte> run_batch(std::vector<std::byte> batch) {
        const std::lock_guard lock{busy};
        byte_reader reader{batch};
        const auto rounds = wire::decode_round_batch(reader);
        wire::batch_result result;
        for (const auto& failed : rounds) {
            rs.begin_round(failed);
            oracle->begin_round(rs);
            ++result.rounds;
            if (evaluator.reliable_in_round(*oracle, rs)) {
                ++result.reliable;
            }
        }
        byte_writer writer;
        wire::encode_batch_result(writer, result);
        return writer.take();
    }
};

}  // namespace

assessment_engine::assessment_engine(std::size_t component_count,
                                     const fault_tree_forest* forest,
                                     oracle_factory make_oracle,
                                     const engine_options& options)
    : component_count_(component_count),
      forest_(forest),
      make_oracle_(std::move(make_oracle)),
      options_(options),
      pool_(options.workers) {}

assessment_stats assessment_engine::assess(failure_sampler& sampler,
                                           const application& app,
                                           const deployment_plan& plan,
                                           std::size_t rounds) {
    // Serialize the assessment context once; every worker deserializes its
    // own copy (what shipping the job to a remote worker would cost).
    byte_writer setup_writer;
    wire::encode_application(setup_writer, app);
    wire::encode_plan(setup_writer, plan);
    const std::vector<std::byte> setup_message = setup_writer.take();

    std::vector<std::unique_ptr<worker_context>> contexts;
    contexts.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) {
        contexts.push_back(std::make_unique<worker_context>(
            setup_message, component_count_, forest_, make_oracle_));
    }

    // Master: sample rounds, serialize batches, dispatch round-robin.
    std::vector<std::future<std::vector<std::byte>>> futures;
    std::vector<std::vector<component_id>> batch;
    std::vector<component_id> failed;
    std::size_t produced = 0;
    std::size_t next_worker = 0;
    const auto flush_batch = [&] {
        if (batch.empty()) {
            return;
        }
        byte_writer writer;
        wire::encode_round_batch(writer, batch);
        batch.clear();
        worker_context* context = contexts[next_worker].get();
        next_worker = (next_worker + 1) % contexts.size();
        futures.push_back(pool_.submit(
            [context, message = writer.take()]() mutable {
                return context->run_batch(std::move(message));
            }));
    };
    while (produced < rounds) {
        sampler.next_round(failed);
        batch.push_back(failed);
        ++produced;
        if (batch.size() >= options_.batch_rounds) {
            flush_batch();
        }
    }
    flush_batch();

    // Reduce: gather and deserialize every worker's result record.
    result_accumulator results;
    for (auto& future : futures) {
        const std::vector<std::byte> message = future.get();
        byte_reader reader{message};
        const wire::batch_result r = wire::decode_batch_result(reader);
        results.merge(r.reliable, r.rounds);
    }
    return results.stats();
}

engine_backend::engine_backend(std::size_t component_count,
                               const fault_tree_forest* forest,
                               oracle_factory make_oracle,
                               failure_sampler& sampler,
                               const engine_options& options)
    : sampler_(&sampler),
      engine_(component_count, forest, std::move(make_oracle), options) {}

assessment_stats engine_backend::assess(const application& app,
                                        const deployment_plan& plan,
                                        std::size_t rounds) {
    return engine_.assess(*sampler_, app, plan, rounds);
}

void engine_backend::reset_stream(std::uint64_t seed) {
    sampler_->reset(seed);
}

}  // namespace recloud
