// Pluggable transport under the assessment engine — the seam that turns the
// in-process MapReduce engine into a real fleet.
//
// The engine's recovery state machine (retry, re-dispatch, degrade; see
// exec/engine.hpp) never cared WHERE a batch ran — it only needs framed
// task bytes to go out and framed result bytes (or a failure) to come back.
// This interface makes that explicit:
//
//   * loopback transport — the historic in-process path: worker "nodes" are
//     thread-pool threads judging through worker_context. Behavior,
//     byte accounting, and chaos semantics are unchanged, so every existing
//     engine/recovery test keeps proving the same machine.
//   * socket transport — real worker processes (the recloud_worker
//     executable) on the far side of Unix-domain socket pairs. Workers are
//     RESTARTABLE: a dead process (chaos crash = real _exit, or an external
//     SIGKILL) is respawned and re-fed its environment, while the engine's
//     existing recovery re-dispatches the batch it was holding.
//
// Determinism (§6 contract) survives the process boundary because nothing
// random lives beyond the master: rounds are sampled once on the master,
// batch bytes are kept until a result validates, and a worker is a pure
// function framed task -> framed result. Which process judges a batch can
// change the timing, never the counts.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "assess/verdict_cache.hpp"
#include "exec/chaos.hpp"
#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"
#include "topology/links.hpp"

namespace recloud {

/// Transport-layer failure (spawn failure, dead peer, poisoned stream).
/// Deliberately NOT a serialize_error: the engine counts transport failures
/// as worker crashes, while serialize_error marks invalid frames.
class transport_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

enum class transport_kind : std::uint8_t {
    loopback,  ///< in-process thread-pool workers (the default)
    socket,    ///< recloud_worker processes over Unix-domain sockets
};

[[nodiscard]] const char* to_string(transport_kind kind) noexcept;

/// Everything a transport needs to stand up worker route-and-check
/// contexts. The loopback path uses the in-process closures directly; the
/// socket path serializes the structural parts (topology, forest, links,
/// chaos schedule, cache configuration) into an environment message the
/// worker process rebuilds its context from. All pointers are borrowed and
/// must outlive the transport.
struct transport_env {
    std::size_t component_count = 0;
    const fault_tree_forest* forest = nullptr;  ///< may be null
    /// In-process context setup (loopback; socket workers build a BFS
    /// oracle over the shipped topology instead).
    oracle_factory make_oracle;
    /// Per-worker private verdict caches. Loopback workers share
    /// `verdict_cache.support`; socket workers derive their own support
    /// from the shipped environment (only enabled/max_entries cross).
    verdict_cache_options verdict_cache{};
    /// Deterministic fault injection, applied per dispatch attempt. The
    /// loopback path injects in-process; the socket path ships the schedule
    /// options so the worker process injects on itself (a chaos crash
    /// becomes a real process death).
    const chaos_schedule* chaos = nullptr;
    /// Structural environment for cross-process transports (required by
    /// socket, ignored by loopback).
    const built_topology* topology = nullptr;
    const link_attachment* links = nullptr;
};

/// Per-worker observability totals accumulated across telemetry harvests
/// (socket transport; loopback workers write into the process registry
/// directly, so their fleet view is empty). Cache counters are cumulative
/// over the worker process's whole life, including torn-down contexts;
/// trace_dropped counts worker-side ring overflows.
struct worker_fleet_telemetry {
    struct worker_entry {
        std::uint64_t worker_id = 0;
        std::uint32_t pid = 0;
        verdict_cache_stats cache;
        std::uint64_t trace_dropped = 0;
        std::uint64_t harvests = 0;  ///< telemetry round-trips answered
    };
    std::vector<worker_entry> workers;  ///< sorted by worker_id
};

/// One assessment fleet: a fixed set of worker endpoints the engine
/// dispatches framed batches to. Lifecycle per assessment:
/// begin_assessment(setup) -> dispatch()* -> (all futures settled) ->
/// end_assessment(). The framed task span passed to dispatch() must stay
/// valid until its future is ready — the engine guarantees this by keeping
/// every batch's bytes until the assessment drains.
class engine_transport {
public:
    virtual ~engine_transport() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;
    [[nodiscard]] virtual std::size_t workers() const noexcept = 0;

    /// Ships the framed (application, plan) setup message to every worker;
    /// returns the setup bytes charged to the wire (engine accounting).
    virtual std::uint64_t begin_assessment(
        std::span<const std::byte> framed_setup) = 0;

    /// Releases per-assessment worker state and folds worker verdict-cache
    /// counters into cache_stats(). Only called once every dispatch future
    /// of the assessment has been waited on.
    virtual void end_assessment() = 0;

    /// Sends a framed task to `worker`. The future yields the framed result
    /// bytes — possibly mangled (the engine validates) — or throws:
    /// serialize_error counts as an invalid frame, anything else as a
    /// worker crash.
    [[nodiscard]] virtual std::future<std::vector<std::byte>> dispatch(
        std::size_t worker, std::span<const std::byte> framed_task,
        std::uint64_t batch, std::uint64_t attempt) = 0;

    /// Cumulative verdict-cache counters over every worker context this
    /// transport has hosted, or nullptr when workers run uncached (or their
    /// counters stay remote, as with socket workers).
    [[nodiscard]] virtual const verdict_cache_stats* cache_stats()
        const noexcept {
        return nullptr;
    }

    /// Pulls telemetry from every live worker process — registry deltas,
    /// cumulative verdict-cache counters, drained trace spans — and folds
    /// it into this process's registry/tracer, so loopback and socket runs
    /// report equivalent counters. No-op for in-process transports (their
    /// writes land in the shared registry directly). Pure observability:
    /// touches no RNG, sampler or verdict state (§6 contract), and worker
    /// failures during harvest are swallowed (the respawn machinery owns
    /// those).
    virtual void harvest_telemetry() {}

    /// Per-worker totals accumulated by harvest_telemetry(); empty for
    /// in-process transports.
    [[nodiscard]] virtual worker_fleet_telemetry fleet_telemetry() const {
        return {};
    }

    // ---- process-backed introspection (0 / empty for in-process) --------
    [[nodiscard]] virtual std::uint64_t respawns() const noexcept { return 0; }
    [[nodiscard]] virtual std::size_t live_worker_processes() const noexcept {
        return 0;
    }
    [[nodiscard]] virtual std::vector<int> worker_pids() const { return {}; }
};

struct socket_transport_options {
    /// Path to the recloud_worker executable; empty resolves through
    /// default_worker_binary().
    std::string worker_binary;
    /// Process respawns per worker slot before the slot is declared dead
    /// for good (the engine then degrades around it).
    std::size_t max_respawns = 16;
    /// How long to wait for a freshly spawned worker's hello (it is sent
    /// after the environment decoded, so it also proves the env round-trip).
    std::chrono::milliseconds spawn_timeout{10'000};
    /// Frames claiming payloads beyond this poison the connection.
    std::size_t max_frame_payload = std::size_t{1} << 30;
};

/// In-process transport: `workers` thread-pool workers, each judging
/// through its own worker_context. Throws std::invalid_argument when
/// workers == 0 (the historic thread_pool contract).
[[nodiscard]] std::unique_ptr<engine_transport> make_loopback_transport(
    std::size_t workers, const transport_env& env);

/// Process fleet: spawns `workers` recloud_worker processes over Unix
/// socket pairs. Requires env.topology. Throws transport_error when a
/// worker fails to start (bad binary path, env rejected).
[[nodiscard]] std::unique_ptr<engine_transport> make_socket_transport(
    std::size_t workers, const transport_env& env,
    const socket_transport_options& options = {});

/// Resolves the worker executable: $RECLOUD_WORKER_BIN if set, else
/// "recloud_worker" next to the current executable, else the bare name
/// (PATH lookup by execvp).
[[nodiscard]] std::string default_worker_binary();

}  // namespace recloud
