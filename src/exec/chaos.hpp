// Deterministic fault-injection harness for the execution engine.
//
// The paper's route-and-check engine is a distributed MapReduce-style
// system (§3.2.1, Figure 12); in any real deployment workers crash, stall,
// and return garbage. The recovery machinery in assessment_engine exists to
// survive exactly those faults — and machinery that only runs when
// production misbehaves is machinery that silently rots. This harness makes
// any worker fail, stall, or corrupt/truncate its result buffer on a
// *seeded* schedule, so tests and benches drive every recovery path
// deterministically.
//
// Determinism: the fault for a dispatch attempt depends only on
// (seed, batch id, attempt number, worker id) — never on wall clock or
// thread scheduling — so a chaos run is reproducible bit-for-bit.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace recloud {

/// Thrown inside a worker to simulate a crash mid-batch. The master treats
/// any exception crossing the worker boundary as a worker failure; this
/// type exists so tests can tell injected crashes from genuine bugs.
class chaos_crash : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// What the harness does to one dispatch attempt.
enum class chaos_fault : std::uint8_t {
    none,             ///< attempt proceeds normally
    crash,            ///< worker throws before judging any round
    stall,            ///< worker sleeps stall_duration before responding
    corrupt_result,   ///< one bit of the framed result buffer is flipped
    truncate_result,  ///< the framed result buffer loses its tail
};

struct chaos_options {
    std::uint64_t seed = 0;
    /// Per-attempt fault probabilities; their sum must be <= 1.
    double crash_rate = 0.0;
    double stall_rate = 0.0;
    double corrupt_rate = 0.0;
    double truncate_rate = 0.0;
    /// How long a stalled worker sleeps before answering. Pair with an
    /// engine batch_deadline below this to exercise straggler re-dispatch.
    std::chrono::milliseconds stall_duration{25};
};

/// Seeded, scheduling-independent fault schedule (see file comment).
class chaos_schedule {
public:
    explicit chaos_schedule(const chaos_options& options) : options_(options) {
        const double total = options.crash_rate + options.stall_rate +
                             options.corrupt_rate + options.truncate_rate;
        if (options.crash_rate < 0.0 || options.stall_rate < 0.0 ||
            options.corrupt_rate < 0.0 || options.truncate_rate < 0.0 ||
            total > 1.0) {
            throw std::invalid_argument{
                "chaos_schedule: rates must be >= 0 and sum to <= 1"};
        }
    }

    [[nodiscard]] const chaos_options& options() const noexcept { return options_; }

    /// The fault injected into dispatch attempt `attempt` of batch `batch`
    /// on worker `worker`. Pure function of (seed, batch, attempt, worker).
    [[nodiscard]] chaos_fault fault_for(std::uint64_t batch, std::uint64_t attempt,
                                        std::uint64_t worker) const noexcept {
        // 2^-53 * [0, 2^53) -> u uniform in [0, 1).
        const double u =
            static_cast<double>(mix(options_.seed, batch, attempt, worker) >> 11) *
            0x1.0p-53;
        double threshold = options_.crash_rate;
        if (u < threshold) {
            return chaos_fault::crash;
        }
        threshold += options_.stall_rate;
        if (u < threshold) {
            return chaos_fault::stall;
        }
        threshold += options_.corrupt_rate;
        if (u < threshold) {
            return chaos_fault::corrupt_result;
        }
        threshold += options_.truncate_rate;
        if (u < threshold) {
            return chaos_fault::truncate_result;
        }
        return chaos_fault::none;
    }

    /// Flips one deterministically chosen bit of `buffer` (keyed like
    /// fault_for, so the same attempt always corrupts the same bit).
    static void corrupt(std::vector<std::byte>& buffer, std::uint64_t batch,
                        std::uint64_t attempt, std::uint64_t worker) noexcept {
        if (buffer.empty()) {
            return;
        }
        const std::uint64_t h = mix(0xc02207, batch, attempt, worker);
        buffer[h % buffer.size()] ^=
            static_cast<std::byte>(1u << ((h >> 32) % 8));
    }

    /// Drops a deterministically chosen non-empty tail of `buffer`.
    static void truncate(std::vector<std::byte>& buffer, std::uint64_t batch,
                         std::uint64_t attempt, std::uint64_t worker) noexcept {
        if (buffer.empty()) {
            return;
        }
        const std::uint64_t h = mix(0x72ca7e, batch, attempt, worker);
        buffer.resize(h % buffer.size());  // always strictly shorter
    }

private:
    [[nodiscard]] static std::uint64_t mix(std::uint64_t seed, std::uint64_t a,
                                           std::uint64_t b,
                                           std::uint64_t c) noexcept {
        std::uint64_t state = seed;
        state = splitmix64_next(state) ^ (a * 0x9e3779b97f4a7c15ULL);
        state = splitmix64_next(state) ^ (b * 0xbf58476d1ce4e5b9ULL);
        state = splitmix64_next(state) ^ (c * 0x94d049bb133111ebULL);
        return splitmix64_next(state);
    }

    chaos_options options_;
};

}  // namespace recloud
