// A worker node's per-assessment route-and-check context: deserialized
// application and plan, its own round_state and oracle, an optional private
// verdict cache. Setting this up is the context setup the paper identifies
// as the per-assessment fixed cost (§3.2.1 / Figure 12).
//
// The same type backs every place a batch is judged: the loopback
// transport's in-process workers, the master's degraded-local fallback, and
// the recloud_worker executable on the far side of a socket — so every
// execution path runs byte-for-byte the same judge.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "app/requirement_eval.hpp"
#include "assess/verdict_cache.hpp"
#include "exec/chaos.hpp"
#include "faults/fault_tree.hpp"
#include "faults/round_state.hpp"
#include "routing/oracle.hpp"
#include "util/serialize.hpp"

namespace recloud {

class worker_context {
public:
    /// `framed_setup` is the framed wire::encode_application +
    /// wire::encode_plan message the master ships once per assessment.
    worker_context(std::span<const std::byte> framed_setup,
                   std::size_t component_count, const fault_tree_forest* forest,
                   const oracle_factory& make_oracle,
                   const verdict_cache_options& cache_options);

    /// Map step: judge every round in a framed serialized batch; returns
    /// the framed serialized result record. `chaos` (optional) injects the
    /// scheduled fault for this (batch, attempt, worker) dispatch — the
    /// in-process path; process-backed workers apply chaos themselves
    /// (a crash there is a real _exit).
    [[nodiscard]] std::vector<std::byte> run_batch(
        std::span<const std::byte> framed_task, const chaos_schedule* chaos,
        std::uint64_t batch_id, std::uint64_t attempt, std::uint64_t worker_id);

    /// Cross-plan rebind: swaps in the next assessment's (application, plan)
    /// while KEEPING the round_state, oracle, and verdict cache — the
    /// cache's bind() then retains the verdicts the swap delta provably
    /// cannot affect. Behaviourally equivalent to destroying this context
    /// and constructing a fresh one from the same blob (bit-identical
    /// results either way); only the warm state differs.
    void rebind(std::span<const std::byte> framed_setup);

    /// Private verdict-cache counters (engaged iff the cache is on).
    [[nodiscard]] const verdict_cache_stats* cache_stats() const noexcept {
        return cache_ ? &cache_->stats() : nullptr;
    }

private:
    [[nodiscard]] static application make_app(
        std::span<const std::byte> framed_setup);
    [[nodiscard]] static deployment_plan make_plan(
        std::span<const std::byte> framed_setup);

    application app_;
    deployment_plan plan_;
    round_state rs_;
    std::unique_ptr<reachability_oracle> oracle_;
    requirement_evaluator evaluator_;
    /// Private per-context verdict memoization; bound once at construction
    /// (the context lives for exactly one (app, plan) assessment).
    std::optional<verdict_cache> cache_;
    /// A worker node processes its batches sequentially; a pool may
    /// schedule two batches of the same worker on different threads, so the
    /// context serializes them itself.
    std::mutex busy_;
};

}  // namespace recloud
