#include "exec/worker_context.hpp"

#include <thread>
#include <utility>

#include "exec/engine.hpp"
#include "obs/trace.hpp"

namespace recloud {

worker_context::worker_context(std::span<const std::byte> framed_setup,
                               std::size_t component_count,
                               const fault_tree_forest* forest,
                               const oracle_factory& make_oracle,
                               const verdict_cache_options& cache_options)
    : app_(make_app(framed_setup)),
      plan_(make_plan(framed_setup)),
      rs_(component_count, forest),
      oracle_(make_oracle()),
      evaluator_(app_, plan_) {
    if (cache_options.enabled && cache_options.support != nullptr) {
        cache_.emplace(*cache_options.support, cache_options.max_entries,
                       cache_options.cross_plan);
        cache_->bind(app_, plan_);
    }
}

void worker_context::rebind(std::span<const std::byte> framed_setup) {
    const std::lock_guard lock{busy_};
    app_ = make_app(framed_setup);
    plan_ = make_plan(framed_setup);
    evaluator_ = requirement_evaluator{app_, plan_};
    if (cache_) {
        cache_->bind(app_, plan_);
    }
}

application worker_context::make_app(std::span<const std::byte> framed_setup) {
    byte_reader reader{unframe_message(framed_setup)};
    return wire::decode_application(reader);
}

deployment_plan worker_context::make_plan(
    std::span<const std::byte> framed_setup) {
    byte_reader reader{unframe_message(framed_setup)};
    (void)wire::decode_application(reader);  // skip the app section
    return wire::decode_plan(reader);
}

std::vector<std::byte> worker_context::run_batch(
    std::span<const std::byte> framed_task, const chaos_schedule* chaos,
    std::uint64_t batch_id, std::uint64_t attempt, std::uint64_t worker_id) {
    const std::lock_guard lock{busy_};
    RECLOUD_SPAN("engine.batch");
    const chaos_fault fault =
        chaos != nullptr ? chaos->fault_for(batch_id, attempt, worker_id)
                         : chaos_fault::none;
    if (fault == chaos_fault::crash) {
        throw chaos_crash{"injected worker crash"};
    }
    if (fault == chaos_fault::stall) {
        std::this_thread::sleep_for(chaos->options().stall_duration);
    }
    byte_reader reader{unframe_message(framed_task)};
    const auto rounds = wire::decode_round_batch(reader);
    wire::batch_result result;
    verdict_cache* vc = cache_ ? &*cache_ : nullptr;
    for (const auto& failed : rounds) {
        ++result.rounds;
        if (cached_reliable_in_round(vc, failed, rs_, *oracle_, plan_,
                                     evaluator_)) {
            ++result.reliable;
        }
    }
    byte_writer writer;
    wire::encode_batch_result(writer, result);
    std::vector<std::byte> framed = frame_message(writer.bytes());
    if (fault == chaos_fault::corrupt_result) {
        chaos_schedule::corrupt(framed, batch_id, attempt, worker_id);
    } else if (fault == chaos_fault::truncate_result) {
        chaos_schedule::truncate(framed, batch_id, attempt, worker_id);
    }
    return framed;
}

}  // namespace recloud
