#include "exec/worker_protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "util/serialize.hpp"

namespace recloud {

namespace {

/// Envelope prefix: kind (u8) + batch (u64) + attempt (u64) +
/// trace_id (u64) + span_id (u64).
constexpr std::size_t envelope_prefix_bytes = 1 + 8 + 8 + 8 + 8;

}  // namespace

std::vector<std::byte> pack_envelope(worker_msg kind, std::uint64_t batch,
                                     std::uint64_t attempt,
                                     std::span<const std::byte> blob,
                                     std::uint64_t trace_id,
                                     std::uint64_t span_id) {
    byte_writer writer;
    writer.reserve(envelope_prefix_bytes + blob.size());
    writer.write_u8(static_cast<std::uint8_t>(kind));
    writer.write_u64(batch);
    writer.write_u64(attempt);
    writer.write_u64(trace_id);
    writer.write_u64(span_id);
    std::vector<std::byte> payload = writer.take();
    payload.insert(payload.end(), blob.begin(), blob.end());
    return frame_message(payload);
}

envelope unpack_envelope(std::span<const std::byte> framed) {
    const std::span<const std::byte> payload = unframe_message(framed);
    byte_reader reader{payload};
    envelope msg;
    const std::uint8_t kind = reader.read_u8();
    if (kind < static_cast<std::uint8_t>(worker_msg::hello) ||
        kind > static_cast<std::uint8_t>(worker_msg::telemetry)) {
        throw serialize_error{"envelope: unknown message kind"};
    }
    msg.kind = static_cast<worker_msg>(kind);
    msg.batch = reader.read_u64();
    msg.attempt = reader.read_u64();
    msg.trace_id = reader.read_u64();
    msg.span_id = reader.read_u64();
    msg.blob.assign(payload.begin() + envelope_prefix_bytes, payload.end());
    return msg;
}

namespace {

void encode_topology(byte_writer& out, const built_topology& topo) {
    const network_graph& g = topo.graph;
    out.write_varint(g.node_count());
    for (node_id n = 0; n < g.node_count(); ++n) {
        out.write_u8(static_cast<std::uint8_t>(g.kind(n)));
    }
    // Edges in edge-id order: re-adding them in this order reproduces the
    // master's edge ids (they are assigned by insertion).
    out.write_varint(g.edge_count());
    for (std::uint32_t e = 0; e < g.edge_count(); ++e) {
        const auto [a, b] = g.edge_endpoints(e);
        out.write_varint(a);
        out.write_varint(b);
    }
    out.write_uint_vector(std::span<const node_id>{topo.hosts});
    out.write_uint_vector(std::span<const node_id>{topo.border_switches});
    // +1 sentinel: 0 encodes "no external node".
    out.write_varint(topo.external == invalid_node
                         ? 0
                         : std::uint64_t{topo.external} + 1);
    out.write_string(topo.name);
}

built_topology decode_topology(byte_reader& in) {
    built_topology topo;
    const std::uint64_t nodes = in.read_length_prefix();
    for (std::uint64_t n = 0; n < nodes; ++n) {
        const std::uint8_t kind = in.read_u8();
        if (kind > static_cast<std::uint8_t>(node_kind::external)) {
            throw serialize_error{"topology: unknown node kind"};
        }
        (void)topo.graph.add_node(static_cast<node_kind>(kind));
    }
    const std::uint64_t edges = in.read_length_prefix(2);
    for (std::uint64_t e = 0; e < edges; ++e) {
        const auto a = static_cast<node_id>(in.read_varint());
        const auto b = static_cast<node_id>(in.read_varint());
        if (a >= nodes || b >= nodes) {
            throw serialize_error{"topology: edge endpoint out of range"};
        }
        topo.graph.add_edge(a, b);
    }
    topo.graph.freeze();
    topo.hosts = in.read_uint_vector<node_id>();
    topo.border_switches = in.read_uint_vector<node_id>();
    const std::uint64_t external = in.read_varint();
    topo.external =
        external == 0 ? invalid_node : static_cast<node_id>(external - 1);
    topo.name = in.read_string();
    return topo;
}

void encode_forest(byte_writer& out, const fault_tree_forest& forest) {
    out.write_varint(forest.tree_node_count());
    for (tree_node_id id = 0; id < forest.tree_node_count(); ++id) {
        const fault_tree_forest::node_view n = forest.node(id);
        out.write_u8(static_cast<std::uint8_t>(n.kind));
        if (n.kind == gate_kind::leaf) {
            out.write_varint(n.leaf);
        } else {
            out.write_varint(n.k);
            out.write_uint_vector(n.children);
        }
    }
    out.write_varint(forest.component_count());
    for (component_id c = 0; c < forest.component_count(); ++c) {
        const tree_node_id root = forest.root_of(c);
        // +1 sentinel: 0 encodes "no tree".
        out.write_varint(root == invalid_tree_node ? 0
                                                   : std::uint64_t{root} + 1);
    }
}

fault_tree_forest decode_forest(byte_reader& in) {
    const std::uint64_t nodes = in.read_length_prefix(2);
    // Deferred construction: component count trails the node pool on the
    // wire, so stage nodes first.
    struct staged_node {
        gate_kind kind;
        std::uint32_t k = 0;
        component_id leaf = invalid_node;
        std::vector<tree_node_id> children;
    };
    std::vector<staged_node> staged;
    staged.reserve(nodes);
    for (std::uint64_t id = 0; id < nodes; ++id) {
        staged_node n{};
        const std::uint8_t kind = in.read_u8();
        if (kind > static_cast<std::uint8_t>(gate_kind::k_of_n_gate)) {
            throw serialize_error{"forest: unknown gate kind"};
        }
        n.kind = static_cast<gate_kind>(kind);
        if (n.kind == gate_kind::leaf) {
            n.leaf = static_cast<component_id>(in.read_varint());
        } else {
            n.k = static_cast<std::uint32_t>(in.read_varint());
            n.children = in.read_uint_vector<tree_node_id>();
            for (const tree_node_id child : n.children) {
                if (child >= id) {
                    throw serialize_error{
                        "forest: child id not smaller than gate id"};
                }
            }
        }
        staged.push_back(std::move(n));
    }
    const std::uint64_t components = in.read_length_prefix();
    fault_tree_forest forest{components};
    for (std::uint64_t id = 0; id < nodes; ++id) {
        staged_node& n = staged[id];
        tree_node_id rebuilt = invalid_tree_node;
        switch (n.kind) {
            case gate_kind::leaf:
                rebuilt = forest.add_leaf(n.leaf);
                break;
            case gate_kind::or_gate:
                rebuilt = forest.add_or(std::move(n.children));
                break;
            case gate_kind::and_gate:
                rebuilt = forest.add_and(std::move(n.children));
                break;
            case gate_kind::k_of_n_gate:
                rebuilt = forest.add_k_of_n(n.k, std::move(n.children));
                break;
        }
        if (rebuilt != id) {
            throw serialize_error{"forest: rebuilt node id diverged"};
        }
    }
    for (component_id c = 0; c < components; ++c) {
        const std::uint64_t root = in.read_varint();
        if (root != 0) {
            if (root - 1 >= nodes) {
                throw serialize_error{"forest: root out of range"};
            }
            forest.attach(c, static_cast<tree_node_id>(root - 1));
        }
    }
    return forest;
}

}  // namespace

std::vector<std::byte> encode_worker_environment(const transport_env& env,
                                                 std::uint64_t worker_id) {
    if (env.topology == nullptr) {
        throw transport_error{
            "socket transport requires engine_options.topology"};
    }
    byte_writer out;
    out.write_u64(worker_id);
    out.write_varint(env.component_count);
    encode_topology(out, *env.topology);
    out.write_bool(env.forest != nullptr);
    if (env.forest != nullptr) {
        encode_forest(out, *env.forest);
    }
    out.write_bool(env.links != nullptr);
    if (env.links != nullptr) {
        out.write_uint_vector(
            std::span<const component_id>{env.links->component_of_edge});
    }
    out.write_bool(env.chaos != nullptr);
    if (env.chaos != nullptr) {
        const chaos_options& c = env.chaos->options();
        out.write_u64(c.seed);
        out.write_f64(c.crash_rate);
        out.write_f64(c.stall_rate);
        out.write_f64(c.corrupt_rate);
        out.write_f64(c.truncate_rate);
        out.write_varint(static_cast<std::uint64_t>(c.stall_duration.count()));
    }
    out.write_bool(env.verdict_cache.enabled);
    if (env.verdict_cache.enabled) {
        out.write_varint(env.verdict_cache.max_entries);
        out.write_bool(env.verdict_cache.cross_plan);
    }
    // Observability enablement is sampled from the process-wide registry /
    // tracer at encode time (the blob is built once per fleet and reused
    // for respawns, so workers inherit the state the fleet started with).
    out.write_bool(obs::metrics_registry::global().enabled());
    out.write_bool(obs::tracer::global().enabled());
    return out.take();
}

worker_environment decode_worker_environment(std::span<const std::byte> blob) {
    byte_reader in{blob};
    worker_environment env;
    env.worker_id = in.read_u64();
    env.component_count = static_cast<std::size_t>(in.read_varint());
    env.topology = decode_topology(in);
    if (in.read_bool()) {
        env.forest.emplace(decode_forest(in));
    }
    if (in.read_bool()) {
        link_attachment links;
        links.component_of_edge = in.read_uint_vector<component_id>();
        if (links.component_of_edge.size() != env.topology.graph.edge_count()) {
            throw serialize_error{"links: per-edge table size mismatch"};
        }
        env.links.emplace(std::move(links));
    }
    env.chaos_enabled = in.read_bool();
    if (env.chaos_enabled) {
        env.chaos.seed = in.read_u64();
        env.chaos.crash_rate = in.read_f64();
        env.chaos.stall_rate = in.read_f64();
        env.chaos.corrupt_rate = in.read_f64();
        env.chaos.truncate_rate = in.read_f64();
        env.chaos.stall_duration =
            std::chrono::milliseconds{static_cast<std::int64_t>(in.read_varint())};
    }
    env.cache_enabled = in.read_bool();
    if (env.cache_enabled) {
        env.cache_max_entries = static_cast<std::size_t>(in.read_varint());
        env.cache_cross_plan = in.read_bool();
    }
    env.metrics_enabled = in.read_bool();
    env.trace_enabled = in.read_bool();
    if (!in.at_end()) {
        throw serialize_error{"worker environment: trailing bytes"};
    }
    return env;
}

namespace {

void encode_cache_stats(byte_writer& out, const verdict_cache_stats& s) {
    out.write_u64(s.rounds);
    out.write_u64(s.empty_hits);
    out.write_u64(s.hits);
    out.write_u64(s.misses);
    out.write_u64(s.insertions);
    out.write_u64(s.evictions);
    out.write_u64(s.rebinds);
    out.write_u64(s.warm_rebinds);
    out.write_u64(s.cold_rebinds);
    out.write_u64(s.cross_plan_hits);
    out.write_u64(s.retained_entries);
    out.write_u64(s.support_size);
}

verdict_cache_stats decode_cache_stats(byte_reader& in) {
    verdict_cache_stats s;
    s.rounds = in.read_u64();
    s.empty_hits = in.read_u64();
    s.hits = in.read_u64();
    s.misses = in.read_u64();
    s.insertions = in.read_u64();
    s.evictions = in.read_u64();
    s.rebinds = in.read_u64();
    s.warm_rebinds = in.read_u64();
    s.cold_rebinds = in.read_u64();
    s.cross_plan_hits = in.read_u64();
    s.retained_entries = in.read_u64();
    s.support_size = in.read_u64();
    return s;
}

void encode_metric_entries(byte_writer& out,
                           const std::vector<obs::metric_entry>& metrics) {
    out.write_varint(metrics.size());
    for (const obs::metric_entry& e : metrics) {
        out.write_string(e.name);
        out.write_u8(static_cast<std::uint8_t>(e.kind));
        if (e.kind != obs::metric_kind::histogram) {
            out.write_varint(e.value);
            continue;
        }
        const obs::histogram_snapshot& h = e.histogram;
        out.write_varint(h.count);
        out.write_varint(h.sum);
        out.write_varint(h.min);
        out.write_varint(h.max);
        // Sparse buckets: log2 histograms of durations touch a handful of
        // the 64 buckets.
        std::uint64_t nonzero = 0;
        for (const std::uint64_t b : h.buckets) {
            nonzero += b != 0 ? 1 : 0;
        }
        out.write_varint(nonzero);
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (h.buckets[b] != 0) {
                out.write_u8(static_cast<std::uint8_t>(b));
                out.write_varint(h.buckets[b]);
            }
        }
    }
}

std::vector<obs::metric_entry> decode_metric_entries(byte_reader& in) {
    const std::uint64_t count = in.read_length_prefix(2);
    std::vector<obs::metric_entry> metrics;
    metrics.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        obs::metric_entry e;
        e.name = in.read_string();
        const std::uint8_t kind = in.read_u8();
        if (kind > static_cast<std::uint8_t>(obs::metric_kind::histogram)) {
            throw serialize_error{"telemetry: unknown metric kind"};
        }
        e.kind = static_cast<obs::metric_kind>(kind);
        if (e.kind != obs::metric_kind::histogram) {
            e.value = in.read_varint();
        } else {
            obs::histogram_snapshot& h = e.histogram;
            h.count = in.read_varint();
            h.sum = in.read_varint();
            h.min = in.read_varint();
            h.max = in.read_varint();
            const std::uint64_t nonzero = in.read_length_prefix(2);
            for (std::uint64_t b = 0; b < nonzero; ++b) {
                const std::uint8_t bucket = in.read_u8();
                if (bucket >= h.buckets.size()) {
                    throw serialize_error{"telemetry: bucket out of range"};
                }
                h.buckets[bucket] = in.read_varint();
            }
        }
        metrics.push_back(std::move(e));
    }
    return metrics;
}

void encode_trace_capture(byte_writer& out, const obs::process_capture& c) {
    out.write_u32(c.pid);
    out.write_string(c.process_name);
    out.write_u64(c.epoch_ns);
    out.write_varint(c.dropped);
    out.write_varint(c.thread_names.size());
    for (const auto& [tid, name] : c.thread_names) {
        out.write_varint(tid);
        out.write_string(name);
    }
    out.write_varint(c.spans.size());
    for (const obs::trace_span& s : c.spans) {
        out.write_string(s.name);
        out.write_varint(s.tid);
        out.write_u64(s.start_ns);
        out.write_u64(s.dur_ns);
        out.write_u64(s.flow_id);
        out.write_u8(s.flow_phase);
    }
}

obs::process_capture decode_trace_capture(byte_reader& in) {
    obs::process_capture c;
    c.pid = in.read_u32();
    c.process_name = in.read_string();
    c.epoch_ns = in.read_u64();
    c.dropped = in.read_varint();
    const std::uint64_t names = in.read_length_prefix(2);
    c.thread_names.reserve(names);
    for (std::uint64_t i = 0; i < names; ++i) {
        const auto tid = static_cast<std::uint32_t>(in.read_varint());
        c.thread_names.emplace_back(tid, in.read_string());
    }
    const std::uint64_t spans = in.read_length_prefix(2);
    c.spans.reserve(spans);
    for (std::uint64_t i = 0; i < spans; ++i) {
        obs::trace_span s;
        s.name = in.read_string();
        s.tid = static_cast<std::uint32_t>(in.read_varint());
        s.start_ns = in.read_u64();
        s.dur_ns = in.read_u64();
        s.flow_id = in.read_u64();
        s.flow_phase = in.read_u8();
        if (s.flow_phase > obs::flow_finish) {
            throw serialize_error{"telemetry: unknown flow phase"};
        }
        c.spans.push_back(std::move(s));
    }
    return c;
}

}  // namespace

std::vector<std::byte> encode_worker_telemetry(const worker_telemetry& t) {
    byte_writer out;
    out.write_u64(t.worker_id);
    out.write_u32(t.pid);
    encode_cache_stats(out, t.cache);
    encode_metric_entries(out, t.metrics);
    encode_trace_capture(out, t.trace);
    return out.take();
}

worker_telemetry decode_worker_telemetry(std::span<const std::byte> blob) {
    byte_reader in{blob};
    worker_telemetry t;
    t.worker_id = in.read_u64();
    t.pid = in.read_u32();
    t.cache = decode_cache_stats(in);
    t.metrics = decode_metric_entries(in);
    t.trace = decode_trace_capture(in);
    if (!in.at_end()) {
        throw serialize_error{"worker telemetry: trailing bytes"};
    }
    return t;
}

void fd_write_all(int fd, std::span<const std::byte> bytes) {
    std::size_t written = 0;
    while (written < bytes.size()) {
        // send + MSG_NOSIGNAL, not write: the peer may die at any moment
        // (that is the chaos contract) and a dead peer must surface as
        // EPIPE -> transport_error, never as a process-killing SIGPIPE.
        const ssize_t n = ::send(fd, bytes.data() + written,
                                 bytes.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw transport_error{std::string{"socket write failed: "} +
                                  std::strerror(errno)};
        }
        written += static_cast<std::size_t>(n);
    }
}

}  // namespace recloud
