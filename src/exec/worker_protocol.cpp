#include "exec/worker_protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "util/serialize.hpp"

namespace recloud {

namespace {

/// Envelope prefix: kind (u8) + batch (u64) + attempt (u64).
constexpr std::size_t envelope_prefix_bytes = 1 + 8 + 8;

}  // namespace

std::vector<std::byte> pack_envelope(worker_msg kind, std::uint64_t batch,
                                     std::uint64_t attempt,
                                     std::span<const std::byte> blob) {
    byte_writer writer;
    writer.reserve(envelope_prefix_bytes + blob.size());
    writer.write_u8(static_cast<std::uint8_t>(kind));
    writer.write_u64(batch);
    writer.write_u64(attempt);
    std::vector<std::byte> payload = writer.take();
    payload.insert(payload.end(), blob.begin(), blob.end());
    return frame_message(payload);
}

envelope unpack_envelope(std::span<const std::byte> framed) {
    const std::span<const std::byte> payload = unframe_message(framed);
    byte_reader reader{payload};
    envelope msg;
    const std::uint8_t kind = reader.read_u8();
    if (kind < static_cast<std::uint8_t>(worker_msg::hello) ||
        kind > static_cast<std::uint8_t>(worker_msg::rebind)) {
        throw serialize_error{"envelope: unknown message kind"};
    }
    msg.kind = static_cast<worker_msg>(kind);
    msg.batch = reader.read_u64();
    msg.attempt = reader.read_u64();
    msg.blob.assign(payload.begin() + envelope_prefix_bytes, payload.end());
    return msg;
}

namespace {

void encode_topology(byte_writer& out, const built_topology& topo) {
    const network_graph& g = topo.graph;
    out.write_varint(g.node_count());
    for (node_id n = 0; n < g.node_count(); ++n) {
        out.write_u8(static_cast<std::uint8_t>(g.kind(n)));
    }
    // Edges in edge-id order: re-adding them in this order reproduces the
    // master's edge ids (they are assigned by insertion).
    out.write_varint(g.edge_count());
    for (std::uint32_t e = 0; e < g.edge_count(); ++e) {
        const auto [a, b] = g.edge_endpoints(e);
        out.write_varint(a);
        out.write_varint(b);
    }
    out.write_uint_vector(std::span<const node_id>{topo.hosts});
    out.write_uint_vector(std::span<const node_id>{topo.border_switches});
    // +1 sentinel: 0 encodes "no external node".
    out.write_varint(topo.external == invalid_node
                         ? 0
                         : std::uint64_t{topo.external} + 1);
    out.write_string(topo.name);
}

built_topology decode_topology(byte_reader& in) {
    built_topology topo;
    const std::uint64_t nodes = in.read_length_prefix();
    for (std::uint64_t n = 0; n < nodes; ++n) {
        const std::uint8_t kind = in.read_u8();
        if (kind > static_cast<std::uint8_t>(node_kind::external)) {
            throw serialize_error{"topology: unknown node kind"};
        }
        (void)topo.graph.add_node(static_cast<node_kind>(kind));
    }
    const std::uint64_t edges = in.read_length_prefix(2);
    for (std::uint64_t e = 0; e < edges; ++e) {
        const auto a = static_cast<node_id>(in.read_varint());
        const auto b = static_cast<node_id>(in.read_varint());
        if (a >= nodes || b >= nodes) {
            throw serialize_error{"topology: edge endpoint out of range"};
        }
        topo.graph.add_edge(a, b);
    }
    topo.graph.freeze();
    topo.hosts = in.read_uint_vector<node_id>();
    topo.border_switches = in.read_uint_vector<node_id>();
    const std::uint64_t external = in.read_varint();
    topo.external =
        external == 0 ? invalid_node : static_cast<node_id>(external - 1);
    topo.name = in.read_string();
    return topo;
}

void encode_forest(byte_writer& out, const fault_tree_forest& forest) {
    out.write_varint(forest.tree_node_count());
    for (tree_node_id id = 0; id < forest.tree_node_count(); ++id) {
        const fault_tree_forest::node_view n = forest.node(id);
        out.write_u8(static_cast<std::uint8_t>(n.kind));
        if (n.kind == gate_kind::leaf) {
            out.write_varint(n.leaf);
        } else {
            out.write_varint(n.k);
            out.write_uint_vector(n.children);
        }
    }
    out.write_varint(forest.component_count());
    for (component_id c = 0; c < forest.component_count(); ++c) {
        const tree_node_id root = forest.root_of(c);
        // +1 sentinel: 0 encodes "no tree".
        out.write_varint(root == invalid_tree_node ? 0
                                                   : std::uint64_t{root} + 1);
    }
}

fault_tree_forest decode_forest(byte_reader& in) {
    const std::uint64_t nodes = in.read_length_prefix(2);
    // Deferred construction: component count trails the node pool on the
    // wire, so stage nodes first.
    struct staged_node {
        gate_kind kind;
        std::uint32_t k = 0;
        component_id leaf = invalid_node;
        std::vector<tree_node_id> children;
    };
    std::vector<staged_node> staged;
    staged.reserve(nodes);
    for (std::uint64_t id = 0; id < nodes; ++id) {
        staged_node n{};
        const std::uint8_t kind = in.read_u8();
        if (kind > static_cast<std::uint8_t>(gate_kind::k_of_n_gate)) {
            throw serialize_error{"forest: unknown gate kind"};
        }
        n.kind = static_cast<gate_kind>(kind);
        if (n.kind == gate_kind::leaf) {
            n.leaf = static_cast<component_id>(in.read_varint());
        } else {
            n.k = static_cast<std::uint32_t>(in.read_varint());
            n.children = in.read_uint_vector<tree_node_id>();
            for (const tree_node_id child : n.children) {
                if (child >= id) {
                    throw serialize_error{
                        "forest: child id not smaller than gate id"};
                }
            }
        }
        staged.push_back(std::move(n));
    }
    const std::uint64_t components = in.read_length_prefix();
    fault_tree_forest forest{components};
    for (std::uint64_t id = 0; id < nodes; ++id) {
        staged_node& n = staged[id];
        tree_node_id rebuilt = invalid_tree_node;
        switch (n.kind) {
            case gate_kind::leaf:
                rebuilt = forest.add_leaf(n.leaf);
                break;
            case gate_kind::or_gate:
                rebuilt = forest.add_or(std::move(n.children));
                break;
            case gate_kind::and_gate:
                rebuilt = forest.add_and(std::move(n.children));
                break;
            case gate_kind::k_of_n_gate:
                rebuilt = forest.add_k_of_n(n.k, std::move(n.children));
                break;
        }
        if (rebuilt != id) {
            throw serialize_error{"forest: rebuilt node id diverged"};
        }
    }
    for (component_id c = 0; c < components; ++c) {
        const std::uint64_t root = in.read_varint();
        if (root != 0) {
            if (root - 1 >= nodes) {
                throw serialize_error{"forest: root out of range"};
            }
            forest.attach(c, static_cast<tree_node_id>(root - 1));
        }
    }
    return forest;
}

}  // namespace

std::vector<std::byte> encode_worker_environment(const transport_env& env,
                                                 std::uint64_t worker_id) {
    if (env.topology == nullptr) {
        throw transport_error{
            "socket transport requires engine_options.topology"};
    }
    byte_writer out;
    out.write_u64(worker_id);
    out.write_varint(env.component_count);
    encode_topology(out, *env.topology);
    out.write_bool(env.forest != nullptr);
    if (env.forest != nullptr) {
        encode_forest(out, *env.forest);
    }
    out.write_bool(env.links != nullptr);
    if (env.links != nullptr) {
        out.write_uint_vector(
            std::span<const component_id>{env.links->component_of_edge});
    }
    out.write_bool(env.chaos != nullptr);
    if (env.chaos != nullptr) {
        const chaos_options& c = env.chaos->options();
        out.write_u64(c.seed);
        out.write_f64(c.crash_rate);
        out.write_f64(c.stall_rate);
        out.write_f64(c.corrupt_rate);
        out.write_f64(c.truncate_rate);
        out.write_varint(static_cast<std::uint64_t>(c.stall_duration.count()));
    }
    out.write_bool(env.verdict_cache.enabled);
    if (env.verdict_cache.enabled) {
        out.write_varint(env.verdict_cache.max_entries);
        out.write_bool(env.verdict_cache.cross_plan);
    }
    return out.take();
}

worker_environment decode_worker_environment(std::span<const std::byte> blob) {
    byte_reader in{blob};
    worker_environment env;
    env.worker_id = in.read_u64();
    env.component_count = static_cast<std::size_t>(in.read_varint());
    env.topology = decode_topology(in);
    if (in.read_bool()) {
        env.forest.emplace(decode_forest(in));
    }
    if (in.read_bool()) {
        link_attachment links;
        links.component_of_edge = in.read_uint_vector<component_id>();
        if (links.component_of_edge.size() != env.topology.graph.edge_count()) {
            throw serialize_error{"links: per-edge table size mismatch"};
        }
        env.links.emplace(std::move(links));
    }
    env.chaos_enabled = in.read_bool();
    if (env.chaos_enabled) {
        env.chaos.seed = in.read_u64();
        env.chaos.crash_rate = in.read_f64();
        env.chaos.stall_rate = in.read_f64();
        env.chaos.corrupt_rate = in.read_f64();
        env.chaos.truncate_rate = in.read_f64();
        env.chaos.stall_duration =
            std::chrono::milliseconds{static_cast<std::int64_t>(in.read_varint())};
    }
    env.cache_enabled = in.read_bool();
    if (env.cache_enabled) {
        env.cache_max_entries = static_cast<std::size_t>(in.read_varint());
        env.cache_cross_plan = in.read_bool();
    }
    if (!in.at_end()) {
        throw serialize_error{"worker environment: trailing bytes"};
    }
    return env;
}

void fd_write_all(int fd, std::span<const std::byte> bytes) {
    std::size_t written = 0;
    while (written < bytes.size()) {
        // send + MSG_NOSIGNAL, not write: the peer may die at any moment
        // (that is the chaos contract) and a dead peer must surface as
        // EPIPE -> transport_error, never as a process-killing SIGPIPE.
        const ssize_t n = ::send(fd, bytes.data() + written,
                                 bytes.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw transport_error{std::string{"socket write failed: "} +
                                  std::strerror(errno)};
        }
        written += static_cast<std::size_t>(n);
    }
}

}  // namespace recloud
