// Master <-> recloud_worker wire protocol (the socket transport's frames).
//
// Everything on the socket is an OUTER ENVELOPE: a frame_message-framed
// payload `[u8 kind][u64 batch][u64 attempt][blob...]`. The envelope is the
// transport's integrity layer — its header makes the stream self-delimiting
// (frame_assembler) and its checksum covers whatever blob the worker chose
// to send. Task and result blobs are themselves framed engine messages
// (the INNER frame the engine validates end-to-end); chaos corruption
// mangles the inner frame only, so a poisoned result still travels inside a
// valid envelope and surfaces as the engine's invalid_frames path instead
// of desynchronizing the stream.
//
// Handshake: master sends `env` right after spawning; the worker answers
// `hello` only after the environment decoded and its route-and-check
// support is built — so a completed handshake proves the whole environment
// round-trip, not just liveness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "assess/verdict_cache.hpp"
#include "exec/chaos.hpp"
#include "exec/transport.hpp"
#include "faults/fault_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/graph.hpp"
#include "topology/links.hpp"

namespace recloud {

enum class worker_msg : std::uint8_t {
    hello = 1,     ///< worker -> master: environment accepted, ready
    env = 2,       ///< master -> worker: serialized worker_environment
    setup = 3,     ///< master -> worker: framed (application, plan) setup
    task = 4,      ///< master -> worker: framed round batch (batch, attempt)
    result = 5,    ///< worker -> master: framed batch result (batch, attempt)
    teardown = 6,  ///< master -> worker: drop the per-assessment context
    shutdown = 7,  ///< master -> worker: exit cleanly
    rebind = 8,    ///< master -> worker: framed (application, plan) setup for
                   ///< an EXISTING context — rebinds the verdict cache
                   ///< in-place (cross-plan retention) instead of rebuilding
                   ///< the route-and-check state. Equivalent to setup when
                   ///< the worker holds no context (respawned workers).
    telemetry = 9,  ///< master -> worker: empty-blob harvest request;
                    ///< worker -> master: encoded worker_telemetry reply
                    ///< (registry delta + cumulative cache stats + drained
                    ///< trace spans). Pure observability: touches no RNG,
                    ///< sampler or verdict state (§6 contract).
};

struct envelope {
    worker_msg kind = worker_msg::hello;
    std::uint64_t batch = 0;
    std::uint64_t attempt = 0;
    /// Distributed-trace propagation (task envelopes): the master's capture
    /// id and the dispatching span's flow id. Workers tag their batch spans
    /// with the same flow id so the merged export stitches dispatch ->
    /// execute across the process boundary. Zero = no active capture.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::vector<std::byte> blob;
};

/// Builds the framed outer envelope ready for the socket.
[[nodiscard]] std::vector<std::byte> pack_envelope(
    worker_msg kind, std::uint64_t batch, std::uint64_t attempt,
    std::span<const std::byte> blob, std::uint64_t trace_id = 0,
    std::uint64_t span_id = 0);

/// Parses a complete outer frame (as popped from a frame_assembler).
/// Throws serialize_error on a malformed envelope.
[[nodiscard]] envelope unpack_envelope(std::span<const std::byte> framed);

/// The structural environment a worker process rebuilds its route-and-check
/// context from: decoded topology/forest/links plus the chaos schedule and
/// verdict-cache configuration. The decoded forest reproduces the master's
/// tree node ids 1:1 (children always have smaller ids, so re-adding in id
/// order is an identity).
struct worker_environment {
    std::uint64_t worker_id = 0;
    std::size_t component_count = 0;
    built_topology topology;
    std::optional<fault_tree_forest> forest;
    std::optional<link_attachment> links;
    bool chaos_enabled = false;
    chaos_options chaos{};
    bool cache_enabled = false;
    std::size_t cache_max_entries = 0;
    bool cache_cross_plan = false;
    /// Observability enablement mirrored from the master's process-wide
    /// registry/tracer state at encode time, so workers count and trace
    /// exactly when the master does. Respawned workers receive the same
    /// cached env blob (mid-run toggles do not propagate — documented in
    /// DESIGN.md §12).
    bool metrics_enabled = false;
    bool trace_enabled = false;
};

/// Serializes the master-side transport_env (requires env.topology).
[[nodiscard]] std::vector<std::byte> encode_worker_environment(
    const transport_env& env, std::uint64_t worker_id);

/// Decodes an `env` blob. Throws serialize_error on malformed input.
[[nodiscard]] worker_environment decode_worker_environment(
    std::span<const std::byte> blob);

/// One worker process's observability payload for a telemetry harvest
/// round-trip. Metrics are the registry DELTA since the previous harvest
/// (the worker snapshots then resets its registry); cache stats are
/// CUMULATIVE across every context the process ran, surviving teardown and
/// respawn-independent on the master side; the trace capture is MOVED out
/// of the worker's rings (spans ship exactly once).
struct worker_telemetry {
    std::uint64_t worker_id = 0;
    std::uint32_t pid = 0;
    verdict_cache_stats cache;             ///< cumulative, incl. torn-down contexts
    std::vector<obs::metric_entry> metrics;  ///< registry delta since last harvest
    obs::process_capture trace;            ///< drained spans + ring-overflow drops
};

[[nodiscard]] std::vector<std::byte> encode_worker_telemetry(
    const worker_telemetry& t);

/// Decodes a `telemetry` reply blob. Throws serialize_error on malformed
/// input.
[[nodiscard]] worker_telemetry decode_worker_telemetry(
    std::span<const std::byte> blob);

// ---- fd helpers --------------------------------------------------------

/// Writes the whole buffer to a BLOCKING fd; throws transport_error on any
/// write error (EPIPE = peer died). Retries EINTR.
void fd_write_all(int fd, std::span<const std::byte> bytes);

}  // namespace recloud
