#include "obs/trace.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/build_info.hpp"

namespace recloud::obs {
namespace {

struct trace_event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint64_t flow_id;
    std::uint8_t flow_phase;
};

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Microseconds with ns precision for Chrome's "ts"/"dur" fields.
void append_us(std::string& out, std::uint64_t ns) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buffer;
}

}  // namespace

/// SPSC ring: the owning thread writes events[count] then publishes with a
/// release store; the exporter acquires count and reads the prefix. Full
/// rings drop (drop-newest) and count the drop.
struct ring {
    explicit ring(std::uint32_t id, std::size_t capacity)
        : tid(id), events(capacity) {}

    std::uint32_t tid;
    std::string thread_name;
    std::vector<trace_event> events;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};

    void push(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint64_t flow_id = 0, std::uint8_t flow_phase = 0) noexcept {
        const std::size_t n = count.load(std::memory_order_relaxed);
        if (n >= events.size()) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        events[n] = trace_event{name, start_ns, dur_ns, flow_id, flow_phase};
        count.store(n + 1, std::memory_order_release);
    }
};

namespace {

/// This thread's ring (created on first recorded event) and its label.
/// Naming a thread before any event only sets the label — no ring (and no
/// slot storage) is allocated while tracing stays disabled.
thread_local ring* t_ring = nullptr;
thread_local std::string t_label;

}  // namespace

struct tracer::impl {
    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> epoch_ns{0};
    std::atomic<std::size_t> ring_capacity{std::size_t{1} << 15};
    mutable std::mutex mutex;  ///< guards rings (list), thread names, remote
    std::vector<std::unique_ptr<ring>> rings;
    std::vector<process_capture> remote;  ///< harvested worker captures
    std::uint32_t next_tid = 1;

    ring& local_ring() {
        // The tracer is a leaked process singleton, so a cached ring pointer
        // can never dangle (reset() zeroes rings, never frees them).
        if (t_ring == nullptr) {
            const std::lock_guard lock{mutex};
            rings.push_back(std::make_unique<ring>(
                next_tid++, ring_capacity.load(std::memory_order_relaxed)));
            t_ring = rings.back().get();
            t_ring->thread_name = t_label;
        }
        return *t_ring;
    }
};

tracer::tracer() : impl_(new impl()) {}

tracer& tracer::global() {
    // Leaked on purpose: spans may still close during static destruction.
    static tracer* instance = new tracer();
    return *instance;
}

bool tracer::enabled() const noexcept {
    return impl_->enabled.load(std::memory_order_relaxed);
}

void tracer::start() noexcept {
    impl_->epoch_ns.store(steady_ns(), std::memory_order_relaxed);
    impl_->enabled.store(true, std::memory_order_relaxed);
}

void tracer::stop() noexcept {
    impl_->enabled.store(false, std::memory_order_relaxed);
}

void tracer::reset() noexcept {
    const std::lock_guard lock{impl_->mutex};
    for (const auto& r : impl_->rings) {
        r->count.store(0, std::memory_order_relaxed);
        r->dropped.store(0, std::memory_order_relaxed);
    }
    impl_->remote.clear();
}

void tracer::set_ring_capacity(std::size_t events) noexcept {
    impl_->ring_capacity.store(events == 0 ? 1 : events,
                               std::memory_order_relaxed);
}

void tracer::set_current_thread_name(const std::string& name) {
    t_label = name;
    if (t_ring != nullptr) {
        const std::lock_guard lock{impl_->mutex};
        t_ring->thread_name = name;
    }
}

std::uint64_t tracer::now_ns() const noexcept {
    return steady_ns() - impl_->epoch_ns.load(std::memory_order_relaxed);
}

std::uint64_t tracer::epoch_ns() const noexcept {
    return impl_->epoch_ns.load(std::memory_order_relaxed);
}

void tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) noexcept {
    if (!enabled()) {
        return;  // capture stopped between span open and close
    }
    impl_->local_ring().push(name, start_ns, dur_ns);
}

void tracer::record_flow(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, std::uint64_t flow_id,
                         std::uint8_t flow_phase) noexcept {
    if (!enabled()) {
        return;
    }
    impl_->local_ring().push(name, start_ns, dur_ns, flow_id, flow_phase);
}

process_capture tracer::drain_capture(std::string process_name) {
    const std::lock_guard lock{impl_->mutex};
    process_capture capture;
    capture.pid = static_cast<std::uint32_t>(::getpid());
    capture.process_name = std::move(process_name);
    capture.epoch_ns = impl_->epoch_ns.load(std::memory_order_relaxed);
    for (const auto& r : impl_->rings) {
        if (!r->thread_name.empty()) {
            capture.thread_names.emplace_back(r->tid, r->thread_name);
        }
        capture.dropped += r->dropped.exchange(0, std::memory_order_relaxed);
        const std::size_t n = r->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const trace_event& e = r->events[i];
            capture.spans.push_back(trace_span{e.name, r->tid, e.start_ns,
                                               e.dur_ns, e.flow_id,
                                               e.flow_phase});
        }
        r->count.store(0, std::memory_order_relaxed);
    }
    return capture;
}

void tracer::add_remote_capture(process_capture capture) {
    const std::lock_guard lock{impl_->mutex};
    impl_->remote.push_back(std::move(capture));
}

std::uint64_t tracer::dropped() const noexcept {
    const std::lock_guard lock{impl_->mutex};
    std::uint64_t total = 0;
    for (const auto& r : impl_->rings) {
        total += r->dropped.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t tracer::captured() const noexcept {
    const std::lock_guard lock{impl_->mutex};
    std::uint64_t total = 0;
    for (const auto& r : impl_->rings) {
        total += r->count.load(std::memory_order_acquire);
    }
    return total;
}

namespace {

void append_meta(std::string& out, bool& first, std::uint32_t pid,
                 std::uint32_t tid, const char* what, const std::string& name) {
    if (!first) {
        out += ",";
    }
    first = false;
    out += "{\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"";
    out += what;
    out += "\",\"args\":{\"name\":\"";
    out += name;  // pool/caller-chosen names: no escapes needed
    out += "\"}}";
}

void append_span(std::string& out, bool& first, std::uint32_t pid,
                 std::uint32_t tid, const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, std::uint64_t flow_id,
                 std::uint8_t flow_phase) {
    if (!first) {
        out += ",";
    }
    first = false;
    out += "{\"ph\":\"X\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    append_us(out, start_ns);
    out += ",\"dur\":";
    append_us(out, dur_ns);
    out += ",\"name\":\"";
    out += name;  // literals chosen by this codebase: no escapes
    out += "\",\"cat\":\"recloud\"}";
    if (flow_id == 0 || flow_phase == flow_none) {
        return;
    }
    // The flow event shares the slice's start timestamp so viewers bind it
    // to that slice; "f" uses bp:"e" (bind to enclosing slice).
    out += ",{\"ph\":\"";
    out += flow_phase == flow_start ? "s" : "f";
    out += "\"";
    if (flow_phase != flow_start) {
        out += ",\"bp\":\"e\"";
    }
    out += ",\"id\":";
    out += std::to_string(flow_id);
    out += ",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    append_us(out, start_ns);
    out += ",\"name\":\"";
    out += name;
    out += "\",\"cat\":\"recloud.flow\"}";
}

}  // namespace

std::string tracer::export_chrome_trace() const {
    const std::lock_guard lock{impl_->mutex};
    const auto local_pid = static_cast<std::uint32_t>(::getpid());
    const std::uint64_t local_epoch =
        impl_->epoch_ns.load(std::memory_order_relaxed);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped_total = 0;
    append_meta(out, first, local_pid, 0, "process_name", "recloud");
    for (const auto& r : impl_->rings) {
        dropped_total += r->dropped.load(std::memory_order_relaxed);
        if (!r->thread_name.empty()) {
            append_meta(out, first, local_pid, r->tid, "thread_name",
                        r->thread_name);
        }
        const std::size_t n = r->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const trace_event& e = r->events[i];
            append_span(out, first, local_pid, r->tid, e.name, e.start_ns,
                        e.dur_ns, e.flow_id, e.flow_phase);
        }
    }
    for (const auto& capture : impl_->remote) {
        dropped_total += capture.dropped;
        append_meta(out, first, capture.pid, 0, "process_name",
                    capture.process_name);
        for (const auto& [tid, name] : capture.thread_names) {
            append_meta(out, first, capture.pid, tid, "thread_name", name);
        }
        // Same machine, same monotonic clock: re-base the remote capture's
        // epoch-relative timestamps onto our epoch (clamp a worker span that
        // started before our capture origin to ts 0 rather than going
        // negative, which trace viewers reject).
        const auto delta = static_cast<std::int64_t>(capture.epoch_ns) -
                           static_cast<std::int64_t>(local_epoch);
        for (const trace_span& s : capture.spans) {
            const auto shifted =
                static_cast<std::int64_t>(s.start_ns) + delta;
            const std::uint64_t ts =
                shifted < 0 ? 0 : static_cast<std::uint64_t>(shifted);
            append_span(out, first, capture.pid, s.tid, s.name.c_str(), ts,
                        s.dur_ns, s.flow_id, s.flow_phase);
        }
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"build\":";
    out += build_info_json();
    out += ",\"dropped_events\":";
    out += std::to_string(dropped_total);
    out += "}}";
    return out;
}

bool tracer::export_to_file(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        return false;
    }
    const std::string json = export_chrome_trace();
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), out);
    const bool ok = written == json.size() && std::fputc('\n', out) != EOF;
    return std::fclose(out) == 0 && ok;
}

int trace_env_override() noexcept {
    const char* env = std::getenv("RECLOUD_TRACE");
    if (env == nullptr || *env == '\0') {
        return -1;
    }
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "false") == 0) {
        return 0;
    }
    return 1;
}

std::string trace_env_path(const std::string& fallback) {
    const char* env = std::getenv("RECLOUD_TRACE_PATH");
    return env != nullptr && *env != '\0' ? std::string{env} : fallback;
}

}  // namespace recloud::obs
