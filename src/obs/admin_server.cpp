#include "obs/admin_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace recloud::obs {

namespace {

// ---- Prometheus text exposition ---------------------------------------

[[nodiscard]] bool numeric_segment(std::string_view seg) noexcept {
    if (seg.empty()) {
        return false;
    }
    for (const char c : seg) {
        if (c < '0' || c > '9') {
            return false;
        }
    }
    return true;
}

void append_sanitized(std::string& out, std::string_view seg) {
    for (const char c : seg) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
}

[[nodiscard]] const char* type_name(metric_kind kind) noexcept {
    switch (kind) {
        case metric_kind::counter: return "counter";
        case metric_kind::gauge: return "gauge";
        case metric_kind::histogram: return "histogram";
    }
    return "untyped";
}

/// Upper bound of log-2 bucket b: the largest v with floor(log2(v+1)) == b.
[[nodiscard]] std::uint64_t bucket_upper(std::size_t b) noexcept {
    if (b >= 63) {
        return ~std::uint64_t{0} - 1;  // 2^64 - 2 without shifting by 64
    }
    return (std::uint64_t{1} << (b + 1)) - 2;
}

struct family_data {
    metric_kind kind = metric_kind::counter;
    std::vector<std::string> lines;
};

/// "recloud_a_b{c=\"3\"}": dots to underscores, numeric segments lifted to
/// a label named after the preceding segment.
void family_and_labels(std::string_view name, std::string& family,
                       std::string& labels) {
    family = "recloud";
    labels.clear();
    std::size_t pos = 0;
    std::string_view previous;
    while (pos <= name.size()) {
        const std::size_t dot = name.find('.', pos);
        const std::string_view seg =
            name.substr(pos, dot == std::string_view::npos ? dot : dot - pos);
        if (numeric_segment(seg) && !previous.empty()) {
            if (!labels.empty()) {
                labels.push_back(',');
            }
            append_sanitized(labels, previous);
            labels += "=\"";
            labels.append(seg);
            labels.push_back('"');
        } else if (!seg.empty()) {
            family.push_back('_');
            append_sanitized(family, seg);
            previous = seg;
        }
        if (dot == std::string_view::npos) {
            break;
        }
        pos = dot + 1;
    }
}

void append_sample(std::vector<std::string>& lines, const std::string& family,
                   const char* suffix, const std::string& labels,
                   const char* extra_label, std::uint64_t value) {
    std::string line = family;
    line += suffix;
    if (!labels.empty() || extra_label != nullptr) {
        line.push_back('{');
        line += labels;
        if (extra_label != nullptr) {
            if (!labels.empty()) {
                line.push_back(',');
            }
            line += extra_label;
        }
        line.push_back('}');
    }
    line.push_back(' ');
    line += std::to_string(value);
    lines.push_back(std::move(line));
}

}  // namespace

std::string prometheus_exposition(const telemetry_snapshot& snap) {
    std::map<std::string, family_data> families;
    std::string family;
    std::string labels;
    for (const metric_entry& m : snap.metrics) {
        family_and_labels(m.name, family, labels);
        auto [it, inserted] = families.try_emplace(family);
        if (inserted) {
            it->second.kind = m.kind;
        } else if (it->second.kind != m.kind) {
            // Two dotted names collapsed to one family with clashing kinds;
            // exposition forbids mixed types, so the later entry is dropped.
            continue;
        }
        std::vector<std::string>& lines = it->second.lines;
        if (m.kind != metric_kind::histogram) {
            append_sample(lines, family, "", labels, nullptr, m.value);
            continue;
        }
        const histogram_snapshot& h = m.histogram;
        std::size_t top = 0;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (h.buckets[b] != 0) {
                top = b;
            }
        }
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; h.count != 0 && b <= top; ++b) {
            cumulative += h.buckets[b];
            const std::string le =
                "le=\"" + std::to_string(bucket_upper(b)) + "\"";
            append_sample(lines, family, "_bucket", labels, le.c_str(),
                          cumulative);
        }
        append_sample(lines, family, "_bucket", labels, "le=\"+Inf\"", h.count);
        append_sample(lines, family, "_sum", labels, nullptr, h.sum);
        append_sample(lines, family, "_count", labels, nullptr, h.count);
    }

    std::string out;
    for (const auto& [name, data] : families) {
        out += "# TYPE ";
        out += name;
        out.push_back(' ');
        out += type_name(data.kind);
        out.push_back('\n');
        for (const std::string& line : data.lines) {
            out += line;
            out.push_back('\n');
        }
    }
    return out;
}

// ---- server ------------------------------------------------------------

namespace {

constexpr std::size_t max_clients = 32;
constexpr std::size_t max_request_bytes = 4096;

[[nodiscard]] std::string http_response(int status, const char* reason,
                                        const char* content_type,
                                        std::string_view body) {
    std::string out = "HTTP/1.0 ";
    out += std::to_string(status);
    out.push_back(' ');
    out += reason;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out.append(body);
    return out;
}

}  // namespace

struct admin_server::impl {
    std::string path;
    admin_endpoints endpoints;
    int listen_fd = -1;
    int wake_read = -1;
    int wake_write = -1;
    std::thread server;
    std::mutex stop_mutex;  ///< serializes stop() callers (join-once)
    std::atomic<bool> stopping{false};
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};

    struct client {
        int fd = -1;
        std::string in;        ///< request bytes until "\r\n\r\n"
        std::string out;       ///< fully rendered response
        std::size_t sent = 0;  ///< bytes of `out` already written
        bool writing = false;
    };
    std::vector<client> clients;

    void serve();
    void accept_clients();
    void read_client(client& c);
    void write_client(client& c);
    [[nodiscard]] std::string respond(std::string_view request);
    [[nodiscard]] std::string route(std::string_view path);
};

void admin_server::impl::serve() {
    std::vector<pollfd> fds;
    while (!stopping.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back(pollfd{listen_fd, POLLIN, 0});
        fds.push_back(pollfd{wake_read, POLLIN, 0});
        for (const client& c : clients) {
            fds.push_back(
                pollfd{c.fd, static_cast<short>(c.writing ? POLLOUT : POLLIN), 0});
        }
        if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;  // unrecoverable poll failure; shut the endpoint down
        }
        if ((fds[1].revents & POLLIN) != 0) {
            continue;  // stop() poked the pipe; re-check the flag
        }
        // Clients first (their fds snapshot matches `clients` order), then
        // compaction, then accept — accept appends and would shift indices.
        for (std::size_t i = 0; i < clients.size(); ++i) {
            client& c = clients[i];
            const short events = fds[2 + i].revents;
            if ((events & (POLLERR | POLLNVAL)) != 0) {
                errors.fetch_add(1, std::memory_order_relaxed);
                ::close(c.fd);
                c.fd = -1;
                continue;
            }
            if (c.writing && (events & (POLLOUT | POLLHUP)) != 0) {
                write_client(c);
            } else if (!c.writing && (events & (POLLIN | POLLHUP)) != 0) {
                read_client(c);
            }
        }
        std::erase_if(clients, [](const client& c) { return c.fd < 0; });
        if ((fds[0].revents & POLLIN) != 0) {
            accept_clients();
        }
    }
    for (const client& c : clients) {
        ::close(c.fd);
    }
    clients.clear();
}

void admin_server::impl::accept_clients() {
    for (;;) {
        const int fd =
            ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0) {
            return;  // EAGAIN (drained) or transient error; poll retries
        }
        if (clients.size() >= max_clients) {
            errors.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
            continue;
        }
        connections.fetch_add(1, std::memory_order_relaxed);
        client c;
        c.fd = fd;
        clients.push_back(std::move(c));
    }
}

void admin_server::impl::read_client(client& c) {
    char buf[1024];
    for (;;) {
        const ssize_t n = ::read(c.fd, buf, sizeof buf);
        if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.find("\r\n\r\n") != std::string::npos) {
                c.out = respond(c.in);
                c.writing = true;
                write_client(c);
                return;
            }
            if (c.in.size() > max_request_bytes) {
                errors.fetch_add(1, std::memory_order_relaxed);
                c.out = http_response(400, "Bad Request", "text/plain",
                                      "request too large\n");
                c.writing = true;
                write_client(c);
                return;
            }
            continue;
        }
        if (n == 0) {  // peer closed before completing a request
            ::close(c.fd);
            c.fd = -1;
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return;
        }
        if (errno == EINTR) {
            continue;
        }
        errors.fetch_add(1, std::memory_order_relaxed);
        ::close(c.fd);
        c.fd = -1;
        return;
    }
}

void admin_server::impl::write_client(client& c) {
    while (c.sent < c.out.size()) {
        const ssize_t n = ::send(c.fd, c.out.data() + c.sent,
                                 c.out.size() - c.sent, MSG_NOSIGNAL);
        if (n > 0) {
            c.sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return;  // poll for POLLOUT
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    ::close(c.fd);
    c.fd = -1;
}

std::string admin_server::impl::respond(std::string_view request) {
    const std::size_t eol = request.find("\r\n");
    std::string_view line = request.substr(0, eol);
    const std::size_t method_end = line.find(' ');
    if (method_end == std::string_view::npos) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return http_response(400, "Bad Request", "text/plain", "bad request\n");
    }
    const std::string_view method = line.substr(0, method_end);
    line.remove_prefix(method_end + 1);
    std::string_view path = line.substr(0, line.find(' '));
    path = path.substr(0, path.find('?'));
    if (method != "GET") {
        errors.fetch_add(1, std::memory_order_relaxed);
        return http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is served here\n");
    }
    requests.fetch_add(1, std::memory_order_relaxed);
    try {
        return route(path);
    } catch (const std::exception& error) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return http_response(500, "Internal Server Error", "text/plain",
                             std::string{error.what()} + "\n");
    } catch (...) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return http_response(500, "Internal Server Error", "text/plain",
                             "handler failed\n");
    }
}

std::string admin_server::impl::route(std::string_view path) {
    if (path == "/metrics" && endpoints.metrics != nullptr) {
        return http_response(200, "OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             prometheus_exposition(endpoints.metrics()));
    }
    if (path == "/healthz") {
        return http_response(200, "OK", "application/json",
                             "{\"status\":\"ok\"}\n");
    }
    if (path == "/status" && endpoints.status_json != nullptr) {
        return http_response(200, "OK", "application/json",
                             endpoints.status_json());
    }
    if (path == "/trace" && endpoints.trace_json != nullptr) {
        return http_response(200, "OK", "application/json",
                             endpoints.trace_json());
    }
    return http_response(404, "Not Found", "text/plain",
                         "routes: /metrics /status /healthz /trace\n");
}

admin_server::admin_server(std::string socket_path, admin_endpoints endpoints)
    : impl_(std::make_unique<impl>()) {
    impl_->path = std::move(socket_path);
    impl_->endpoints = std::move(endpoints);

    sockaddr_un addr{};
    if (impl_->path.empty() || impl_->path.size() >= sizeof addr.sun_path) {
        throw std::runtime_error{"admin_server: bad socket path: " +
                                 impl_->path};
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, impl_->path.c_str(), impl_->path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0) {
        throw std::runtime_error{std::string{"admin_server: socket: "} +
                                 std::strerror(errno)};
    }
    ::unlink(impl_->path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error{"admin_server: cannot serve on " +
                                 impl_->path + ": " + std::strerror(err)};
    }
    int wake[2] = {-1, -1};
    if (::pipe2(wake, O_CLOEXEC | O_NONBLOCK) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(impl_->path.c_str());
        throw std::runtime_error{std::string{"admin_server: pipe2: "} +
                                 std::strerror(err)};
    }
    impl_->listen_fd = fd;
    impl_->wake_read = wake[0];
    impl_->wake_write = wake[1];
    impl_->server = std::thread{[p = impl_.get()] { p->serve(); }};
}

admin_server::~admin_server() { stop(); }

void admin_server::stop() {
    const std::lock_guard<std::mutex> lock{impl_->stop_mutex};
    if (!impl_->server.joinable()) {
        return;
    }
    impl_->stopping.store(true, std::memory_order_release);
    const char poke = 1;
    const ssize_t ignored = ::write(impl_->wake_write, &poke, 1);
    (void)ignored;
    impl_->server.join();
    ::close(impl_->listen_fd);
    ::close(impl_->wake_read);
    ::close(impl_->wake_write);
    impl_->listen_fd = impl_->wake_read = impl_->wake_write = -1;
    ::unlink(impl_->path.c_str());
}

const std::string& admin_server::socket_path() const noexcept {
    return impl_->path;
}

admin_server_stats admin_server::stats() const noexcept {
    admin_server_stats out;
    out.connections = impl_->connections.load(std::memory_order_relaxed);
    out.requests = impl_->requests.load(std::memory_order_relaxed);
    out.errors = impl_->errors.load(std::memory_order_relaxed);
    return out;
}

}  // namespace recloud::obs
