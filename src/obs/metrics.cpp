#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace recloud::obs {
namespace {

// metric_id layout: kind in the top 2 bits, slot index below.
constexpr std::uint32_t kind_shift = 30;
constexpr std::uint32_t index_mask = (1u << kind_shift) - 1;

constexpr metric_id make_id(metric_kind kind, std::uint32_t index) noexcept {
    return metric_id{(static_cast<std::uint32_t>(kind) << kind_shift) |
                     (index & index_mask)};
}
constexpr metric_kind kind_of(metric_id id) noexcept {
    return static_cast<metric_kind>(id.raw >> kind_shift);
}
constexpr std::uint32_t index_of(metric_id id) noexcept {
    return id.raw & index_mask;
}

/// floor(log2(v + 1)) clamped to [0, 63]: bucket 0 holds {0}, 1 holds
/// {1, 2}, 2 holds {3..6}, ... The +1 keeps zero in a bucket of its own
/// (an all-zero duration histogram should not look empty).
constexpr std::uint32_t bucket_of(std::uint64_t value) noexcept {
    if (value >= (std::uint64_t{1} << 63)) {
        return 63;  // value + 1 would wrap
    }
    return static_cast<std::uint32_t>(std::bit_width(value + 1) - 1);
}

}  // namespace

const metric_entry* telemetry_snapshot::find(
    std::string_view name) const noexcept {
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const metric_entry& e, std::string_view n) { return e.name < n; });
    return it != metrics.end() && it->name == name ? &*it : nullptr;
}

std::uint64_t telemetry_snapshot::value(std::string_view name) const noexcept {
    const metric_entry* entry = find(name);
    if (entry == nullptr) {
        return 0;
    }
    return entry->kind == metric_kind::histogram ? entry->histogram.count
                                                 : entry->value;
}

// ---- per-thread storage -------------------------------------------------

/// One thread's slots. Only the owning thread mutates them; snapshot() and
/// reset() touch them concurrently, hence relaxed atomics (which compile to
/// plain loads/stores on the hot path).
struct metrics_registry::shard {
    std::array<std::atomic<std::uint64_t>, max_counters> counters{};

    struct hist_slot {
        std::array<std::atomic<std::uint64_t>, 64> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{~std::uint64_t{0}};
        std::atomic<std::uint64_t> max{0};
    };
    std::array<hist_slot, max_histograms> hists{};

    void add_counter(std::uint32_t index, std::uint64_t delta) noexcept {
        counters[index].fetch_add(delta, std::memory_order_relaxed);
    }

    void observe(std::uint32_t index, std::uint64_t value) noexcept {
        hist_slot& h = hists[index];
        h.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
        h.count.fetch_add(1, std::memory_order_relaxed);
        h.sum.fetch_add(value, std::memory_order_relaxed);
        // Owner-only writes: load+store needs no CAS.
        if (value < h.min.load(std::memory_order_relaxed)) {
            h.min.store(value, std::memory_order_relaxed);
        }
        if (value > h.max.load(std::memory_order_relaxed)) {
            h.max.store(value, std::memory_order_relaxed);
        }
    }

    /// Folds `other` into this shard (retirement and snapshot aggregation).
    void merge_from(const shard& other) noexcept {
        for (std::size_t i = 0; i < max_counters; ++i) {
            counters[i].fetch_add(
                other.counters[i].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < max_histograms; ++i) {
            hist_slot& mine = hists[i];
            const hist_slot& theirs = other.hists[i];
            if (theirs.count.load(std::memory_order_relaxed) == 0) {
                continue;
            }
            for (std::size_t b = 0; b < 64; ++b) {
                mine.buckets[b].fetch_add(
                    theirs.buckets[b].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
            }
            mine.count.fetch_add(theirs.count.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
            mine.sum.fetch_add(theirs.sum.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
            const std::uint64_t their_min =
                theirs.min.load(std::memory_order_relaxed);
            if (their_min < mine.min.load(std::memory_order_relaxed)) {
                mine.min.store(their_min, std::memory_order_relaxed);
            }
            const std::uint64_t their_max =
                theirs.max.load(std::memory_order_relaxed);
            if (their_max > mine.max.load(std::memory_order_relaxed)) {
                mine.max.store(their_max, std::memory_order_relaxed);
            }
        }
    }

    void zero() noexcept {
        for (auto& c : counters) {
            c.store(0, std::memory_order_relaxed);
        }
        for (auto& h : hists) {
            for (auto& b : h.buckets) {
                b.store(0, std::memory_order_relaxed);
            }
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
            h.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
            h.max.store(0, std::memory_order_relaxed);
        }
    }
};

struct metrics_registry::impl {
    std::uint64_t uid = 0;  ///< registry identity for the tls cache
    mutable std::mutex mutex;
    std::map<std::string, metric_id, std::less<>> names;
    std::vector<std::unique_ptr<shard>> shards;  ///< one per live writer thread
    shard retired;  ///< folded totals of exited threads
    std::array<std::atomic<std::uint64_t>, max_gauges> gauges{};
    std::uint32_t counters = 0;
    std::uint32_t gauge_count = 0;
    std::uint32_t histograms = 0;
};

namespace {

/// Registries a thread may still hold cached shard pointers for. Guarded by
/// its own mutex; always acquired BEFORE any registry's impl mutex.
struct alive_registries {
    std::mutex mutex;
    std::vector<std::pair<std::uint64_t, metrics_registry*>> entries;
    std::uint64_t next_uid = 1;
};

alive_registries& alive() {
    static alive_registries* instance = new alive_registries();
    return *instance;
}

}  // namespace

/// Thread-local shard cache: (registry uid -> shard). On thread exit every
/// cached shard is retired into its registry — if that registry is still
/// alive (identity checked by uid, so a registry reborn at the same address
/// cannot alias).
struct metrics_registry::tls_entry {
    struct cache {
        std::vector<std::pair<std::uint64_t, shard*>> entries;

        ~cache() {
            alive_registries& reg = alive();
            const std::lock_guard lock{reg.mutex};
            for (const auto& [uid, s] : entries) {
                for (const auto& [auid, registry] : reg.entries) {
                    if (auid == uid) {
                        registry->retire(s);
                        break;
                    }
                }
            }
        }
    };

    static cache& local() {
        thread_local cache c;
        return c;
    }
};

metrics_registry::metrics_registry() : impl_(new impl()) {
    alive_registries& reg = alive();
    const std::lock_guard lock{reg.mutex};
    impl_->uid = reg.next_uid++;
    reg.entries.emplace_back(impl_->uid, this);
}

metrics_registry::~metrics_registry() {
    {
        alive_registries& reg = alive();
        const std::lock_guard lock{reg.mutex};
        std::erase_if(reg.entries,
                      [this](const auto& e) { return e.second == this; });
    }
    delete impl_;
}

metrics_registry& metrics_registry::global() {
    // Leaked on purpose: worker threads may still write during static
    // destruction at process exit.
    static metrics_registry* instance = new metrics_registry();
    return *instance;
}

metric_id metrics_registry::register_metric(std::string_view name,
                                            metric_kind kind) {
    const std::lock_guard lock{impl_->mutex};
    if (const auto it = impl_->names.find(name); it != impl_->names.end()) {
        if (kind_of(it->second) != kind) {
            throw std::invalid_argument{"metric registered under another kind: " +
                                        std::string{name}};
        }
        return it->second;
    }
    std::uint32_t index = 0;
    switch (kind) {
        case metric_kind::counter:
            if (impl_->counters >= max_counters) {
                throw std::length_error{"metrics_registry: counter capacity"};
            }
            index = impl_->counters++;
            break;
        case metric_kind::gauge:
            if (impl_->gauge_count >= max_gauges) {
                throw std::length_error{"metrics_registry: gauge capacity"};
            }
            index = impl_->gauge_count++;
            break;
        case metric_kind::histogram:
            if (impl_->histograms >= max_histograms) {
                throw std::length_error{"metrics_registry: histogram capacity"};
            }
            index = impl_->histograms++;
            break;
    }
    const metric_id id = make_id(kind, index);
    impl_->names.emplace(std::string{name}, id);
    return id;
}

metric_id metrics_registry::counter(std::string_view name) {
    return register_metric(name, metric_kind::counter);
}
metric_id metrics_registry::gauge(std::string_view name) {
    return register_metric(name, metric_kind::gauge);
}
metric_id metrics_registry::histogram(std::string_view name) {
    return register_metric(name, metric_kind::histogram);
}

metrics_registry::shard& metrics_registry::local_shard() {
    auto& cache = tls_entry::local().entries;
    for (const auto& [uid, s] : cache) {
        if (uid == impl_->uid) {
            return *s;
        }
    }
    auto owned = std::make_unique<shard>();
    shard* s = owned.get();
    {
        const std::lock_guard lock{impl_->mutex};
        impl_->shards.push_back(std::move(owned));
    }
    cache.emplace_back(impl_->uid, s);
    return *s;
}

void metrics_registry::retire(shard* s) noexcept {
    const std::lock_guard lock{impl_->mutex};
    impl_->retired.merge_from(*s);
    std::erase_if(impl_->shards,
                  [s](const std::unique_ptr<shard>& p) { return p.get() == s; });
}

void metrics_registry::add(metric_id id, std::uint64_t delta) noexcept {
    if (!enabled()) {
        return;
    }
    local_shard().add_counter(index_of(id), delta);
}

void metrics_registry::observe(metric_id id, std::uint64_t value) noexcept {
    if (!enabled()) {
        return;
    }
    local_shard().observe(index_of(id), value);
}

void metrics_registry::set(metric_id id, std::uint64_t value) noexcept {
    // Gauges are snapshot-time publishes (e.g. engine_stats mirrored into
    // the registry) — not gated on enabled() so exports stay complete.
    impl_->gauges[index_of(id)].store(value, std::memory_order_relaxed);
}

telemetry_snapshot metrics_registry::snapshot() const {
    const std::lock_guard lock{impl_->mutex};
    telemetry_snapshot snap;
    snap.metrics.reserve(impl_->names.size());
    for (const auto& [name, id] : impl_->names) {  // map order == sorted
        metric_entry entry;
        entry.name = name;
        entry.kind = kind_of(id);
        const std::uint32_t index = index_of(id);
        switch (entry.kind) {
            case metric_kind::counter: {
                std::uint64_t total =
                    impl_->retired.counters[index].load(std::memory_order_relaxed);
                for (const auto& s : impl_->shards) {
                    total += s->counters[index].load(std::memory_order_relaxed);
                }
                entry.value = total;
                break;
            }
            case metric_kind::gauge:
                entry.value =
                    impl_->gauges[index].load(std::memory_order_relaxed);
                break;
            case metric_kind::histogram: {
                histogram_snapshot& h = entry.histogram;
                std::uint64_t min = ~std::uint64_t{0};
                const auto fold = [&](const shard& s) {
                    const auto& slot = s.hists[index];
                    const std::uint64_t count =
                        slot.count.load(std::memory_order_relaxed);
                    if (count == 0) {
                        return;
                    }
                    h.count += count;
                    h.sum += slot.sum.load(std::memory_order_relaxed);
                    min = std::min(min,
                                   slot.min.load(std::memory_order_relaxed));
                    h.max = std::max(h.max,
                                     slot.max.load(std::memory_order_relaxed));
                    for (std::size_t b = 0; b < 64; ++b) {
                        h.buckets[b] +=
                            slot.buckets[b].load(std::memory_order_relaxed);
                    }
                };
                fold(impl_->retired);
                for (const auto& s : impl_->shards) {
                    fold(*s);
                }
                h.min = h.count == 0 ? 0 : min;
                break;
            }
        }
        snap.metrics.push_back(std::move(entry));
    }
    return snap;
}

void metrics_registry::merge_snapshot(const telemetry_snapshot& snap) noexcept {
    for (const metric_entry& entry : snap.metrics) {
        if (entry.kind == metric_kind::gauge) {
            continue;  // process-local publishes: summing would be a lie
        }
        metric_id id{};
        try {
            id = register_metric(entry.name, entry.kind);
        } catch (const std::exception&) {
            continue;  // kind mismatch or capacity: drop, don't throw
        }
        const std::uint32_t index = index_of(id);
        const std::lock_guard lock{impl_->mutex};
        if (entry.kind == metric_kind::counter) {
            impl_->retired.counters[index].fetch_add(entry.value,
                                                     std::memory_order_relaxed);
            continue;
        }
        const histogram_snapshot& h = entry.histogram;
        if (h.count == 0) {
            continue;
        }
        shard::hist_slot& slot = impl_->retired.hists[index];
        for (std::size_t b = 0; b < 64; ++b) {
            slot.buckets[b].fetch_add(h.buckets[b], std::memory_order_relaxed);
        }
        slot.count.fetch_add(h.count, std::memory_order_relaxed);
        slot.sum.fetch_add(h.sum, std::memory_order_relaxed);
        if (h.min < slot.min.load(std::memory_order_relaxed)) {
            slot.min.store(h.min, std::memory_order_relaxed);
        }
        if (h.max > slot.max.load(std::memory_order_relaxed)) {
            slot.max.store(h.max, std::memory_order_relaxed);
        }
    }
}

void metrics_registry::reset() noexcept {
    const std::lock_guard lock{impl_->mutex};
    impl_->retired.zero();
    for (const auto& s : impl_->shards) {
        s->zero();
    }
    for (auto& g : impl_->gauges) {
        g.store(0, std::memory_order_relaxed);
    }
}

}  // namespace recloud::obs
