#include "obs/build_info.hpp"

#ifndef RECLOUD_GIT_HASH
#define RECLOUD_GIT_HASH "unknown"
#endif
#ifndef RECLOUD_BUILD_TYPE
#define RECLOUD_BUILD_TYPE "unknown"
#endif
#ifndef RECLOUD_SANITIZER
#define RECLOUD_SANITIZER ""
#endif

namespace recloud {
namespace {

constexpr build_info_t info{
    RECLOUD_GIT_HASH,
#if defined(__clang__)
    "clang " __VERSION__,
#elif defined(__GNUC__)
    "g++ " __VERSION__,
#else
    __VERSION__,
#endif
    RECLOUD_BUILD_TYPE,
    RECLOUD_SANITIZER,
};

/// build_info strings are compiler/CMake-produced identifiers; escaping is
/// limited to quotes/backslashes so this file needn't pull in report.
std::string escape(const char* text) {
    std::string out;
    for (const char* p = text; *p != '\0'; ++p) {
        if (*p == '"' || *p == '\\') {
            out.push_back('\\');
        }
        out.push_back(*p);
    }
    return out;
}

}  // namespace

const build_info_t& build_info() noexcept { return info; }

std::string build_info_json() {
    std::string out = "{\"git\":\"";
    out += escape(info.git_hash);
    out += "\",\"compiler\":\"";
    out += escape(info.compiler);
    out += "\",\"build_type\":\"";
    out += escape(info.build_type);
    out += "\",\"sanitizer\":\"";
    out += escape(info.sanitizer);
    out += "\"}";
    return out;
}

std::string build_info_banner() {
    std::string out = "recloud ";
    out += info.git_hash;
    out += " (";
    out += info.compiler;
    out += ", ";
    out += info.build_type;
    if (info.sanitizer[0] != '\0') {
        out += ", ";
        out += info.sanitizer;
    }
    out += ")";
    return out;
}

}  // namespace recloud
