// Scoped-span tracer (observability tentpole, part 2): RECLOUD_SPAN("name")
// RAII spans recorded into per-thread ring buffers, exported as Chrome
// trace-event JSON (chrome://tracing / https://ui.perfetto.dev) so one
// re_cloud::deploy run — SA iterations, backend batches, engine
// dispatch/retry/degrade, verdict-cache rebinds, route-and-check floods —
// reads as a single timeline.
//
// Hot-path rules (mirrors obs/metrics.hpp):
//   * disabled cost is one relaxed load + branch per span site;
//   * enabled writes touch only the calling thread's ring: a plain slot
//     store + one release store of the count (SPSC: owner writes, exporter
//     reads) — no locks, no allocation after the ring exists;
//   * a full ring DROPS the event and counts the drop; recording never
//     blocks and never perturbs samplers or verdicts (§6 contract).
//
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace recloud::obs {

/// Flow binding for cross-process span stitching (Chrome flow events):
/// a master-side dispatch span opens a flow ("s"), the worker-side batch
/// span closes it ("f"), and Perfetto draws the arrow between processes.
inline constexpr std::uint8_t flow_none = 0;
inline constexpr std::uint8_t flow_start = 1;   ///< Chrome phase "s"
inline constexpr std::uint8_t flow_finish = 2;  ///< Chrome phase "f"

/// One exported span: drained out of a local ring (worker harvest) or
/// received from a remote process for the merged export.
struct trace_span {
    std::string name;
    std::uint32_t tid = 0;
    std::uint64_t start_ns = 0;  ///< relative to the owning capture's epoch
    std::uint64_t dur_ns = 0;
    std::uint64_t flow_id = 0;  ///< 0 = not part of a flow
    std::uint8_t flow_phase = flow_none;
};

/// Everything one process captured. Workers build one with drain_capture()
/// and ship it in the telemetry harvest; the master attaches it with
/// add_remote_capture() so export_chrome_trace() renders a single timeline
/// with per-process (pid-tracked) thread metadata.
struct process_capture {
    std::uint32_t pid = 0;
    std::string process_name;
    std::uint64_t epoch_ns = 0;  ///< absolute steady-clock capture origin
    std::uint64_t dropped = 0;   ///< ring-overflow drops in that process
    std::vector<std::pair<std::uint32_t, std::string>> thread_names;
    std::vector<trace_span> spans;
};

class tracer {
public:
    /// The process-wide tracer all RECLOUD_SPAN sites record into.
    [[nodiscard]] static tracer& global();

    [[nodiscard]] bool enabled() const noexcept;
    /// Starts a capture: re-anchors the timestamp origin and enables
    /// recording (rings keep their events until reset()).
    void start() noexcept;
    void stop() noexcept;
    /// Discards captured events and drop counts. Rings stay allocated (live
    /// threads keep writing into them on the next start()).
    void reset() noexcept;

    /// Events each NEW per-thread ring can hold (existing rings keep their
    /// capacity). Default 1 << 15.
    void set_ring_capacity(std::size_t events) noexcept;

    /// Names the calling thread in exported traces (and creates its ring).
    void set_current_thread_name(const std::string& name);

    /// Nanoseconds since the capture started (steady clock).
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    /// Absolute steady-clock origin of the current capture (the start()
    /// anchor). All processes on one machine share the monotonic clock, so
    /// remote spans re-base by the epoch difference.
    [[nodiscard]] std::uint64_t epoch_ns() const noexcept;

    /// Records one completed span on the calling thread's ring.
    void record(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns) noexcept;

    /// Records a flow-bound span: the exporter additionally emits a Chrome
    /// flow event ("s"/"f" with the given id) at the span start so
    /// cross-process dispatch -> execute pairs stitch into one arrow.
    void record_flow(const char* name, std::uint64_t start_ns,
                     std::uint64_t dur_ns, std::uint64_t flow_id,
                     std::uint8_t flow_phase) noexcept;

    /// Moves every captured event (and the drop counts) out of the rings
    /// into a process_capture stamped with this process's pid and capture
    /// epoch; rings stay allocated and recording continues. Caller must be
    /// at a quiescent point for span-recording threads (the worker drains
    /// between protocol envelopes, where that holds by construction).
    [[nodiscard]] process_capture drain_capture(std::string process_name);

    /// Attaches a remote process's capture for the merged export; span
    /// timestamps are re-based from its epoch to ours at export time.
    /// reset() discards attached captures.
    void add_remote_capture(process_capture capture);

    /// Events dropped to full rings since the last reset().
    [[nodiscard]] std::uint64_t dropped() const noexcept;
    /// Events currently captured across all rings.
    [[nodiscard]] std::uint64_t captured() const noexcept;

    /// Chrome trace-event JSON ({"traceEvents":[...]}) with per-process /
    /// per-thread metadata (real pids, attached remote captures merged in),
    /// flow events, build provenance and the total drop count.
    [[nodiscard]] std::string export_chrome_trace() const;
    /// Writes export_chrome_trace() to `path`; false when unwritable.
    bool export_to_file(const std::string& path) const;

private:
    tracer();
    struct impl;
    impl* impl_;
};

/// RAII span: measures construction-to-destruction and records it when the
/// tracer was enabled at construction.
class scoped_span {
public:
    explicit scoped_span(const char* name) noexcept {
        tracer& t = tracer::global();
        if (t.enabled()) {
            name_ = name;
            start_ = t.now_ns();
        }
    }
    ~scoped_span() {
        if (name_ != nullptr) {
            tracer& t = tracer::global();
            t.record(name_, start_, t.now_ns() - start_);
        }
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t start_ = 0;
};

/// RECLOUD_TRACE env override: unset/""/"0"/"off"/"false" leave the
/// configured choice ("0"-family forces OFF); anything else forces ON.
/// Returns -1 (unset), 0 (forced off) or 1 (forced on).
[[nodiscard]] int trace_env_override() noexcept;

/// RECLOUD_TRACE_PATH, or `fallback` when unset/empty.
[[nodiscard]] std::string trace_env_path(const std::string& fallback);

}  // namespace recloud::obs

#define RECLOUD_SPAN_CAT2(a, b) a##b
#define RECLOUD_SPAN_CAT(a, b) RECLOUD_SPAN_CAT2(a, b)
/// Opens a scope-long span. `name` must be a string literal.
#define RECLOUD_SPAN(name)                                     \
    ::recloud::obs::scoped_span RECLOUD_SPAN_CAT(recloud_span_, \
                                                 __LINE__){name}
