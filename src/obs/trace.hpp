// Scoped-span tracer (observability tentpole, part 2): RECLOUD_SPAN("name")
// RAII spans recorded into per-thread ring buffers, exported as Chrome
// trace-event JSON (chrome://tracing / https://ui.perfetto.dev) so one
// re_cloud::deploy run — SA iterations, backend batches, engine
// dispatch/retry/degrade, verdict-cache rebinds, route-and-check floods —
// reads as a single timeline.
//
// Hot-path rules (mirrors obs/metrics.hpp):
//   * disabled cost is one relaxed load + branch per span site;
//   * enabled writes touch only the calling thread's ring: a plain slot
//     store + one release store of the count (SPSC: owner writes, exporter
//     reads) — no locks, no allocation after the ring exists;
//   * a full ring DROPS the event and counts the drop; recording never
//     blocks and never perturbs samplers or verdicts (§6 contract).
//
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <cstdint>
#include <string>

namespace recloud::obs {

class tracer {
public:
    /// The process-wide tracer all RECLOUD_SPAN sites record into.
    [[nodiscard]] static tracer& global();

    [[nodiscard]] bool enabled() const noexcept;
    /// Starts a capture: re-anchors the timestamp origin and enables
    /// recording (rings keep their events until reset()).
    void start() noexcept;
    void stop() noexcept;
    /// Discards captured events and drop counts. Rings stay allocated (live
    /// threads keep writing into them on the next start()).
    void reset() noexcept;

    /// Events each NEW per-thread ring can hold (existing rings keep their
    /// capacity). Default 1 << 15.
    void set_ring_capacity(std::size_t events) noexcept;

    /// Names the calling thread in exported traces (and creates its ring).
    void set_current_thread_name(const std::string& name);

    /// Nanoseconds since the capture started (steady clock).
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    /// Records one completed span on the calling thread's ring.
    void record(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns) noexcept;

    /// Events dropped to full rings since the last reset().
    [[nodiscard]] std::uint64_t dropped() const noexcept;
    /// Events currently captured across all rings.
    [[nodiscard]] std::uint64_t captured() const noexcept;

    /// Chrome trace-event JSON ({"traceEvents":[...]}) with per-thread
    /// metadata, build provenance and the drop count.
    [[nodiscard]] std::string export_chrome_trace() const;
    /// Writes export_chrome_trace() to `path`; false when unwritable.
    bool export_to_file(const std::string& path) const;

private:
    tracer();
    struct impl;
    impl* impl_;
};

/// RAII span: measures construction-to-destruction and records it when the
/// tracer was enabled at construction.
class scoped_span {
public:
    explicit scoped_span(const char* name) noexcept {
        tracer& t = tracer::global();
        if (t.enabled()) {
            name_ = name;
            start_ = t.now_ns();
        }
    }
    ~scoped_span() {
        if (name_ != nullptr) {
            tracer& t = tracer::global();
            t.record(name_, start_, t.now_ns() - start_);
        }
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t start_ = 0;
};

/// RECLOUD_TRACE env override: unset/""/"0"/"off"/"false" leave the
/// configured choice ("0"-family forces OFF); anything else forces ON.
/// Returns -1 (unset), 0 (forced off) or 1 (forced on).
[[nodiscard]] int trace_env_override() noexcept;

/// RECLOUD_TRACE_PATH, or `fallback` when unset/empty.
[[nodiscard]] std::string trace_env_path(const std::string& fallback);

}  // namespace recloud::obs

#define RECLOUD_SPAN_CAT2(a, b) a##b
#define RECLOUD_SPAN_CAT(a, b) RECLOUD_SPAN_CAT2(a, b)
/// Opens a scope-long span. `name` must be a string literal.
#define RECLOUD_SPAN(name)                                     \
    ::recloud::obs::scoped_span RECLOUD_SPAN_CAT(recloud_span_, \
                                                 __LINE__){name}
