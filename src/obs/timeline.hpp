// Search timeline export (observability tentpole, part 3): one JSONL record
// per annealing iteration — temperature, candidate R/CIW, accept/reject,
// verdict-cache hit rate, assessment rounds — plus a periodic progress
// heartbeat, so a long Tmax run can be watched (tail -f) and analyzed after
// the fact. Extends the improvement-only trace_to_csv (Figure 9 series)
// which records nothing while the search plateaus.
//
// The annealing loop publishes plain-number events through the
// search_observer callback; this layer knows nothing about plans or
// topologies, and the search knows nothing about files — re_cloud (or a
// test) wires the two together. Observers run on the search thread and must
// not touch samplers (§6: telemetry never perturbs verdicts); writing to a
// file is safe, the clock is never read (heartbeats key off the event's own
// elapsed_seconds, so a timeline is a pure function of the search it saw).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace recloud::obs {

enum class search_event_kind : std::uint8_t {
    initial,         ///< the starting plan's evaluation
    accepted,        ///< neighbor improved (or tied) and was taken
    accepted_worse,  ///< uphill move taken (Eq. 4)
    rejected,        ///< assessed but not taken
    symmetric_skip,  ///< discarded by the symmetry signature, not assessed
    filtered,        ///< discarded by the resource filter, not assessed
    heartbeat,       ///< periodic progress record (emitted by the sink)
};

[[nodiscard]] const char* to_string(search_event_kind kind) noexcept;

/// One annealing iteration, flattened to numbers. For skip/filter kinds the
/// candidate_* fields are zero (the plan was never assessed).
struct search_iteration_event {
    search_event_kind kind = search_event_kind::initial;
    /// Which annealing chain emitted the event (anneal_chains); 0 for
    /// single-chain searches.
    std::uint32_t chain = 0;
    /// deployment_service request tag; 0 outside the service (request ids
    /// start at 1).
    std::uint64_t request_id = 0;
    std::uint64_t iteration = 0;  ///< plans generated so far
    double elapsed_seconds = 0.0;
    double temperature = 0.0;  ///< Eq. 6 at this iteration
    double candidate_score = 0.0;
    double candidate_reliability = 0.0;
    double candidate_ciw = 0.0;
    std::uint64_t candidate_rounds = 0;  ///< assessment rounds spent on it
    double best_score = 0.0;
    std::uint64_t plans_evaluated = 0;
    double cache_hit_rate = -1.0;  ///< verdict cache; < 0 when unknown
};

/// Hook the annealing loop calls once per iteration (and once for the
/// initial plan). Must not throw.
using search_observer = std::function<void(const search_iteration_event&)>;

/// JSONL sink for search_iteration_events. First line is a build-provenance
/// record; heartbeat records are interleaved every `heartbeat` of search
/// time (0 disables them).
class search_timeline {
public:
    /// Opens `path` for writing; throws std::runtime_error when unwritable.
    explicit search_timeline(
        const std::string& path,
        std::chrono::milliseconds heartbeat = std::chrono::milliseconds{0});
    ~search_timeline();
    search_timeline(const search_timeline&) = delete;
    search_timeline& operator=(const search_timeline&) = delete;

    void on_event(const search_iteration_event& event);

    /// Records written so far (including build + heartbeats).
    [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

    /// One JSONL line (no trailing newline) for an event — the single
    /// serialization both this sink and tests use.
    [[nodiscard]] static std::string to_json_line(
        const search_iteration_event& event);

private:
    void write_line(const std::string& line);

    std::FILE* out_ = nullptr;
    double heartbeat_seconds_ = 0.0;
    double last_heartbeat_ = 0.0;
    std::uint64_t records_ = 0;
};

}  // namespace recloud::obs
