// Build provenance (observability satellite): which exact binary produced a
// result. Every JSON/trace/timeline export and the CLI banner embed this so
// BENCH_*.json rows and Perfetto traces stay attributable after the fact.
//
// The values are baked in at compile time: the git hash and sanitizer preset
// come from CMake (per-file compile definitions on build_info.cpp — editing
// them never triggers a full rebuild), the compiler string from __VERSION__.
#pragma once

#include <string>

namespace recloud {

struct build_info_t {
    const char* git_hash;    ///< short commit hash, "unknown" outside a checkout
    const char* compiler;    ///< e.g. "g++ 13.2.0"
    const char* build_type;  ///< CMAKE_BUILD_TYPE at configure time
    const char* sanitizer;   ///< RECLOUD_SANITIZE preset, "" when none
};

/// The constants describing this binary.
[[nodiscard]] const build_info_t& build_info() noexcept;

/// {"git":"..","compiler":"..","build_type":"..","sanitizer":".."} — shared
/// by every exporter so the provenance object is identical everywhere.
[[nodiscard]] std::string build_info_json();

/// One-line human form for the CLI banner:
/// "recloud <git> (<compiler>, <build_type>[, <sanitizer>])".
[[nodiscard]] std::string build_info_banner();

}  // namespace recloud
