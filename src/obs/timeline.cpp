#include "obs/timeline.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/build_info.hpp"

namespace recloud::obs {
namespace {

/// Round-trippable double without trailing cruft; non-finite values become
/// null (JSON has no nan/inf).
std::string number(double value) {
    if (!std::isfinite(value)) {
        return "null";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    return buffer;
}

}  // namespace

const char* to_string(search_event_kind kind) noexcept {
    switch (kind) {
        case search_event_kind::initial: return "initial";
        case search_event_kind::accepted: return "accepted";
        case search_event_kind::accepted_worse: return "accepted_worse";
        case search_event_kind::rejected: return "rejected";
        case search_event_kind::symmetric_skip: return "symmetric_skip";
        case search_event_kind::filtered: return "filtered";
        case search_event_kind::heartbeat: return "heartbeat";
    }
    return "unknown";
}

search_timeline::search_timeline(const std::string& path,
                                 std::chrono::milliseconds heartbeat)
    : heartbeat_seconds_(static_cast<double>(heartbeat.count()) / 1000.0) {
    out_ = std::fopen(path.c_str(), "w");
    if (out_ == nullptr) {
        throw std::runtime_error{"search_timeline: cannot write " + path};
    }
    write_line("{\"type\":\"build\",\"build\":" + build_info_json() + "}");
}

search_timeline::~search_timeline() {
    if (out_ != nullptr) {
        std::fclose(out_);
    }
}

std::string search_timeline::to_json_line(const search_iteration_event& event) {
    std::string out = "{\"type\":\"";
    out += event.kind == search_event_kind::heartbeat ? "heartbeat" : "iteration";
    out += "\",\"kind\":\"";
    out += to_string(event.kind);
    out += "\",\"chain\":";
    out += std::to_string(event.chain);
    if (event.request_id != 0) {
        out += ",\"request\":";
        out += std::to_string(event.request_id);
    }
    out += ",\"iteration\":";
    out += std::to_string(event.iteration);
    out += ",\"elapsed_seconds\":";
    out += number(event.elapsed_seconds);
    out += ",\"temperature\":";
    out += number(event.temperature);
    const bool assessed = event.kind != search_event_kind::symmetric_skip &&
                          event.kind != search_event_kind::filtered &&
                          event.kind != search_event_kind::heartbeat;
    if (assessed) {
        out += ",\"candidate_score\":";
        out += number(event.candidate_score);
        out += ",\"candidate_reliability\":";
        out += number(event.candidate_reliability);
        out += ",\"candidate_ciw\":";
        out += number(event.candidate_ciw);
        out += ",\"candidate_rounds\":";
        out += std::to_string(event.candidate_rounds);
    }
    out += ",\"best_score\":";
    out += number(event.best_score);
    out += ",\"plans_evaluated\":";
    out += std::to_string(event.plans_evaluated);
    if (event.cache_hit_rate >= 0.0) {
        out += ",\"cache_hit_rate\":";
        out += number(event.cache_hit_rate);
    }
    out += "}";
    return out;
}

void search_timeline::on_event(const search_iteration_event& event) {
    if (heartbeat_seconds_ > 0.0 &&
        event.elapsed_seconds >= last_heartbeat_ + heartbeat_seconds_) {
        last_heartbeat_ = event.elapsed_seconds;
        search_iteration_event beat = event;
        beat.kind = search_event_kind::heartbeat;
        write_line(to_json_line(beat));
    }
    write_line(to_json_line(event));
}

void search_timeline::write_line(const std::string& line) {
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    ++records_;
}

}  // namespace recloud::obs
