// Live introspection endpoint (observability tentpole, part 3): a tiny
// poll()-based HTTP/1.0 server on a Unix-domain socket, serving the
// process's observability surfaces to curl / Prometheus scrapers without
// touching any assessment state:
//
//   GET /metrics  Prometheus text exposition (v0.0.4) of a telemetry
//                 snapshot — typically the merged global registry, so after
//                 a harvest it includes socket-worker counters too.
//   GET /status   owner-provided JSON (the deployment service exports
//                 per-shard queue depth / high-water mark, per-tenant
//                 in-flight counts, shed counters, fleet gauges).
//   GET /healthz  constant {"status":"ok"} liveness probe (no callbacks).
//   GET /trace    owner-provided trace dump (Chrome trace-event JSON) —
//                 the on-demand trace-dump trigger.
//
// Design constraints, matching the rest of obs/:
//   * Pure observability: handlers run on the server's own thread and only
//     read snapshots; no RNG, sampler or verdict state is reachable from
//     here (§6 determinism contract).
//   * One thread, poll()-driven, self-pipe wakeup for shutdown — the same
//     idiom as exec/socket_transport. Non-blocking fds throughout; a slow
//     or stuck client can never wedge the server (bounded request size,
//     bounded client count, partial writes resume on POLLOUT).
//   * Failure-isolated: a throwing endpoint callback becomes a 500
//     response, never escapes the server thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace recloud::obs {

/// Renders a snapshot in Prometheus text exposition format (version 0.0.4).
///
/// Name mapping: dots become underscores and every metric is prefixed
/// "recloud_" ("service.submitted" -> "recloud_service_submitted"). A purely
/// numeric dotted segment is lifted into a label named after the segment
/// before it ("service.shard.3.queue_depth" ->
/// recloud_service_shard_queue_depth{shard="3"}), so per-instance series
/// share one metric family. Samples are grouped per family under a single
/// # TYPE line, families sorted by name.
///
/// Histograms: the registry's log-2 buckets (bucket b holds v with
/// floor(log2(v+1)) == b, i.e. v in [2^b - 1, 2^(b+1) - 2]) are exported as
/// CUMULATIVE le-buckets with upper bound 2^(b+1) - 2, up to the highest
/// non-empty bucket, then le="+Inf", plus _sum and _count.
[[nodiscard]] std::string prometheus_exposition(const telemetry_snapshot& snap);

/// Owner-provided content sources; a null callback 404s its route.
struct admin_endpoints {
    std::function<telemetry_snapshot()> metrics;  ///< GET /metrics
    std::function<std::string()> status_json;     ///< GET /status
    std::function<std::string()> trace_json;      ///< GET /trace
};

/// Server counters (monotonic since construction).
struct admin_server_stats {
    std::uint64_t connections = 0;  ///< accepted clients
    std::uint64_t requests = 0;     ///< well-formed requests answered
    std::uint64_t errors = 0;       ///< bad requests, handler throws, I/O drops
};

class admin_server {
public:
    /// Binds and starts serving immediately. Replaces a stale socket file
    /// at `socket_path` (unlink before bind). Throws std::runtime_error
    /// when the path is too long for sockaddr_un or the socket cannot be
    /// bound/listened.
    admin_server(std::string socket_path, admin_endpoints endpoints);
    ~admin_server();  ///< stop()
    admin_server(const admin_server&) = delete;
    admin_server& operator=(const admin_server&) = delete;

    /// Stops accepting, closes every client, joins the server thread and
    /// unlinks the socket file. Idempotent.
    void stop();

    [[nodiscard]] const std::string& socket_path() const noexcept;
    [[nodiscard]] admin_server_stats stats() const noexcept;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

}  // namespace recloud::obs
