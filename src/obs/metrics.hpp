// Metrics registry (observability tentpole, part 1): named counters, gauges
// and integer histograms, readable on demand as an immutable
// telemetry_snapshot.
//
// Design constraints, in order:
//   1. Telemetry must NEVER perturb results. The registry touches no RNG, no
//      sampler and no verdict — only thread-local slots and the clock-free
//      arithmetic below — so the §6 determinism contract (bit-identical
//      assessment_stats for any worker count, telemetry on or off) holds by
//      construction.
//   2. Near-zero cost when disabled: every hot-path write starts with one
//      relaxed atomic load + predictable branch (see RECLOUD_COUNTER_ADD).
//   3. Never block the hot path: writes go to per-thread sharded slots
//      (plain relaxed atomics the owning thread alone mutates); the only
//      locks are taken at shard creation (once per thread) and in
//      snapshot()/reset() (cold, caller-driven).
//
// Aggregation: snapshot() sums every live shard plus the totals retired by
// exited threads. Counters sum, gauges are last-write-wins process-level
// values (set() is not sharded — gauges are snapshot-time publishes, e.g.
// engine_stats mirrored into the registry), histograms merge per-bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace recloud::obs {

enum class metric_kind : std::uint8_t { counter, gauge, histogram };

/// Opaque handle returned by registration; cheap to copy, valid for the
/// registry's lifetime.
struct metric_id {
    std::uint32_t raw = 0;
};

/// Log-2 bucketed integer histogram: bucket b counts values v with
/// floor(log2(v + 1)) == b, so bucket 0 is {0}, bucket 1 is {1, 2}, ...
/// Nanosecond durations up to ~584 years fit in the 64 buckets.
struct histogram_snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, 64> buckets{};

    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) / static_cast<double>(count);
    }
};

struct metric_entry {
    std::string name;
    metric_kind kind = metric_kind::counter;
    std::uint64_t value = 0;  ///< counters and gauges
    histogram_snapshot histogram;  ///< engaged when kind == histogram
};

/// Immutable point-in-time view of a registry, entries sorted by name.
struct telemetry_snapshot {
    std::vector<metric_entry> metrics;

    /// nullptr when no metric of that name exists.
    [[nodiscard]] const metric_entry* find(std::string_view name) const noexcept;
    /// Counter/gauge value, or 0 when missing (histograms return count).
    [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;
};

class metrics_registry {
public:
    /// Capacity per kind; registration beyond these throws std::length_error.
    /// Fixed so per-thread shards are single flat allocations that never
    /// resize (resizing would need hot-path synchronization).
    static constexpr std::size_t max_counters = 192;
    static constexpr std::size_t max_gauges = 64;
    static constexpr std::size_t max_histograms = 24;

    metrics_registry();
    ~metrics_registry();
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    /// The process-wide registry all RECLOUD_* macros write to.
    [[nodiscard]] static metrics_registry& global();

    /// Registers (or looks up) a metric. Idempotent per name; re-registering
    /// under a different kind throws std::invalid_argument.
    [[nodiscard]] metric_id counter(std::string_view name);
    [[nodiscard]] metric_id gauge(std::string_view name);
    [[nodiscard]] metric_id histogram(std::string_view name);

    /// Hot-path writes. No-ops while disabled (except set(): gauges are
    /// snapshot-time publishes and must not silently vanish).
    void add(metric_id id, std::uint64_t delta) noexcept;
    void observe(metric_id id, std::uint64_t value) noexcept;
    void set(metric_id id, std::uint64_t value) noexcept;

    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }
    void set_enabled(bool on) noexcept {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /// Aggregates all shards into an immutable snapshot (cold; locks).
    [[nodiscard]] telemetry_snapshot snapshot() const;

    /// Zeroes every slot and gauge; registered names survive.
    void reset() noexcept;

    /// Folds a harvested snapshot (a worker process's registry delta) into
    /// this registry: counters add, histograms merge bucket-wise (count,
    /// sum, min, max included), gauges are skipped — they are process-local
    /// last-write-wins publishes and do not sum across processes. Unknown
    /// names register on the fly; a kind mismatch or exhausted capacity
    /// skips that entry (harvest must never take down the master).
    void merge_snapshot(const telemetry_snapshot& snap) noexcept;

private:
    struct shard;
    struct tls_entry;
    friend struct tls_entry;

    [[nodiscard]] metric_id register_metric(std::string_view name,
                                            metric_kind kind);
    [[nodiscard]] shard& local_shard();
    void retire(shard* s) noexcept;

    struct impl;
    impl* impl_;
    std::atomic<bool> enabled_{false};
};

}  // namespace recloud::obs

// Call-site counter increment: the handle is registered once (thread-safe
// static init) and the disabled path is one relaxed load + branch. `name`
// must be a string literal (or otherwise outlive the first call).
#define RECLOUD_COUNTER_ADD(name, delta)                                      \
    do {                                                                      \
        auto& recloud_obs_reg_ = ::recloud::obs::metrics_registry::global();  \
        if (recloud_obs_reg_.enabled()) {                                     \
            static const ::recloud::obs::metric_id recloud_obs_id_ =          \
                recloud_obs_reg_.counter(name);                               \
            recloud_obs_reg_.add(recloud_obs_id_, (delta));                   \
        }                                                                     \
    } while (0)

#define RECLOUD_COUNTER_INC(name) RECLOUD_COUNTER_ADD(name, 1)

#define RECLOUD_HIST_OBSERVE(name, value)                                     \
    do {                                                                      \
        auto& recloud_obs_reg_ = ::recloud::obs::metrics_registry::global();  \
        if (recloud_obs_reg_.enabled()) {                                     \
            static const ::recloud::obs::metric_id recloud_obs_id_ =          \
                recloud_obs_reg_.histogram(name);                             \
            recloud_obs_reg_.observe(recloud_obs_id_, (value));               \
        }                                                                     \
    } while (0)
