#include "topology/links.hpp"

#include <string>

namespace recloud {

link_attachment attach_link_components(const built_topology& topo,
                                       component_registry& registry,
                                       const link_attachment_options& options) {
    link_attachment attachment;
    const std::size_t edges = topo.graph.edge_count();
    attachment.component_of_edge.assign(edges, invalid_node);
    for (std::uint32_t edge = 0; edge < edges; ++edge) {
        const auto [a, b] = topo.graph.edge_endpoints(edge);
        const bool is_peering = topo.graph.kind(a) == node_kind::external ||
                                topo.graph.kind(b) == node_kind::external;
        if (is_peering && options.skip_external_peering) {
            continue;
        }
        attachment.component_of_edge[edge] = registry.add(
            component_kind::network_link,
            "link#" + std::to_string(a) + "-" + std::to_string(b));
    }
    return attachment;
}

}  // namespace recloud
