// Power-supply attachment (paper §4.1).
//
// The evaluation adds P power supplies (default 5) per data center as shared
// dependencies: each switch, and the *group of hosts under each edge switch*,
// is assigned one supply in round-robin order "to maximize power diversity".
// A failing supply takes down every component assigned to it — the textbook
// correlated failure.
#pragma once

#include <cstddef>
#include <vector>

#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "topology/graph.hpp"

namespace recloud {

struct power_attachment_options {
    std::size_t supply_count = 5;
    /// Number of redundant supplies per assignment. 1 reproduces the paper's
    /// setting (a single supply feeds each switch / host group); >1 wires an
    /// AND gate over distinct supplies (Figure 5's redundant-power case).
    std::size_t redundancy = 1;
};

struct power_assignment {
    /// Component ids of the created power supplies.
    std::vector<component_id> supplies;
    /// For each graph node: the supplies feeding it (empty for nodes without
    /// power dependency, e.g. the external node). Host entries alias their
    /// edge-switch group's supplies.
    std::vector<std::vector<component_id>> supplies_of_node;
};

/// Creates the supplies in `registry` (probability left at 0 — assign with a
/// probability model afterwards or before, see notes in core/recloud),
/// assigns them round-robin, and attaches the corresponding fault trees in
/// `forest`. `forest` must already cover the graph's nodes.
[[nodiscard]] power_assignment attach_power_supplies(
    const built_topology& topo, component_registry& registry,
    fault_tree_forest& forest, const power_attachment_options& options = {});

}  // namespace recloud
