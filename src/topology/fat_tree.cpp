#include "topology/fat_tree.hpp"

#include <stdexcept>
#include <string>

namespace recloud {

const char* to_string(data_center_scale scale) noexcept {
    switch (scale) {
        case data_center_scale::tiny: return "tiny";
        case data_center_scale::small: return "small";
        case data_center_scale::medium: return "medium";
        case data_center_scale::large: return "large";
    }
    return "unknown";
}

int fat_tree_k_for(data_center_scale scale) noexcept {
    switch (scale) {
        case data_center_scale::tiny: return 8;
        case data_center_scale::small: return 16;
        case data_center_scale::medium: return 24;
        case data_center_scale::large: return 48;
    }
    return 8;
}

fat_tree fat_tree::build(data_center_scale scale) {
    return build(fat_tree_k_for(scale));
}

fat_tree fat_tree::build(int k) {
    if (k < 4 || k % 2 != 0) {
        throw std::invalid_argument{"fat_tree: k must be even and >= 4"};
    }
    fat_tree ft;
    ft.k_ = k;
    const int g = k / 2;
    ft.g_ = g;
    ft.core_count_ = static_cast<std::uint32_t>(g) * static_cast<std::uint32_t>(g);
    ft.pod_stride_ = static_cast<std::uint32_t>(2 * g + g * g);
    const int pods = k - 1;
    ft.border_base_ = ft.core_count_ + static_cast<std::uint32_t>(pods) * ft.pod_stride_;

    network_graph& graph = ft.topo_.graph;

    // Allocation order must match the arithmetic addressing documented in
    // the header: cores, then per-pod (aggs, edges, hosts), borders, external.
    for (std::uint32_t i = 0; i < ft.core_count_; ++i) {
        graph.add_node(node_kind::core_switch);
    }
    for (int p = 0; p < pods; ++p) {
        for (int j = 0; j < g; ++j) {
            graph.add_node(node_kind::aggregation_switch);
        }
        for (int e = 0; e < g; ++e) {
            graph.add_node(node_kind::edge_switch);
        }
        for (int e = 0; e < g; ++e) {
            for (int h = 0; h < g; ++h) {
                graph.add_node(node_kind::host);
            }
        }
    }
    for (int j = 0; j < g; ++j) {
        graph.add_node(node_kind::border_switch);
    }
    ft.topo_.external = graph.add_node(node_kind::external);

    // Wiring. Aggregation switch `j` of every pod — and border switch `j` —
    // uplinks to core group j, i.e. cores (j, 0..g-1).
    for (int p = 0; p < pods; ++p) {
        for (int j = 0; j < g; ++j) {
            const node_id agg = ft.aggregation(p, j);
            for (int i = 0; i < g; ++i) {
                graph.add_edge(agg, ft.core(j, i));
            }
            for (int e = 0; e < g; ++e) {
                graph.add_edge(agg, ft.edge(p, e));
            }
        }
        for (int e = 0; e < g; ++e) {
            const node_id edge = ft.edge(p, e);
            for (int h = 0; h < g; ++h) {
                graph.add_edge(edge, ft.host(p, e, h));
            }
        }
    }
    for (int j = 0; j < g; ++j) {
        const node_id border = ft.border(j);
        for (int i = 0; i < g; ++i) {
            graph.add_edge(border, ft.core(j, i));
        }
        graph.add_edge(border, ft.topo_.external);
    }
    graph.freeze();

    ft.topo_.hosts.reserve(static_cast<std::size_t>(pods) * g * g);
    for (int p = 0; p < pods; ++p) {
        for (int e = 0; e < g; ++e) {
            for (int h = 0; h < g; ++h) {
                ft.topo_.hosts.push_back(ft.host(p, e, h));
            }
        }
    }
    ft.topo_.border_switches.reserve(g);
    for (int j = 0; j < g; ++j) {
        ft.topo_.border_switches.push_back(ft.border(j));
    }
    ft.topo_.name = "fat-tree(k=" + std::to_string(k) + ")";
    return ft;
}

node_id fat_tree::core(int group, int index) const noexcept {
    return static_cast<node_id>(group * g_ + index);
}

node_id fat_tree::aggregation(int pod, int group) const noexcept {
    return core_count_ + static_cast<node_id>(pod) * pod_stride_ +
           static_cast<node_id>(group);
}

node_id fat_tree::edge(int pod, int edge_index) const noexcept {
    return core_count_ + static_cast<node_id>(pod) * pod_stride_ +
           static_cast<node_id>(g_ + edge_index);
}

node_id fat_tree::host(int pod, int edge_index, int slot) const noexcept {
    return core_count_ + static_cast<node_id>(pod) * pod_stride_ +
           static_cast<node_id>(2 * g_ + edge_index * g_ + slot);
}

node_id fat_tree::border(int group) const noexcept {
    return border_base_ + static_cast<node_id>(group);
}

bool fat_tree::is_host(node_id id) const noexcept {
    if (id < core_count_ || id >= border_base_) {
        return false;
    }
    const std::uint32_t within = (id - core_count_) % pod_stride_;
    return within >= static_cast<std::uint32_t>(2 * g_);
}

int fat_tree::pod_of_host(node_id id) const noexcept {
    return static_cast<int>((id - core_count_) / pod_stride_);
}

int fat_tree::edge_index_of_host(node_id id) const noexcept {
    const std::uint32_t within = (id - core_count_) % pod_stride_;
    return static_cast<int>((within - 2 * g_) / g_);
}

node_id fat_tree::edge_of_host(node_id id) const noexcept {
    return edge(pod_of_host(id), edge_index_of_host(id));
}

}  // namespace recloud
