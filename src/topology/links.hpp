// Link failure modeling (paper §2.1: "network components (e.g., network
// connectivity across hardware components)").
//
// Every edge of the routing graph can be registered as a fallible
// component. Oracles consult the per-round state of the traversed link in
// addition to both endpoint nodes, so a cut cable isolates exactly the
// paths crossing it. The external peering links (border switch <-> external)
// can optionally be kept infallible, mirroring providers that model their
// upstream transit separately.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/component_registry.hpp"
#include "topology/graph.hpp"

namespace recloud {

struct link_attachment_options {
    /// Keep border<->external peering links infallible (probability 0 and
    /// no component registered; queries report them alive).
    bool skip_external_peering = false;
};

struct link_attachment {
    /// Per graph edge id: the link's component id, or invalid_node if this
    /// edge was not registered (external peering with skip option).
    std::vector<component_id> component_of_edge;

    /// True if the link of `edge` is effectively failed in the current
    /// round of `failed_fn` (a callable component_id -> bool).
    template <typename FailedFn>
    [[nodiscard]] bool link_failed(std::uint32_t edge, FailedFn&& failed_fn) const {
        const component_id c = component_of_edge[edge];
        return c != invalid_node && failed_fn(c);
    }
};

/// Registers one component per graph edge (probability 0 — assign with a
/// probability model afterwards; links count as "every other component" in
/// the paper's §4.1 setting).
[[nodiscard]] link_attachment attach_link_components(
    const built_topology& topo, component_registry& registry,
    const link_attachment_options& options = {});

}  // namespace recloud
