// Topology summary counters — the rows of the paper's Table 2.
#pragma once

#include <cstddef>
#include <string>

#include "topology/graph.hpp"

namespace recloud {

struct topology_stats {
    std::string name;
    std::size_t core_switches = 0;
    std::size_t aggregation_switches = 0;
    std::size_t edge_switches = 0;
    std::size_t border_switches = 0;
    std::size_t hosts = 0;
    std::size_t links = 0;  ///< undirected edges, including external peering
};

[[nodiscard]] topology_stats compute_topology_stats(const built_topology& topo);

}  // namespace recloud
