// Two-tier leaf–spine topology.
//
// Every leaf (top-of-rack) switch connects to every spine switch; a
// configurable number of border leaves peer with the external node through
// all spines. reCloud's assessment is architecture-agnostic (paper §3.1,
// §3.2): plugging in this builder plus the generic BFS routing oracle is all
// it takes to run on a leaf–spine fabric.
#pragma once

#include "topology/graph.hpp"

namespace recloud {

struct leaf_spine_params {
    int spines = 4;
    int leaves = 8;
    int hosts_per_leaf = 16;
    int border_leaves = 2;  ///< leaf switches dedicated to external peering
};

/// Builds a leaf–spine topology. Border leaves carry no hosts; they connect
/// to all spines and to the external node.
[[nodiscard]] built_topology build_leaf_spine(const leaf_spine_params& params);

}  // namespace recloud
