#include "topology/power.hpp"

#include <stdexcept>
#include <string>

namespace recloud {

power_assignment attach_power_supplies(const built_topology& topo,
                                       component_registry& registry,
                                       fault_tree_forest& forest,
                                       const power_attachment_options& options) {
    if (options.supply_count == 0) {
        throw std::invalid_argument{"attach_power_supplies: need >= 1 supply"};
    }
    if (options.redundancy == 0 || options.redundancy > options.supply_count) {
        throw std::invalid_argument{
            "attach_power_supplies: redundancy must be in [1, supply_count]"};
    }

    power_assignment assignment;
    assignment.supplies.reserve(options.supply_count);
    for (std::size_t i = 0; i < options.supply_count; ++i) {
        assignment.supplies.push_back(registry.add(
            component_kind::power_supply, "power_supply#" + std::to_string(i)));
    }
    assignment.supplies_of_node.resize(topo.graph.node_count());

    std::size_t next = 0;  // round-robin cursor over supplies
    const auto pick_supplies = [&] {
        std::vector<component_id> picked;
        picked.reserve(options.redundancy);
        for (std::size_t r = 0; r < options.redundancy; ++r) {
            picked.push_back(
                assignment.supplies[(next + r) % options.supply_count]);
        }
        ++next;
        return picked;
    };
    const auto attach_to = [&](node_id node, const std::vector<component_id>& supplies) {
        assignment.supplies_of_node[node] = supplies;
        if (supplies.size() == 1) {
            forest.attach(node, forest.add_leaf(supplies.front()));
        } else {
            // Redundant supplies: the node loses power only if ALL of them
            // fail (Figure 5's AND gate).
            std::vector<tree_node_id> leaves;
            leaves.reserve(supplies.size());
            for (component_id s : supplies) {
                leaves.push_back(forest.add_leaf(s));
            }
            forest.attach(node, forest.add_and(std::move(leaves)));
        }
    };

    // Every switch gets a supply assignment, in node-id order.
    for (node_id id = 0; id < topo.graph.node_count(); ++id) {
        if (is_switch(topo.graph.kind(id))) {
            attach_to(id, pick_supplies());
        }
    }
    // The group of hosts under each edge switch shares one assignment: all
    // hosts adjacent to that edge switch get the same supplies.
    for (node_id id = 0; id < topo.graph.node_count(); ++id) {
        if (topo.graph.kind(id) != node_kind::edge_switch) {
            continue;
        }
        const auto group = pick_supplies();
        for (node_id neighbor : topo.graph.neighbors(id)) {
            if (topo.graph.kind(neighbor) == node_kind::host) {
                attach_to(neighbor, group);
            }
        }
    }
    return assignment;
}

}  // namespace recloud
