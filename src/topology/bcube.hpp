// BCube topology (Guo et al., SIGCOMM'09): the server-centric architecture
// for modular data centers. Servers have k+1 ports and participate in
// packet forwarding; level-l switches connect servers that agree on every
// address digit except digit l.
//
// BCube(n, k) has n^(k+1) servers and (k+1) * n^k switches. Server
// addresses are k+1 digits base n; server s attaches at level l to the
// switch whose index is s with digit l removed.
//
// reCloud runs on BCube through the generic BFS oracle, which naturally
// models server-relayed paths: an alive server forwards traffic, so a
// deployment can stay border-reachable through *other servers* even when
// all of a rack's switches are down — reachability semantics no
// switch-centric topology exhibits. External connectivity: a configurable
// number of top-level switches peer with the external node.
#pragma once

#include "topology/graph.hpp"

namespace recloud {

struct bcube_params {
    int ports = 4;   ///< n: switch port count and digits' base
    int levels = 1;  ///< k: highest level; k+1 switch layers in total
    int border_switches = 2;  ///< top-level switches peering externally
};

[[nodiscard]] built_topology build_bcube(const bcube_params& params);

}  // namespace recloud
