#include "topology/stats.hpp"

namespace recloud {

topology_stats compute_topology_stats(const built_topology& topo) {
    topology_stats s;
    s.name = topo.name;
    s.core_switches = topo.graph.count_of_kind(node_kind::core_switch);
    s.aggregation_switches = topo.graph.count_of_kind(node_kind::aggregation_switch);
    s.edge_switches = topo.graph.count_of_kind(node_kind::edge_switch);
    s.border_switches = topo.graph.count_of_kind(node_kind::border_switch);
    s.hosts = topo.graph.count_of_kind(node_kind::host);
    s.links = topo.graph.edge_count();
    return s;
}

}  // namespace recloud
