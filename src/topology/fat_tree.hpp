// Fat-tree (k-port) topology with external connectivity via a dedicated
// border pod, matching the paper's Table 2.
//
// A classic k-port fat-tree has k pods. Following Google's Jupiter approach
// (paper §3.1), one pod position is dedicated to external peering: it is
// modeled as k/2 border switches that sit at the aggregation level, each
// wired to the same k/2 core switches an aggregation switch would use, and
// each peering with the synthetic "external" node. The remaining k-1 pods
// are regular (k/2 aggregation + k/2 edge switches, (k/2)^2 hosts each).
//
// This reproduces Table 2 exactly, e.g. k=8: 16 core, 28 agg, 28 edge,
// 4 border switches and 112 hosts.
//
// Node id layout (dense, arithmetic addressing — the routing oracle relies
// on it):
//   [0, g*g)                           core switches; core(j, i) = j*g + i
//   [core_end + p*pod_stride, ...)     pod p: aggs, then edges, then hosts
//   [border_base, border_base + g)     border switches; border(j)
//   external                           last id
// where g = k/2 and pod_stride = 2g + g*g.
#pragma once

#include <cstdint>

#include "topology/graph.hpp"

namespace recloud {

/// Preset scales from Table 2 of the paper.
enum class data_center_scale : std::uint8_t { tiny, small, medium, large };

[[nodiscard]] const char* to_string(data_center_scale scale) noexcept;

/// Switch port count for a Table 2 preset (8 / 16 / 24 / 48).
[[nodiscard]] int fat_tree_k_for(data_center_scale scale) noexcept;

/// A built fat-tree with arithmetic index accessors.
class fat_tree {
public:
    /// Builds a k-port fat-tree with a dedicated border pod. Requires k even
    /// and k >= 4.
    static fat_tree build(int k);

    /// Convenience: build one of the Table 2 presets.
    static fat_tree build(data_center_scale scale);

    [[nodiscard]] const built_topology& topology() const noexcept { return topo_; }
    [[nodiscard]] const network_graph& graph() const noexcept { return topo_.graph; }

    [[nodiscard]] int k() const noexcept { return k_; }
    /// g = k/2: aggregation switches per pod, core groups, border switches.
    [[nodiscard]] int group_width() const noexcept { return g_; }
    /// Number of regular (host-carrying) pods: k - 1.
    [[nodiscard]] int pod_count() const noexcept { return k_ - 1; }
    [[nodiscard]] int hosts_per_pod() const noexcept { return g_ * g_; }
    [[nodiscard]] int hosts_per_edge() const noexcept { return g_; }

    // -- arithmetic node addressing ------------------------------------
    [[nodiscard]] node_id core(int group, int index) const noexcept;
    [[nodiscard]] node_id aggregation(int pod, int group) const noexcept;
    [[nodiscard]] node_id edge(int pod, int edge_index) const noexcept;
    [[nodiscard]] node_id host(int pod, int edge_index, int slot) const noexcept;
    [[nodiscard]] node_id border(int group) const noexcept;
    [[nodiscard]] node_id external() const noexcept { return topo_.external; }

    // -- reverse lookups (only valid for ids of the matching kind) ------
    [[nodiscard]] bool is_host(node_id id) const noexcept;
    [[nodiscard]] int pod_of_host(node_id id) const noexcept;
    [[nodiscard]] int edge_index_of_host(node_id id) const noexcept;
    /// The edge (top-of-rack) switch a host hangs off. A "rack" in the
    /// common-practice baseline is exactly one edge switch.
    [[nodiscard]] node_id edge_of_host(node_id id) const noexcept;

private:
    fat_tree() = default;

    int k_ = 0;
    int g_ = 0;
    std::uint32_t pod_stride_ = 0;
    std::uint32_t core_count_ = 0;
    std::uint32_t border_base_ = 0;
    built_topology topo_;
};

}  // namespace recloud
