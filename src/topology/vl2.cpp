#include "topology/vl2.hpp"

#include <stdexcept>
#include <string>

namespace recloud {

built_topology build_vl2(const vl2_params& params) {
    if (params.intermediates < 1 || params.aggregations < 2 || params.tors < 1 ||
        params.hosts_per_tor < 1) {
        throw std::invalid_argument{"build_vl2: invalid parameters"};
    }
    if (params.border_intermediates < 1 ||
        params.border_intermediates > params.intermediates) {
        throw std::invalid_argument{
            "build_vl2: border_intermediates must be in [1, intermediates]"};
    }
    built_topology topo;
    network_graph& graph = topo.graph;

    // The first `border_intermediates` intermediates double as border
    // switches (they get the border kind so probability models and
    // route-and-check treat them as the external peering points).
    std::vector<node_id> intermediates;
    intermediates.reserve(params.intermediates);
    for (int i = 0; i < params.intermediates; ++i) {
        const bool is_border = i < params.border_intermediates;
        const node_id id = graph.add_node(is_border ? node_kind::border_switch
                                                    : node_kind::core_switch);
        intermediates.push_back(id);
        if (is_border) {
            topo.border_switches.push_back(id);
        }
    }
    std::vector<node_id> aggregations;
    aggregations.reserve(params.aggregations);
    for (int a = 0; a < params.aggregations; ++a) {
        aggregations.push_back(graph.add_node(node_kind::aggregation_switch));
    }
    topo.external = graph.add_node(node_kind::external);

    for (node_id agg : aggregations) {
        for (node_id intermediate : intermediates) {
            graph.add_edge(agg, intermediate);
        }
    }
    for (int t = 0; t < params.tors; ++t) {
        const node_id tor = graph.add_node(node_kind::edge_switch);
        // Each ToR dual-homes to two aggregation switches (VL2's design).
        graph.add_edge(tor, aggregations[(2 * t) % params.aggregations]);
        graph.add_edge(tor, aggregations[(2 * t + 1) % params.aggregations]);
        for (int h = 0; h < params.hosts_per_tor; ++h) {
            const node_id host = graph.add_node(node_kind::host);
            graph.add_edge(tor, host);
            topo.hosts.push_back(host);
        }
    }
    for (node_id border : topo.border_switches) {
        graph.add_edge(border, topo.external);
    }
    graph.freeze();
    topo.name = "vl2(" + std::to_string(params.intermediates) + "," +
                std::to_string(params.aggregations) + "," +
                std::to_string(params.tors) + ")";
    return topo;
}

}  // namespace recloud
