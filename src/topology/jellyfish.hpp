// Jellyfish topology (Singla et al., NSDI'12): switches wired as a random
// regular graph, hosts spread evenly across switches. Exercises reCloud on
// a topology with no symmetry at all — the generic BFS routing oracle is the
// only oracle that applies, and the network-transformation symmetry check
// degenerates gracefully (no two plans are structurally equivalent).
#pragma once

#include <cstdint>

#include "topology/graph.hpp"

namespace recloud {

struct jellyfish_params {
    int switches = 20;
    int degree = 4;  ///< switch-to-switch ports per switch
    int hosts_per_switch = 4;
    int border_switches = 2;
    std::uint64_t seed = 1;  ///< wiring randomness
};

/// Builds a Jellyfish topology. The random regular graph is produced with
/// the standard pairing-and-repair construction; with valid parameters
/// (switches * degree even, degree < switches) it always terminates.
[[nodiscard]] built_topology build_jellyfish(const jellyfish_params& params);

}  // namespace recloud
