// DCell topology (Guo et al., SIGCOMM'08) — level-1 construction.
//
// DCell_0 is n servers on one mini-switch. DCell_1 combines n+1 DCell_0
// cells and fully interconnects them with ONE direct server-to-server link
// per cell pair: for every pair of cells i < j, server j-1 of cell i links
// to server i of cell j. Every server therefore has exactly two ports: its
// cell switch and one inter-cell link — and the fabric keeps working when
// switches die, by relaying through servers (the paper's fault-tolerance
// pitch).
//
// External connectivity: the first `border_cells` cells' switches peer with
// the external node (and carry the border kind).
#pragma once

#include "topology/graph.hpp"

namespace recloud {

struct dcell_params {
    int servers_per_cell = 4;  ///< n; the construction yields n+1 cells
    int border_cells = 1;
};

[[nodiscard]] built_topology build_dcell(const dcell_params& params);

}  // namespace recloud
