#include "topology/bcube.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace recloud {
namespace {

std::uint64_t int_pow(std::uint64_t base, int exponent) {
    std::uint64_t result = 1;
    for (int i = 0; i < exponent; ++i) {
        result *= base;
    }
    return result;
}

}  // namespace

built_topology build_bcube(const bcube_params& params) {
    if (params.ports < 2 || params.levels < 0) {
        throw std::invalid_argument{"build_bcube: need ports >= 2, levels >= 0"};
    }
    const auto n = static_cast<std::uint64_t>(params.ports);
    const int k = params.levels;
    const std::uint64_t servers = int_pow(n, k + 1);
    const std::uint64_t switches_per_level = int_pow(n, k);
    if (servers > 2'000'000) {
        throw std::invalid_argument{"build_bcube: topology too large"};
    }
    if (params.border_switches < 1 ||
        static_cast<std::uint64_t>(params.border_switches) > switches_per_level) {
        throw std::invalid_argument{
            "build_bcube: border_switches must be in [1, n^k]"};
    }

    built_topology topo;
    network_graph& graph = topo.graph;

    std::vector<node_id> server_ids;
    server_ids.reserve(servers);
    for (std::uint64_t s = 0; s < servers; ++s) {
        const node_id id = graph.add_node(node_kind::host);
        server_ids.push_back(id);
        topo.hosts.push_back(id);
    }
    // Switch (l, m): level l in [0, k], index m in [0, n^k). The top level's
    // first `border_switches` switches peer with the external node.
    std::vector<std::vector<node_id>> switch_ids(k + 1);
    for (int l = 0; l <= k; ++l) {
        switch_ids[l].reserve(switches_per_level);
        for (std::uint64_t m = 0; m < switches_per_level; ++m) {
            const bool is_border =
                l == k && m < static_cast<std::uint64_t>(params.border_switches);
            const node_id id = graph.add_node(is_border ? node_kind::border_switch
                                                        : node_kind::edge_switch);
            switch_ids[l].push_back(id);
            if (is_border) {
                topo.border_switches.push_back(id);
            }
        }
    }
    topo.external = graph.add_node(node_kind::external);

    // Wiring: switch (l, m) connects the n servers obtained by inserting
    // each digit d at position l of m's digit string.
    for (int l = 0; l <= k; ++l) {
        const std::uint64_t low_mod = int_pow(n, l);
        for (std::uint64_t m = 0; m < switches_per_level; ++m) {
            const std::uint64_t low = m % low_mod;
            const std::uint64_t high = m / low_mod;
            for (std::uint64_t d = 0; d < n; ++d) {
                const std::uint64_t server =
                    high * low_mod * n + d * low_mod + low;
                graph.add_edge(switch_ids[l][m], server_ids[server]);
            }
        }
    }
    for (const node_id border : topo.border_switches) {
        graph.add_edge(border, topo.external);
    }
    graph.freeze();
    topo.name = "bcube(n=" + std::to_string(params.ports) +
                ",k=" + std::to_string(k) + ")";
    return topo;
}

}  // namespace recloud
