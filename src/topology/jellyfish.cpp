#include "topology/jellyfish.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"

namespace recloud {
namespace {

/// Generates a random r-regular simple graph over n vertices using the
/// pairing model with edge-swap repair for duplicates/self-loops.
std::set<std::pair<int, int>> random_regular_edges(int n, int r, rng& random) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * r);
    for (int v = 0; v < n; ++v) {
        for (int i = 0; i < r; ++i) {
            stubs.push_back(v);
        }
    }
    const auto shuffle_stubs = [&] {
        for (std::size_t i = stubs.size(); i > 1; --i) {
            std::swap(stubs[i - 1], stubs[random.uniform_below(i)]);
        }
    };

    std::set<std::pair<int, int>> edges;
    for (int attempt = 0; attempt < 200; ++attempt) {
        edges.clear();
        shuffle_stubs();
        bool ok = true;
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            int a = stubs[i];
            int b = stubs[i + 1];
            if (a == b) {
                ok = false;
                break;
            }
            if (a > b) {
                std::swap(a, b);
            }
            if (!edges.emplace(a, b).second) {
                ok = false;  // duplicate edge
                break;
            }
        }
        if (ok) {
            return edges;
        }
    }
    throw std::runtime_error{
        "build_jellyfish: failed to generate a random regular graph; "
        "parameters too tight (try lower degree or more switches)"};
}

}  // namespace

built_topology build_jellyfish(const jellyfish_params& params) {
    if (params.switches < 2 || params.degree < 1 ||
        params.degree >= params.switches || params.hosts_per_switch < 0) {
        throw std::invalid_argument{"build_jellyfish: invalid parameters"};
    }
    if ((params.switches * params.degree) % 2 != 0) {
        throw std::invalid_argument{
            "build_jellyfish: switches * degree must be even"};
    }
    if (params.border_switches < 1 || params.border_switches > params.switches) {
        throw std::invalid_argument{
            "build_jellyfish: border_switches must be in [1, switches]"};
    }

    rng random{params.seed};
    const auto edges = random_regular_edges(params.switches, params.degree, random);

    built_topology topo;
    network_graph& graph = topo.graph;
    std::vector<node_id> switches;
    switches.reserve(params.switches);
    for (int s = 0; s < params.switches; ++s) {
        const bool is_border = s < params.border_switches;
        const node_id id = graph.add_node(is_border ? node_kind::border_switch
                                                    : node_kind::edge_switch);
        switches.push_back(id);
        if (is_border) {
            topo.border_switches.push_back(id);
        }
    }
    topo.external = graph.add_node(node_kind::external);

    for (const auto& [a, b] : edges) {
        graph.add_edge(switches[a], switches[b]);
    }
    for (int s = 0; s < params.switches; ++s) {
        for (int h = 0; h < params.hosts_per_switch; ++h) {
            const node_id host = graph.add_node(node_kind::host);
            graph.add_edge(switches[s], host);
            topo.hosts.push_back(host);
        }
    }
    for (node_id border : topo.border_switches) {
        graph.add_edge(border, topo.external);
    }
    graph.freeze();
    topo.name = "jellyfish(n=" + std::to_string(params.switches) +
                ",r=" + std::to_string(params.degree) + ")";
    return topo;
}

}  // namespace recloud
