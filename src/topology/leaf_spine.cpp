#include "topology/leaf_spine.hpp"

#include <stdexcept>
#include <string>

namespace recloud {

built_topology build_leaf_spine(const leaf_spine_params& params) {
    if (params.spines < 1 || params.leaves < 1 || params.hosts_per_leaf < 1 ||
        params.border_leaves < 1) {
        throw std::invalid_argument{"build_leaf_spine: all counts must be >= 1"};
    }
    built_topology topo;
    network_graph& graph = topo.graph;

    std::vector<node_id> spines;
    spines.reserve(params.spines);
    for (int s = 0; s < params.spines; ++s) {
        spines.push_back(graph.add_node(node_kind::core_switch));
    }
    std::vector<node_id> leaves;
    leaves.reserve(params.leaves);
    for (int l = 0; l < params.leaves; ++l) {
        leaves.push_back(graph.add_node(node_kind::edge_switch));
    }
    for (int b = 0; b < params.border_leaves; ++b) {
        topo.border_switches.push_back(graph.add_node(node_kind::border_switch));
    }
    topo.external = graph.add_node(node_kind::external);

    for (node_id leaf : leaves) {
        for (node_id spine : spines) {
            graph.add_edge(leaf, spine);
        }
        for (int h = 0; h < params.hosts_per_leaf; ++h) {
            const node_id host = graph.add_node(node_kind::host);
            graph.add_edge(leaf, host);
            topo.hosts.push_back(host);
        }
    }
    for (node_id border : topo.border_switches) {
        for (node_id spine : spines) {
            graph.add_edge(border, spine);
        }
        graph.add_edge(border, topo.external);
    }
    graph.freeze();
    topo.name = "leaf-spine(" + std::to_string(params.spines) + "x" +
                std::to_string(params.leaves) + ")";
    return topo;
}

}  // namespace recloud
