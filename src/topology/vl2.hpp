// VL2-style Clos topology (Greenberg et al., SIGCOMM'09).
//
// Three switch tiers: intermediate (core), aggregation, and top-of-rack.
// Intermediate and aggregation switches form a complete bipartite graph;
// every ToR connects to two aggregation switches; hosts hang off ToRs. A
// configurable number of intermediate switches also peer with the external
// node (acting as border switches).
#pragma once

#include "topology/graph.hpp"

namespace recloud {

struct vl2_params {
    int intermediates = 4;
    int aggregations = 8;
    int tors = 16;
    int hosts_per_tor = 20;
    int border_intermediates = 2;
};

[[nodiscard]] built_topology build_vl2(const vl2_params& params);

}  // namespace recloud
