#include "topology/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace recloud {

const char* to_string(node_kind kind) noexcept {
    switch (kind) {
        case node_kind::host: return "host";
        case node_kind::edge_switch: return "edge_switch";
        case node_kind::aggregation_switch: return "aggregation_switch";
        case node_kind::core_switch: return "core_switch";
        case node_kind::border_switch: return "border_switch";
        case node_kind::external: return "external";
    }
    return "unknown";
}

node_id network_graph::add_node(node_kind kind) {
    if (frozen_) {
        throw std::logic_error{"network_graph: add_node after freeze"};
    }
    kinds_.push_back(kind);
    return static_cast<node_id>(kinds_.size() - 1);
}

void network_graph::add_edge(node_id a, node_id b) {
    if (frozen_) {
        throw std::logic_error{"network_graph: add_edge after freeze"};
    }
    if (a >= kinds_.size() || b >= kinds_.size()) {
        throw std::out_of_range{"network_graph: edge endpoint does not exist"};
    }
    if (a == b) {
        throw std::invalid_argument{"network_graph: self-loops are not allowed"};
    }
    edge_pairs_.push_back(a);
    edge_pairs_.push_back(b);
}

void network_graph::freeze() {
    if (frozen_) {
        throw std::logic_error{"network_graph: freeze called twice"};
    }
    const std::size_t n = kinds_.size();
    std::vector<std::uint32_t> degrees(n, 0);
    for (node_id endpoint : edge_pairs_) {
        ++degrees[endpoint];
    }
    csr_offsets_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        csr_offsets_[i + 1] = csr_offsets_[i] + degrees[i];
    }
    csr_neighbors_.assign(edge_pairs_.size(), invalid_node);
    csr_edge_ids_.assign(edge_pairs_.size(), 0);
    std::vector<std::uint32_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
    for (std::size_t e = 0; e + 1 < edge_pairs_.size(); e += 2) {
        const node_id a = edge_pairs_[e];
        const node_id b = edge_pairs_[e + 1];
        const auto edge = static_cast<std::uint32_t>(e / 2);
        csr_edge_ids_[cursor[a]] = edge;
        csr_neighbors_[cursor[a]++] = b;
        csr_edge_ids_[cursor[b]] = edge;
        csr_neighbors_[cursor[b]++] = a;
    }
    frozen_ = true;
}

std::span<const std::uint32_t> network_graph::incident_edges(node_id id) const {
    if (!frozen_) {
        throw std::logic_error{"network_graph: incident_edges before freeze"};
    }
    if (id >= kinds_.size()) {
        throw std::out_of_range{"network_graph: bad node id"};
    }
    return {csr_edge_ids_.data() + csr_offsets_[id],
            csr_edge_ids_.data() + csr_offsets_[id + 1]};
}

std::uint32_t network_graph::edge_id(node_id a, node_id b) const {
    const auto na = neighbors(a);
    const auto nb = neighbors(b);
    const node_id from = na.size() <= nb.size() ? a : b;
    const node_id target = na.size() <= nb.size() ? b : a;
    const auto from_neighbors = neighbors(from);
    const auto from_edges = incident_edges(from);
    for (std::size_t i = 0; i < from_neighbors.size(); ++i) {
        if (from_neighbors[i] == target) {
            return from_edges[i];
        }
    }
    throw std::invalid_argument{"network_graph: no such edge"};
}

std::pair<node_id, node_id> network_graph::edge_endpoints(
    std::uint32_t edge) const {
    if (!frozen_) {
        throw std::logic_error{"network_graph: edge_endpoints before freeze"};
    }
    if (static_cast<std::size_t>(edge) * 2 + 1 >= edge_pairs_.size()) {
        throw std::out_of_range{"network_graph: bad edge id"};
    }
    return {edge_pairs_[edge * 2], edge_pairs_[edge * 2 + 1]};
}

std::span<const node_id> network_graph::neighbors(node_id id) const {
    if (!frozen_) {
        throw std::logic_error{"network_graph: neighbors before freeze"};
    }
    if (id >= kinds_.size()) {
        throw std::out_of_range{"network_graph: bad node id"};
    }
    return {csr_neighbors_.data() + csr_offsets_[id],
            csr_neighbors_.data() + csr_offsets_[id + 1]};
}

std::size_t network_graph::degree(node_id id) const {
    return neighbors(id).size();
}

std::vector<node_id> network_graph::nodes_of_kind(node_kind kind) const {
    std::vector<node_id> result;
    for (node_id id = 0; id < kinds_.size(); ++id) {
        if (kinds_[id] == kind) {
            result.push_back(id);
        }
    }
    return result;
}

std::size_t network_graph::count_of_kind(node_kind kind) const noexcept {
    return static_cast<std::size_t>(
        std::count(kinds_.begin(), kinds_.end(), kind));
}

node_id rack_of(const network_graph& graph, node_id host) {
    node_id rack = invalid_node;
    for (const node_id neighbor : graph.neighbors(host)) {
        if (is_switch(graph.kind(neighbor)) && neighbor < rack) {
            rack = neighbor;
        }
    }
    if (rack == invalid_node) {
        throw std::invalid_argument{"rack_of: host has no switch neighbor"};
    }
    return rack;
}

bool network_graph::has_edge(node_id a, node_id b) const {
    const auto na = neighbors(a);
    const auto nb = neighbors(b);
    const auto& smaller = na.size() <= nb.size() ? na : nb;
    const node_id target = na.size() <= nb.size() ? b : a;
    return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

}  // namespace recloud
