// Generic data-center network graph.
//
// Nodes are infrastructure components that participate in routing (hosts,
// switches, and one synthetic "external" node modeling the Internet side of
// the border switches). Node ids double as component ids in the fault model:
// the component registry reserves the first graph.node_count() ids for graph
// nodes, and appends non-routing dependency components (power supplies,
// software, ...) after them.
//
// The graph is built by add_node/add_edge and then frozen into a CSR
// adjacency layout for cache-friendly traversal.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace recloud {

/// Component / node identifier. Valid ids are dense, starting at 0.
using node_id = std::uint32_t;

/// Sentinel for "no node".
inline constexpr node_id invalid_node = static_cast<node_id>(-1);

/// Role of a node in the data-center network.
enum class node_kind : std::uint8_t {
    host,
    edge_switch,         ///< top-of-rack switch
    aggregation_switch,  ///< pod-level aggregation switch
    core_switch,
    border_switch,  ///< peers with external entities (paper §3.1)
    external,       ///< synthetic node standing for the Internet
};

[[nodiscard]] const char* to_string(node_kind kind) noexcept;

/// Returns true for any switch kind (edge/aggregation/core/border).
[[nodiscard]] constexpr bool is_switch(node_kind kind) noexcept {
    return kind == node_kind::edge_switch || kind == node_kind::aggregation_switch ||
           kind == node_kind::core_switch || kind == node_kind::border_switch;
}

/// Undirected multigraph over typed nodes with CSR adjacency.
class network_graph {
public:
    /// Adds a node and returns its id. Only valid before freeze().
    node_id add_node(node_kind kind);

    /// Adds an undirected edge. Only valid before freeze(); both endpoints
    /// must already exist. Self-loops are rejected.
    void add_edge(node_id a, node_id b);

    /// Builds the CSR adjacency. Must be called exactly once, after which
    /// the graph is immutable.
    void freeze();

    [[nodiscard]] bool frozen() const noexcept { return frozen_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return kinds_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edge_pairs_.size() / 2; }

    [[nodiscard]] node_kind kind(node_id id) const { return kinds_.at(id); }

    /// Neighbors of a node; requires freeze().
    [[nodiscard]] std::span<const node_id> neighbors(node_id id) const;

    /// Edge ids incident to a node, parallel to neighbors(): the i-th entry
    /// is the id of the edge to the i-th neighbor. Edge ids are dense in
    /// [0, edge_count()). Requires freeze().
    [[nodiscard]] std::span<const std::uint32_t> incident_edges(node_id id) const;

    /// Id of the edge {a, b}; throws std::invalid_argument if absent.
    /// Requires freeze(). O(min degree).
    [[nodiscard]] std::uint32_t edge_id(node_id a, node_id b) const;

    /// Endpoints of an edge id (in insertion order). Requires freeze().
    [[nodiscard]] std::pair<node_id, node_id> edge_endpoints(std::uint32_t edge) const;

    /// Degree of a node; requires freeze().
    [[nodiscard]] std::size_t degree(node_id id) const;

    /// All nodes of the given kind, in id order.
    [[nodiscard]] std::vector<node_id> nodes_of_kind(node_kind kind) const;

    /// Number of nodes of the given kind.
    [[nodiscard]] std::size_t count_of_kind(node_kind kind) const noexcept;

    /// True if an edge {a, b} exists; requires freeze(). O(min degree).
    [[nodiscard]] bool has_edge(node_id a, node_id b) const;

private:
    std::vector<node_kind> kinds_;
    std::vector<node_id> edge_pairs_;  ///< flat [a0,b0,a1,b1,...]; kept after
                                       ///< freeze for edge_endpoints()
    std::vector<std::uint32_t> csr_offsets_;
    std::vector<node_id> csr_neighbors_;
    std::vector<std::uint32_t> csr_edge_ids_;  ///< parallel to csr_neighbors_
    bool frozen_ = false;
};

/// The switch a host directly hangs off (its "rack" / top-of-rack switch for
/// anti-affinity purposes). If the host is multi-homed the lowest-id switch
/// is returned; throws if `host` has no switch neighbor.
[[nodiscard]] node_id rack_of(const network_graph& graph, node_id host);

/// A built topology, independent of the concrete architecture: the graph
/// plus the index lists every consumer needs (deployable hosts, border
/// switches, the external node).
struct built_topology {
    network_graph graph;
    std::vector<node_id> hosts;
    std::vector<node_id> border_switches;
    node_id external = invalid_node;
    std::string name;
};

}  // namespace recloud
