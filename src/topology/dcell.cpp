#include "topology/dcell.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace recloud {

built_topology build_dcell(const dcell_params& params) {
    const int n = params.servers_per_cell;
    if (n < 2) {
        throw std::invalid_argument{"build_dcell: need >= 2 servers per cell"};
    }
    const int cells = n + 1;
    if (params.border_cells < 1 || params.border_cells > cells) {
        throw std::invalid_argument{
            "build_dcell: border_cells must be in [1, n+1]"};
    }

    built_topology topo;
    network_graph& graph = topo.graph;

    // servers[c][s] and one switch per cell.
    std::vector<std::vector<node_id>> servers(cells);
    std::vector<node_id> switches(cells);
    for (int c = 0; c < cells; ++c) {
        const bool border = c < params.border_cells;
        switches[c] = graph.add_node(border ? node_kind::border_switch
                                            : node_kind::edge_switch);
        if (border) {
            topo.border_switches.push_back(switches[c]);
        }
        servers[c].reserve(n);
        for (int s = 0; s < n; ++s) {
            const node_id id = graph.add_node(node_kind::host);
            servers[c].push_back(id);
            topo.hosts.push_back(id);
            graph.add_edge(switches[c], id);
        }
    }
    topo.external = graph.add_node(node_kind::external);

    // Level-1 interconnection: cells i < j joined by servers (i, j-1) and
    // (j, i).
    for (int i = 0; i < cells; ++i) {
        for (int j = i + 1; j < cells; ++j) {
            graph.add_edge(servers[i][j - 1], servers[j][i]);
        }
    }
    for (const node_id border : topo.border_switches) {
        graph.add_edge(border, topo.external);
    }
    graph.freeze();
    topo.name = "dcell(n=" + std::to_string(n) + ",k=1)";
    return topo;
}

}  // namespace recloud
