#include "core/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "routing/fat_tree_routing.hpp"

namespace recloud {

// ---- fat_tree_infrastructure (moved here from core/recloud.cpp) ---------

fat_tree_infrastructure::fat_tree_infrastructure(
    fat_tree tree, const infrastructure_options& options)
    : tree_(std::move(tree)),
      registry_(tree_.graph()),
      forest_(tree_.graph().node_count()),
      power_(attach_power_supplies(tree_.topology(), registry_, forest_,
                                   options.power)),
      random_(options.seed),
      workloads_(tree_.topology(), random_, options.workload) {
    if (options.model_link_failures) {
        links_ = attach_link_components(tree_.topology(), registry_,
                                        options.links);
    }
    // Probabilities are assigned after power/link attachment so every added
    // component is drawn from the same per-type model (§4.1: non-switch
    // components all follow the "every other component" distribution).
    assign_paper_probabilities(registry_, random_, options.probabilities);
}

fat_tree_infrastructure fat_tree_infrastructure::build(
    data_center_scale scale, const infrastructure_options& options) {
    return fat_tree_infrastructure{fat_tree::build(scale), options};
}

fat_tree_infrastructure fat_tree_infrastructure::build(
    int k, const infrastructure_options& options) {
    return fat_tree_infrastructure{fat_tree::build(k), options};
}

std::shared_ptr<fat_tree_infrastructure> fat_tree_infrastructure::build_shared(
    data_center_scale scale, const infrastructure_options& options) {
    // Constructed directly in its heap storage: the bundle's members point
    // into each other, so it must never move after construction.
    return std::shared_ptr<fat_tree_infrastructure>{
        new fat_tree_infrastructure{fat_tree::build(scale), options}};
}

std::shared_ptr<fat_tree_infrastructure> fat_tree_infrastructure::build_shared(
    int k, const infrastructure_options& options) {
    return std::shared_ptr<fat_tree_infrastructure>{
        new fat_tree_infrastructure{fat_tree::build(k), options}};
}

// ---- scenario -----------------------------------------------------------

std::unique_ptr<reachability_oracle> scenario::make_oracle() const {
    std::unique_ptr<reachability_oracle> oracle = oracle_prototype_->clone();
    if (oracle == nullptr) {
        // validate() checked clone-ability at freeze; reaching this means
        // the prototype changed behavior after freezing (a contract breach,
        // not a user error).
        throw std::logic_error{
            "scenario: oracle prototype stopped producing clones"};
    }
    return oracle;
}

void scenario::validate() const {
    if (topology_ == nullptr || registry_ == nullptr) {
        throw std::invalid_argument{
            "scenario: topology and registry are required"};
    }
    if (oracle_prototype_ == nullptr) {
        throw std::invalid_argument{"scenario: an oracle prototype is required"};
    }
    if (registry_->size() < topology_->graph.node_count()) {
        throw std::invalid_argument{
            "scenario: registry does not cover every topology node"};
    }
    if (oracle_prototype_->clone() == nullptr) {
        throw std::invalid_argument{
            "scenario: the oracle prototype must support clone() — scenarios "
            "hand out per-consumer oracles, never the prototype itself"};
    }
    const link_attachment* consulted = oracle_prototype_->consulted_links();
    if (consulted != nullptr && links_ != consulted) {
        // The foot-gun recloud_context documented but could not enforce:
        // symmetry signatures and the verdict-cache support set are derived
        // from the scenario's link pointer. If the oracle consults links the
        // scenario does not name (or a DIFFERENT attachment), link failures
        // are filtered out of cache keys and cached verdicts become wrong.
        throw std::invalid_argument{
            links_ == nullptr
                ? "scenario: the oracle consults link components but the "
                  "scenario names none — declare the same link_attachment "
                  "via links() or the verdict cache would be unsound"
                : "scenario: the oracle consults a different link_attachment "
                  "than the scenario names"};
    }
}

// ---- scenario_builder ---------------------------------------------------

scenario_builder& scenario_builder::name(std::string value) {
    draft_->name_ = std::move(value);
    return *this;
}

scenario_builder& scenario_builder::topology(const built_topology& topo) {
    draft_->topology_ = &topo;
    return *this;
}

scenario_builder& scenario_builder::registry(const component_registry& registry) {
    draft_->registry_ = &registry;
    return *this;
}

scenario_builder& scenario_builder::forest(const fault_tree_forest& forest) {
    draft_->forest_ = &forest;
    return *this;
}

scenario_builder& scenario_builder::links(const link_attachment& links) {
    draft_->links_ = &links;
    return *this;
}

scenario_builder& scenario_builder::workloads(const workload_map& workloads) {
    draft_->workloads_ = &workloads;
    return *this;
}

scenario_builder& scenario_builder::oracle(const reachability_oracle& prototype) {
    draft_->oracle_prototype_ = &prototype;
    return *this;
}

scenario_builder& scenario_builder::own_registry(
    std::shared_ptr<const component_registry> r) {
    draft_->registry_ = r.get();
    draft_->owned_.push_back(std::move(r));
    return *this;
}

scenario_builder& scenario_builder::own_oracle(
    std::shared_ptr<const reachability_oracle> o) {
    draft_->oracle_prototype_ = o.get();
    draft_->owned_.push_back(std::move(o));
    return *this;
}

scenario_builder& scenario_builder::keep_alive(
    std::shared_ptr<const void> object) {
    draft_->owned_.push_back(std::move(object));
    return *this;
}

scenario_ptr scenario_builder::freeze() {
    draft_->validate();
    scenario_ptr frozen = std::move(draft_);
    draft_.reset(new scenario);
    return frozen;
}

// ---- fat-tree conveniences ----------------------------------------------

namespace {

scenario_ptr freeze_fat_tree(std::shared_ptr<const fat_tree_infrastructure> infra) {
    auto oracle = std::make_shared<const fat_tree_routing>(
        infra->tree(), infra->links(), &infra->forest());
    scenario_builder builder;
    builder.name(infra->topology().name)
        .topology(infra->topology())
        .registry(infra->registry())
        .forest(infra->forest())
        .workloads(infra->workloads())
        .own_oracle(oracle);
    if (infra->links() != nullptr) {
        builder.links(*infra->links());
    }
    builder.keep_alive(std::move(infra));
    return builder.freeze();
}

}  // namespace

scenario_ptr make_fat_tree_scenario(data_center_scale scale,
                                    const infrastructure_options& options) {
    return freeze_fat_tree(fat_tree_infrastructure::build_shared(scale, options));
}

scenario_ptr make_fat_tree_scenario(int k, const infrastructure_options& options) {
    return freeze_fat_tree(fat_tree_infrastructure::build_shared(k, options));
}

scenario_ptr make_fat_tree_scenario(const fat_tree_infrastructure& infra) {
    // Borrowed bundle: the non-owning aliasing shared_ptr keeps the freeze
    // path identical while leaving lifetime with the caller.
    return freeze_fat_tree(std::shared_ptr<const fat_tree_infrastructure>{
        std::shared_ptr<const void>{}, &infra});
}

}  // namespace recloud
