#include "core/recloud.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exec/engine.hpp"
#include "sampling/antithetic.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"

namespace recloud {

fat_tree_infrastructure::fat_tree_infrastructure(
    fat_tree tree, const infrastructure_options& options)
    : tree_(std::move(tree)),
      registry_(tree_.graph()),
      forest_(tree_.graph().node_count()),
      power_(attach_power_supplies(tree_.topology(), registry_, forest_,
                                   options.power)),
      random_(options.seed),
      workloads_(tree_.topology(), random_, options.workload) {
    if (options.model_link_failures) {
        links_ = attach_link_components(tree_.topology(), registry_,
                                        options.links);
    }
    // Probabilities are assigned after power/link attachment so every added
    // component is drawn from the same per-type model (§4.1: non-switch
    // components all follow the "every other component" distribution).
    assign_paper_probabilities(registry_, random_, options.probabilities);
}

fat_tree_infrastructure fat_tree_infrastructure::build(
    data_center_scale scale, const infrastructure_options& options) {
    return fat_tree_infrastructure{fat_tree::build(scale), options};
}

fat_tree_infrastructure fat_tree_infrastructure::build(
    int k, const infrastructure_options& options) {
    return fat_tree_infrastructure{fat_tree::build(k), options};
}

namespace {

std::unique_ptr<failure_sampler> make_sampler(sampler_kind kind,
                                              std::span<const double> probabilities,
                                              std::uint64_t seed) {
    switch (kind) {
        case sampler_kind::monte_carlo:
            return std::make_unique<monte_carlo_sampler>(probabilities, seed);
        case sampler_kind::antithetic:
            return std::make_unique<antithetic_sampler>(probabilities, seed);
        case sampler_kind::extended_dagger:
            break;
    }
    return std::make_unique<extended_dagger_sampler>(probabilities, seed);
}

/// Wires the configured backend onto the context's oracle. The parallel and
/// engine backends give every worker its own oracle via clone().
///
/// Lifetime: every backend stores `sampler` as a non-owning pointer and
/// dereferences it on each assess()/reset_stream(). The caller (re_cloud's
/// constructor) owns the sampler in a member declared before backend_, so
/// it is destroyed after the backend — the pointer can never dangle within
/// re_cloud. Anyone else calling this owes the same guarantee.
std::unique_ptr<assessment_backend> make_backend(
    const recloud_context& context, const recloud_options& options,
    failure_sampler& sampler, const verdict_cache_options& cache_options) {
    if (options.backend == assessment_backend_kind::serial) {
        return std::make_unique<serial_backend>(context.registry->size(),
                                                context.forest, *context.oracle,
                                                sampler, cache_options);
    }
    if (context.oracle->clone() == nullptr) {
        throw std::invalid_argument{
            "re_cloud: the parallel/engine backends need a cloneable oracle"};
    }
    oracle_factory factory = [oracle = context.oracle] { return oracle->clone(); };
    if (options.backend == assessment_backend_kind::parallel) {
        return std::make_unique<parallel_backend>(
            context.registry->size(), context.forest, std::move(factory), sampler,
            parallel_backend_options{.threads = options.assessment_threads,
                                     .batch_rounds = options.assessment_batch_rounds,
                                     .verdict_cache = cache_options});
    }
    return std::make_unique<engine_backend>(
        context.registry->size(), context.forest, std::move(factory), sampler,
        engine_options{.workers = options.assessment_threads != 0
                                      ? options.assessment_threads
                                      : std::max(
                                            1u, std::thread::hardware_concurrency()),
                       .batch_rounds = options.assessment_batch_rounds,
                       .max_attempts = options.engine_max_attempts,
                       .batch_deadline = options.engine_batch_deadline,
                       .verdict_cache = cache_options});
}

/// CI/debug override: RECLOUD_VERDICT_CACHE forces the cache on or off
/// regardless of recloud_options ("0"/"off"/"false" disable; any other
/// value enables). Unset keeps the configured choice.
bool verdict_cache_enabled(const recloud_options& options) {
    const char* env = std::getenv("RECLOUD_VERDICT_CACHE");
    if (env == nullptr || *env == '\0') {
        return options.verdict_cache;
    }
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
           std::strcmp(env, "false") != 0;
}

}  // namespace

re_cloud::re_cloud(const recloud_context& context, const recloud_options& options)
    : context_(context), options_(options) {
    if (context_.topology == nullptr || context_.registry == nullptr ||
        context_.oracle == nullptr) {
        throw std::invalid_argument{
            "re_cloud: context needs topology, registry and oracle"};
    }
    if (options_.multi_objective && context_.workloads == nullptr) {
        throw std::invalid_argument{
            "re_cloud: multi-objective optimization needs workloads"};
    }
    if (options_.instance_workload_demand > 0.0 && context_.workloads == nullptr) {
        throw std::invalid_argument{
            "re_cloud: resource constraints need workloads"};
    }
    if (options_.instance_workload_demand < 0.0) {
        throw std::invalid_argument{
            "re_cloud: instance_workload_demand must be >= 0"};
    }
    if (options_.assessment_rounds == 0) {
        throw std::invalid_argument{"re_cloud: assessment_rounds must be >= 1"};
    }
    sampler_ = make_sampler(options_.sampler, context_.registry->probabilities(),
                            options_.seed);
    verdict_cache_options cache_options;
    if (verdict_cache_enabled(options_)) {
        support_.emplace(*context_.topology, context_.registry->size(),
                         context_.forest, context_.links);
        cache_options.enabled = true;
        cache_options.max_entries = options_.verdict_cache_entries;
        cache_options.support = &*support_;
    }
    backend_ = make_backend(context_, options_, *sampler_, cache_options);
    if (options_.backend == assessment_backend_kind::engine) {
        engine_view_ = static_cast<engine_backend*>(backend_.get());
    }
    if (options_.use_symmetry) {
        symmetry_.emplace(*context_.topology, *context_.registry, context_.forest,
                          context_.links);
    }
    if (options_.multi_objective) {
        utility_.emplace(*context_.workloads);
    }
}

re_cloud::re_cloud(fat_tree_infrastructure& infra, const recloud_options& options)
    : re_cloud(std::make_unique<fat_tree_routing>(infra.tree(), infra.links()),
               infra, options) {}

re_cloud::re_cloud(std::unique_ptr<fat_tree_routing> oracle,
                   fat_tree_infrastructure& infra, const recloud_options& options)
    : re_cloud(
          [&infra, &oracle] {
              recloud_context context;
              context.topology = &infra.topology();
              context.registry = &infra.registry();
              context.forest = &infra.forest();
              context.oracle = oracle.get();
              context.workloads = &infra.workloads();
              context.links = infra.links();
              return context;
          }(),
          options) {
    owned_oracle_ = std::move(oracle);
}

deployment_response re_cloud::find_deployment(const deployment_request& request) {
    request.app.validate();
    const std::uint32_t instances = request.app.total_instances();

    neighbor_generator neighbors{*context_.topology, options_.affinity,
                                 options_.seed};
    const plan_evaluator evaluator = [this, &request](const deployment_plan& plan) {
        if (options_.common_random_numbers) {
            // Same failure sequences for every candidate: comparisons
            // measure the plans, not the noise. Backends guarantee identical
            // streams after a reset regardless of their worker count.
            backend_->reset_stream(options_.seed ^ 0xc0ffeeULL);
        }
        return evaluate(request.app, plan);
    };

    annealing_options search_options;
    search_options.max_time = request.max_search_time;
    search_options.max_iterations = options_.max_iterations;
    search_options.desired_reliability = request.desired_reliability;
    search_options.use_symmetry = options_.use_symmetry;
    search_options.delta = options_.delta;
    search_options.seed = options_.seed + 0x5eedULL;
    search_options.record_trace = options_.record_trace;
    if (options_.observer) {
        // Forwarding wrapper: enrich each event with the verdict-cache hit
        // rate (reads counters only — cannot perturb the search).
        search_options.observer = [this](const obs::search_iteration_event& e) {
            obs::search_iteration_event event = e;
            if (const verdict_cache_stats* cache = backend_->cache_stats()) {
                event.cache_hit_rate = cache->hit_rate();
            }
            options_.observer(event);
        };
    }
    if (options_.instance_workload_demand > 0.0) {
        // §3.3.3: discard plans violating resource constraints before
        // spending an assessment on them.
        const double demand = options_.instance_workload_demand;
        const workload_map* workloads = context_.workloads;
        search_options.filter = [demand, workloads](const deployment_plan& plan) {
            for (const node_id host : plan.hosts) {
                if (workloads->of(host) + demand > 1.0) {
                    return false;
                }
            }
            return true;
        };
    }

    const symmetry_checker* symmetry = symmetry_ ? &*symmetry_ : nullptr;
    annealing_result result =
        anneal(neighbors, evaluator, symmetry, instances, search_options);

    deployment_response response;
    response.fulfilled = result.fulfilled;
    response.plan = result.best_plan;
    if (options_.common_random_numbers) {
        // Re-assess the winner on a fresh stream: the search maximized the
        // CRN estimate, so reporting it directly would carry winner's bias.
        backend_->reset_stream(options_.seed ^ 0xf1e5aULL);
        const plan_evaluation unbiased = evaluate(request.app, result.best_plan);
        response.stats = unbiased.stats;
        response.utility = unbiased.utility;
        response.score = unbiased.score;
        response.fulfilled =
            result.fulfilled &&
            unbiased.stats.reliability >= request.desired_reliability;
    } else {
        response.stats = result.best_evaluation.stats;
        response.utility = result.best_evaluation.utility;
        response.score = result.best_evaluation.score;
    }
    response.search = std::move(result);
    return response;
}

assessment_stats re_cloud::assess(const application& app,
                                  const deployment_plan& plan,
                                  std::size_t rounds) {
    app.validate();
    validate_plan(plan, app, *context_.topology);
    return backend_->assess(app, plan,
                            rounds == 0 ? options_.assessment_rounds : rounds);
}

const engine_stats* re_cloud::execution_stats() const noexcept {
    return engine_view_ != nullptr ? &engine_view_->stats() : nullptr;
}

obs::telemetry_snapshot re_cloud::telemetry() const {
    obs::metrics_registry& registry = obs::metrics_registry::global();
    // Gauges are snapshot-time publishes (set() works while the registry is
    // disabled): the structs stay the source of truth, the registry is the
    // one export surface. The "engine.stats."/"cache.stats." prefixes keep
    // them clear of the live "engine."/"cache." counters.
    if (const engine_stats* engine = execution_stats()) {
        registry.set(registry.gauge("engine.stats.batches"), engine->batches);
        registry.set(registry.gauge("engine.stats.dispatches"),
                     engine->dispatches);
        registry.set(registry.gauge("engine.stats.retries"), engine->retries);
        registry.set(registry.gauge("engine.stats.redispatches"),
                     engine->redispatches);
        registry.set(registry.gauge("engine.stats.degraded"), engine->degraded);
        registry.set(registry.gauge("engine.stats.worker_crashes"),
                     engine->worker_crashes);
        registry.set(registry.gauge("engine.stats.deadline_misses"),
                     engine->deadline_misses);
        registry.set(registry.gauge("engine.stats.invalid_frames"),
                     engine->invalid_frames);
        registry.set(registry.gauge("engine.stats.bytes_sent"),
                     engine->bytes_sent);
        registry.set(registry.gauge("engine.stats.bytes_received"),
                     engine->bytes_received);
    }
    if (const verdict_cache_stats* cache = cache_stats()) {
        registry.set(registry.gauge("cache.stats.rounds"), cache->rounds);
        registry.set(registry.gauge("cache.stats.empty_hits"),
                     cache->empty_hits);
        registry.set(registry.gauge("cache.stats.hits"), cache->hits);
        registry.set(registry.gauge("cache.stats.misses"), cache->misses);
        registry.set(registry.gauge("cache.stats.insertions"),
                     cache->insertions);
        registry.set(registry.gauge("cache.stats.evictions"), cache->evictions);
        registry.set(registry.gauge("cache.stats.rebinds"), cache->rebinds);
        registry.set(registry.gauge("cache.stats.support_size"),
                     cache->support_size);
        registry.set(registry.gauge("cache.stats.saved_rounds"),
                     cache->saved_rounds());
    }
    return registry.snapshot();
}

plan_evaluation re_cloud::evaluate(const application& app,
                                   const deployment_plan& plan) {
    plan_evaluation eval;
    eval.stats = backend_->assess(app, plan, options_.assessment_rounds);
    if (options_.multi_objective) {
        eval.utility = utility_->utility(plan);
        const double a = options_.weights.reliability;
        const double b = options_.weights.utility;
        const double total = a + b;
        // Eq. 7, normalized into [0, 1] so Eq. 5's log-ratio keeps its
        // order-of-magnitude meaning for the combined score.
        eval.score = total > 0.0
                         ? holistic_measure(eval.stats.reliability, eval.utility,
                                            options_.weights) /
                               total
                         : 0.0;
    } else {
        eval.score = eval.stats.reliability;
    }
    return eval;
}

}  // namespace recloud
