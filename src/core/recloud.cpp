#include "core/recloud.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exec/engine.hpp"
#include "obs/trace.hpp"
#include "sampling/antithetic.hpp"
#include "sampling/extended_dagger.hpp"
#include "sampling/monte_carlo.hpp"

namespace recloud {
namespace {

std::unique_ptr<failure_sampler> make_sampler(sampler_kind kind,
                                              std::span<const double> probabilities,
                                              std::uint64_t seed) {
    switch (kind) {
        case sampler_kind::monte_carlo:
            return std::make_unique<monte_carlo_sampler>(probabilities, seed);
        case sampler_kind::antithetic:
            return std::make_unique<antithetic_sampler>(probabilities, seed);
        case sampler_kind::extended_dagger:
            break;
    }
    return std::make_unique<extended_dagger_sampler>(probabilities, seed);
}

/// Wires the configured backend kind onto the scenario. The serial backend
/// judges rounds on `serial_oracle` (a clone the caller owns); the parallel
/// and engine backends clone per worker through the scenario — the captured
/// scenario_ptr keeps the snapshot alive for as long as the factory (and
/// thus the backend) exists.
///
/// Lifetime: every backend stores `sampler` as a non-owning pointer and
/// dereferences it on each assess()/reset_stream(). The caller (re_cloud's
/// constructor / make_chain_stack) owns the sampler in a member declared
/// before the backend (destroyed after it) — the pointer can never dangle
/// within re_cloud. Anyone else calling this owes the same guarantee.
std::unique_ptr<assessment_backend> make_backend(
    const scenario_ptr& scenario, const recloud_options& options,
    reachability_oracle* serial_oracle, failure_sampler& sampler,
    const verdict_cache_options& cache_options) {
    const std::size_t components = scenario->registry().size();
    const fault_tree_forest* forest = scenario->forest();
    if (options.backend == assessment_backend_kind::serial) {
        return std::make_unique<serial_backend>(components, forest,
                                                *serial_oracle, sampler,
                                                cache_options);
    }
    oracle_factory factory = [scenario] { return scenario->make_oracle(); };
    if (options.backend == assessment_backend_kind::parallel) {
        return std::make_unique<parallel_backend>(
            components, forest, std::move(factory), sampler,
            parallel_backend_options{.threads = options.assessment_threads,
                                     .batch_rounds = options.assessment_batch_rounds,
                                     .verdict_cache = cache_options});
    }
    engine_options eng{.workers = options.assessment_threads != 0
                                      ? options.assessment_threads
                                      : std::max(
                                            1u, std::thread::hardware_concurrency()),
                       .batch_rounds = options.assessment_batch_rounds,
                       .max_attempts = options.engine_max_attempts,
                       .batch_deadline = options.engine_batch_deadline,
                       .verdict_cache = cache_options};
    if (options.engine_transport == engine_transport_kind::socket) {
        eng.transport = transport_kind::socket;
        if (!options.engine_worker_binary.empty()) {
            eng.socket.worker_binary = options.engine_worker_binary;
        }
        eng.socket.max_respawns = options.engine_max_respawns;
        // The structural environment shipped to worker processes borrows
        // from the scenario; the caller holds the scenario_ptr for the
        // backend's whole lifetime (re_cloud's member order guarantees it).
        eng.topology = &scenario->topology();
        eng.links = scenario->links();
    }
    return std::make_unique<engine_backend>(components, forest,
                                            std::move(factory), sampler, eng);
}

/// CI/debug override: RECLOUD_VERDICT_CACHE forces the cache on or off
/// regardless of recloud_options ("0"/"off"/"false" disable; any other
/// value enables). Unset keeps the configured choice.
bool verdict_cache_enabled(const recloud_options& options) {
    const char* env = std::getenv("RECLOUD_VERDICT_CACHE");
    if (env == nullptr || *env == '\0') {
        return options.verdict_cache;
    }
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
           std::strcmp(env, "false") != 0;
}

/// Same override pattern for cross-plan incremental assessment:
/// RECLOUD_INCREMENTAL forces it on or off; unset keeps the configured
/// choice. Incremental mode still requires the verdict cache itself.
bool incremental_enabled(const recloud_options& options) {
    const char* env = std::getenv("RECLOUD_INCREMENTAL");
    if (env == nullptr || *env == '\0') {
        return options.incremental;
    }
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
           std::strcmp(env, "false") != 0;
}

}  // namespace

re_cloud::re_cloud(scenario_ptr scenario, const recloud_options& options)
    : scenario_(std::move(scenario)), options_(options) {
    if (scenario_ == nullptr) {
        throw std::invalid_argument{"re_cloud: a scenario is required"};
    }
    if (options_.multi_objective && scenario_->workloads() == nullptr) {
        throw std::invalid_argument{
            "re_cloud: multi-objective optimization needs workloads"};
    }
    if (options_.instance_workload_demand > 0.0 &&
        scenario_->workloads() == nullptr) {
        throw std::invalid_argument{
            "re_cloud: resource constraints need workloads"};
    }
    if (options_.instance_workload_demand < 0.0) {
        throw std::invalid_argument{
            "re_cloud: instance_workload_demand must be >= 0"};
    }
    if (options_.assessment_rounds == 0) {
        throw std::invalid_argument{"re_cloud: assessment_rounds must be >= 1"};
    }
    if (options_.search_chains == 0) {
        throw std::invalid_argument{"re_cloud: search_chains must be >= 1"};
    }
    if (options_.deterministic_schedule &&
        options_.max_iterations == static_cast<std::size_t>(-1)) {
        throw std::invalid_argument{
            "re_cloud: deterministic_schedule needs a finite max_iterations"};
    }
    sampler_ = make_sampler(options_.sampler, scenario_->registry().probabilities(),
                            options_.seed);
    if (verdict_cache_enabled(options_)) {
        support_.emplace(scenario_->topology(), scenario_->registry().size(),
                         scenario_->forest(), scenario_->links());
        cache_options_.enabled = true;
        cache_options_.max_entries = options_.verdict_cache_entries;
        cache_options_.support = &*support_;
        cache_options_.cross_plan = incremental_enabled(options_);
    }
    if (options_.backend == assessment_backend_kind::serial) {
        owned_oracle_ = scenario_->make_oracle();
    }
    backend_ = make_backend(scenario_, options_, owned_oracle_.get(), *sampler_,
                            cache_options_);
    if (options_.backend == assessment_backend_kind::engine) {
        engine_view_ = static_cast<engine_backend*>(backend_.get());
        // Aggregation scratch allocated up front so execution_stats() never
        // allocates while chains are live.
        aggregated_engine_stats_ = std::make_unique<engine_stats>();
    }
    if (options_.use_symmetry) {
        symmetry_.emplace(scenario_->topology(), scenario_->registry(),
                          scenario_->forest(), scenario_->links());
    }
    if (options_.multi_objective) {
        utility_.emplace(*scenario_->workloads());
    }
}

re_cloud::re_cloud(const fat_tree_infrastructure& infra,
                   const recloud_options& options)
    : re_cloud(make_fat_tree_scenario(infra), options) {}

re_cloud::~re_cloud() = default;

re_cloud::chain_stack re_cloud::make_chain_stack(std::uint64_t stream_id) const {
    chain_stack stack;
    stack.sampler = sampler_->fork(stream_id);
    if (stack.sampler == nullptr) {
        throw std::invalid_argument{
            "re_cloud: multi-chain search needs a sampler supporting fork()"};
    }
    if (options_.backend == assessment_backend_kind::serial) {
        stack.oracle = scenario_->make_oracle();
    }
    stack.backend = make_backend(scenario_, options_, stack.oracle.get(),
                                 *stack.sampler, cache_options_);
    return stack;
}

deployment_response re_cloud::find_deployment(const deployment_request& request) {
    request.app.validate();
    const std::uint32_t instances = request.app.total_instances();
    const std::size_t chain_count = options_.search_chains;
    const run_budget* budget = request.budget.get();

    // Chains 1..K-1 get their own assessment stack with a forked sampler
    // substream; chain 0 reuses the main stack, so K=1 is byte-for-byte the
    // single-chain path. Stacks persist across searches (like the main one).
    while (chains_.size() + 1 < chain_count) {
        chains_.push_back(make_chain_stack(chains_.size() + 1));
    }

    std::vector<std::unique_ptr<neighbor_generator>> generators;
    std::vector<plan_evaluator> evaluators;
    std::vector<chain_spec> specs;
    generators.reserve(chain_count);
    evaluators.reserve(chain_count);
    specs.reserve(chain_count);
    const std::uint64_t anneal_seed = options_.seed + 0x5eedULL;
    for (std::size_t c = 0; c < chain_count; ++c) {
        // Chain 0 keeps the legacy seeds exactly; higher chains derive
        // theirs from forked substreams, so growing K only ADDS trajectories
        // (prefix stability: chain c's trajectory is the same for any K > c).
        const std::uint64_t generator_seed =
            c == 0 ? options_.seed : substream_seed(options_.seed, c);
        generators.push_back(std::make_unique<neighbor_generator>(
            scenario_->topology(), options_.affinity, generator_seed));
        assessment_backend* backend =
            c == 0 ? backend_.get() : chains_[c - 1].backend.get();
        evaluators.push_back(
            [this, &request, backend](const deployment_plan& plan) {
                if (options_.common_random_numbers) {
                    // Same failure sequences for every candidate — and for
                    // every CHAIN: comparisons within a chain and across
                    // chains measure the plans, not the noise. Backends
                    // guarantee identical streams after a reset regardless
                    // of their worker count.
                    backend->reset_stream(options_.seed ^ 0xc0ffeeULL);
                }
                return evaluate_on(*backend, request.app, plan);
            });
        specs.push_back(chain_spec{
            generators[c].get(), &evaluators[c],
            c == 0 ? anneal_seed : substream_seed(anneal_seed, c)});
    }

    annealing_options search_options;
    search_options.max_time = request.max_search_time;
    search_options.max_iterations = options_.max_iterations;
    search_options.desired_reliability = request.desired_reliability;
    search_options.use_symmetry = options_.use_symmetry;
    search_options.delta = options_.delta;
    search_options.schedule = options_.deterministic_schedule
                                  ? schedule_mode::iterations
                                  : schedule_mode::wall_clock;
    search_options.record_trace = options_.record_trace;
    if (options_.observer) {
        // Forwarding wrapper: enrich each event with the emitting chain's
        // verdict-cache hit rate (reads counters only — cannot perturb the
        // search; the chain's own backend is idle while its observer runs).
        search_options.observer = [this](const obs::search_iteration_event& e) {
            obs::search_iteration_event event = e;
            const assessment_backend* backend =
                event.chain == 0 ? backend_.get()
                                 : chains_[event.chain - 1].backend.get();
            if (const verdict_cache_stats* cache = backend->cache_stats()) {
                event.cache_hit_rate = cache->hit_rate();
            }
            options_.observer(event);
        };
    }
    if (options_.instance_workload_demand > 0.0) {
        // §3.3.3: discard plans violating resource constraints before
        // spending an assessment on them.
        const double demand = options_.instance_workload_demand;
        const workload_map* workloads = scenario_->workloads();
        search_options.filter = [demand, workloads](const deployment_plan& plan) {
            for (const node_id host : plan.hosts) {
                if (workloads->of(host) + demand > 1.0) {
                    return false;
                }
            }
            return true;
        };
    }

    // Arm every chain's backend with the lifecycle token for the search;
    // guard-scoped so the token is disarmed before the final re-assessment
    // below (an anytime result still gets unbiased, complete stats) and on
    // any exception path (the borrowed token must not outlive the request).
    struct budget_guard {
        std::vector<assessment_backend*> armed;
        void disarm() noexcept {
            for (assessment_backend* backend : armed) {
                backend->set_budget(nullptr);
            }
            armed.clear();
        }
        ~budget_guard() { disarm(); }
    } guard;
    if (budget != nullptr) {
        guard.armed.push_back(backend_.get());
        for (const chain_stack& chain : chains_) {
            guard.armed.push_back(chain.backend.get());
        }
        for (assessment_backend* backend : guard.armed) {
            backend->set_budget(budget);
        }
        search_options.budget = budget;
    }

    const symmetry_checker* symmetry = symmetry_ ? &*symmetry_ : nullptr;
    multi_chain_result chains_result = anneal_chains(
        specs, symmetry, instances, search_options, options_.search_threads);
    guard.disarm();
    annealing_result result =
        std::move(chains_result.chains[chains_result.winning_chain]);

    deployment_response response;
    response.winning_chain = chains_result.winning_chain;
    response.fulfilled = result.fulfilled;
    response.plan = result.best_plan;
    if (options_.common_random_numbers) {
        // Re-assess the winner on a fresh stream: the search maximized the
        // CRN estimate, so reporting it directly would carry winner's bias.
        backend_->reset_stream(options_.seed ^ 0xf1e5aULL);
        const plan_evaluation unbiased = evaluate(request.app, result.best_plan);
        response.stats = unbiased.stats;
        response.utility = unbiased.utility;
        response.score = unbiased.score;
        response.fulfilled =
            result.fulfilled &&
            unbiased.stats.reliability >= request.desired_reliability;
    } else {
        response.stats = result.best_evaluation.stats;
        response.utility = result.best_evaluation.utility;
        response.score = result.best_evaluation.score;
    }
    // Three-way lifecycle verdict: a CRN re-check that withdraws
    // fulfillment downgrades to exhausted (the budget WAS spent), never to
    // deadline_exceeded — that verdict is reserved for a fired run_budget.
    response.outcome =
        response.fulfilled
            ? search_outcome::fulfilled
            : (result.outcome == search_outcome::deadline_exceeded
                   ? search_outcome::deadline_exceeded
                   : search_outcome::exhausted);
    response.search = std::move(result);
    return response;
}

assessment_stats re_cloud::assess(const application& app,
                                  const deployment_plan& plan,
                                  std::size_t rounds) {
    app.validate();
    validate_plan(plan, app, scenario_->topology());
    return backend_->assess(app, plan,
                            rounds == 0 ? options_.assessment_rounds : rounds);
}

const engine_stats* re_cloud::execution_stats() const {
    if (engine_view_ == nullptr) {
        return nullptr;
    }
    if (chains_.empty()) {
        return &engine_view_->stats();
    }
    engine_stats& total = *aggregated_engine_stats_;
    total = engine_view_->stats();
    for (const chain_stack& chain : chains_) {
        const engine_stats& s =
            static_cast<const engine_backend*>(chain.backend.get())->stats();
        total.batches += s.batches;
        total.dispatches += s.dispatches;
        total.retries += s.retries;
        total.redispatches += s.redispatches;
        total.degraded += s.degraded;
        total.worker_crashes += s.worker_crashes;
        total.worker_respawns += s.worker_respawns;
        total.deadline_misses += s.deadline_misses;
        total.invalid_frames += s.invalid_frames;
        total.bytes_sent += s.bytes_sent;
        total.bytes_received += s.bytes_received;
        if (total.worker_failures.size() < s.worker_failures.size()) {
            total.worker_failures.resize(s.worker_failures.size(), 0);
        }
        for (std::size_t w = 0; w < s.worker_failures.size(); ++w) {
            total.worker_failures[w] += s.worker_failures[w];
        }
    }
    return &total;
}

const verdict_cache_stats* re_cloud::cache_stats() const {
    const verdict_cache_stats* main = backend_->cache_stats();
    if (main == nullptr) {
        return nullptr;
    }
    if (chains_.empty()) {
        return main;
    }
    aggregated_cache_stats_ = *main;
    for (const chain_stack& chain : chains_) {
        if (const verdict_cache_stats* s = chain.backend->cache_stats()) {
            aggregated_cache_stats_.accumulate(*s);
        }
    }
    return &aggregated_cache_stats_;
}

obs::telemetry_snapshot re_cloud::telemetry() const {
    obs::metrics_registry& registry = obs::metrics_registry::global();
    // Cross-process harvest first (socket transports; loopback no-ops):
    // pulls worker registry deltas into the global registry and worker
    // cache counters into the transports' fleet stores, so the gauges
    // published below report fleet totals equivalent to a loopback run.
    // Chain backends fold into the shared registry/totals only; per-worker
    // provenance labels below come from the MAIN backend's fleet.
    if (engine_view_ != nullptr) {
        engine_view_->harvest_telemetry();
        for (const chain_stack& chain : chains_) {
            static_cast<engine_backend*>(chain.backend.get())
                ->harvest_telemetry();
        }
    }
    // Gauges are snapshot-time publishes (set() works while the registry is
    // disabled): the structs stay the source of truth, the registry is the
    // one export surface. The "engine.stats."/"cache.stats." prefixes keep
    // them clear of the live "engine."/"cache." counters.
    if (const engine_stats* engine = execution_stats()) {
        registry.set(registry.gauge("engine.stats.batches"), engine->batches);
        registry.set(registry.gauge("engine.stats.dispatches"),
                     engine->dispatches);
        registry.set(registry.gauge("engine.stats.retries"), engine->retries);
        registry.set(registry.gauge("engine.stats.redispatches"),
                     engine->redispatches);
        registry.set(registry.gauge("engine.stats.degraded"), engine->degraded);
        registry.set(registry.gauge("engine.stats.worker_crashes"),
                     engine->worker_crashes);
        registry.set(registry.gauge("engine.stats.worker_respawns"),
                     engine->worker_respawns);
        registry.set(registry.gauge("engine.stats.deadline_misses"),
                     engine->deadline_misses);
        registry.set(registry.gauge("engine.stats.invalid_frames"),
                     engine->invalid_frames);
        registry.set(registry.gauge("engine.stats.bytes_sent"),
                     engine->bytes_sent);
        registry.set(registry.gauge("engine.stats.bytes_received"),
                     engine->bytes_received);
    }
    if (const verdict_cache_stats* cache = cache_stats()) {
        registry.set(registry.gauge("cache.stats.rounds"), cache->rounds);
        registry.set(registry.gauge("cache.stats.empty_hits"),
                     cache->empty_hits);
        registry.set(registry.gauge("cache.stats.hits"), cache->hits);
        registry.set(registry.gauge("cache.stats.misses"), cache->misses);
        registry.set(registry.gauge("cache.stats.insertions"),
                     cache->insertions);
        registry.set(registry.gauge("cache.stats.evictions"), cache->evictions);
        registry.set(registry.gauge("cache.stats.rebinds"), cache->rebinds);
        registry.set(registry.gauge("cache.stats.warm_rebinds"),
                     cache->warm_rebinds);
        registry.set(registry.gauge("cache.stats.cold_rebinds"),
                     cache->cold_rebinds);
        registry.set(registry.gauge("cache.stats.cross_plan_hits"),
                     cache->cross_plan_hits);
        registry.set(registry.gauge("cache.stats.retained_entries"),
                     cache->retained_entries);
        registry.set(registry.gauge("cache.stats.support_size"),
                     cache->support_size);
        registry.set(registry.gauge("cache.stats.saved_rounds"),
                     cache->saved_rounds());
    }
    registry.set(registry.gauge("trace.dropped"),
                 obs::tracer::global().dropped());
    obs::telemetry_snapshot snap = registry.snapshot();
    // Per-worker provenance entries (worker.N.*) appended OUTSIDE the
    // registry: 8 workers x a dozen counters would exhaust the fixed gauge
    // capacity, and these are per-snapshot views, not live metrics. The
    // snapshot is re-sorted afterwards (find() binary-searches by name).
    if (engine_view_ != nullptr) {
        const worker_fleet_telemetry fleet = engine_view_->fleet_telemetry();
        const auto add = [&snap](std::string name, std::uint64_t value) {
            obs::metric_entry entry;
            entry.name = std::move(name);
            entry.kind = obs::metric_kind::gauge;
            entry.value = value;
            snap.metrics.push_back(std::move(entry));
        };
        for (const auto& w : fleet.workers) {
            const std::string prefix =
                "worker." + std::to_string(w.worker_id) + ".";
            add(prefix + "pid", w.pid);
            add(prefix + "harvests", w.harvests);
            add(prefix + "trace.dropped", w.trace_dropped);
            const verdict_cache_stats& c = w.cache;
            add(prefix + "cache.stats.rounds", c.rounds);
            add(prefix + "cache.stats.empty_hits", c.empty_hits);
            add(prefix + "cache.stats.hits", c.hits);
            add(prefix + "cache.stats.misses", c.misses);
            add(prefix + "cache.stats.insertions", c.insertions);
            add(prefix + "cache.stats.evictions", c.evictions);
            add(prefix + "cache.stats.rebinds", c.rebinds);
            add(prefix + "cache.stats.warm_rebinds", c.warm_rebinds);
            add(prefix + "cache.stats.cold_rebinds", c.cold_rebinds);
            add(prefix + "cache.stats.cross_plan_hits", c.cross_plan_hits);
            add(prefix + "cache.stats.retained_entries", c.retained_entries);
            add(prefix + "cache.stats.saved_rounds", c.saved_rounds());
        }
        if (!fleet.workers.empty()) {
            std::sort(snap.metrics.begin(), snap.metrics.end(),
                      [](const obs::metric_entry& a,
                         const obs::metric_entry& b) { return a.name < b.name; });
        }
    }
    return snap;
}

plan_evaluation re_cloud::evaluate_on(assessment_backend& backend,
                                      const application& app,
                                      const deployment_plan& plan) const {
    plan_evaluation eval;
    eval.stats = backend.assess(app, plan, options_.assessment_rounds);
    if (options_.multi_objective) {
        eval.utility = utility_->utility(plan);
        const double a = options_.weights.reliability;
        const double b = options_.weights.utility;
        const double total = a + b;
        // Eq. 7, normalized into [0, 1] so Eq. 5's log-ratio keeps its
        // order-of-magnitude meaning for the combined score.
        eval.score = total > 0.0
                         ? holistic_measure(eval.stats.reliability, eval.utility,
                                            options_.weights) /
                               total
                         : 0.0;
    } else {
        eval.score = eval.stats.reliability;
    }
    return eval;
}

plan_evaluation re_cloud::evaluate(const application& app,
                                   const deployment_plan& plan) {
    return evaluate_on(*backend_, app, plan);
}

}  // namespace recloud
