// reCloud public facade — the paper's workflow (§2.2):
//
//   1. the developer states requirements: the application structure (N, K
//      per component), a desired reliability score R_desired, and a search
//      budget Tmax;
//   2. the cloud provider searches for a deployment plan (§3.3) whose
//      quantitatively assessed reliability (§3.2) satisfies R_desired;
//   3. the provider returns the plan, or reports that the requirements
//      cannot be fulfilled within Tmax (the best plan found is still
//      returned for inspection).
//
// `fat_tree_infrastructure` bundles everything the provider side owns for a
// fat-tree data center: topology, component registry with paper-setting
// failure probabilities, power-supply fault trees, and host workloads.
// For other architectures, build a `recloud_context` by hand from a
// built_topology + bfs_reachability oracle.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "assess/assessor.hpp"
#include "assess/backend.hpp"
#include "obs/metrics.hpp"
#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "faults/probability_model.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/oracle.hpp"
#include "sampling/sampler.hpp"
#include "search/annealing.hpp"
#include "search/neighbor.hpp"
#include "search/objective.hpp"
#include "search/symmetry.hpp"
#include "search/workload.hpp"
#include "topology/fat_tree.hpp"
#include "topology/links.hpp"
#include "topology/power.hpp"

namespace recloud {

class engine_backend;  // exec/engine.hpp
struct engine_stats;   // exec/engine.hpp

struct infrastructure_options {
    power_attachment_options power{};  ///< §4.1: 5 supplies, round-robin
    probability_model_options probabilities{};
    workload_model_options workload{};
    /// Register every physical link as a fallible component (§2.1's
    /// "network connectivity" components). Off by default to match the
    /// paper's §4.1 evaluation setting (hosts/switches/supplies only).
    bool model_link_failures = false;
    link_attachment_options links{};
    std::uint64_t seed = 42;
};

/// Provider-side state for a fat-tree data center.
class fat_tree_infrastructure {
public:
    static fat_tree_infrastructure build(data_center_scale scale,
                                         const infrastructure_options& options = {});
    static fat_tree_infrastructure build(int k,
                                         const infrastructure_options& options = {});

    [[nodiscard]] const fat_tree& tree() const noexcept { return tree_; }
    [[nodiscard]] const built_topology& topology() const noexcept {
        return tree_.topology();
    }
    [[nodiscard]] const component_registry& registry() const noexcept {
        return registry_;
    }
    [[nodiscard]] component_registry& registry() noexcept { return registry_; }
    [[nodiscard]] const fault_tree_forest& forest() const noexcept { return forest_; }
    [[nodiscard]] fault_tree_forest& forest() noexcept { return forest_; }
    [[nodiscard]] const power_assignment& power() const noexcept { return power_; }
    /// Non-null iff infrastructure_options::model_link_failures was set.
    [[nodiscard]] const link_attachment* links() const noexcept {
        return links_ ? &*links_ : nullptr;
    }
    [[nodiscard]] const workload_map& workloads() const noexcept {
        return workloads_;
    }
    [[nodiscard]] workload_map& workloads() noexcept { return workloads_; }
    [[nodiscard]] rng& random() noexcept { return random_; }

private:
    fat_tree_infrastructure(fat_tree tree, const infrastructure_options& options);

    fat_tree tree_;
    component_registry registry_;
    fault_tree_forest forest_;
    power_assignment power_;
    std::optional<link_attachment> links_;
    rng random_;
    workload_map workloads_;
};

/// Non-owning view over the pieces re_cloud needs. `forest` and `workloads`
/// may be null (§3.4 limited information; workloads only matter when
/// multi-objective optimization is on).
struct recloud_context {
    const built_topology* topology = nullptr;
    const component_registry* registry = nullptr;
    const fault_tree_forest* forest = nullptr;
    reachability_oracle* oracle = nullptr;
    const workload_map* workloads = nullptr;
    /// Optional link components; the oracle must already consult them. This
    /// pointer feeds symmetry signatures AND the verdict-cache support set —
    /// leaving it null while the oracle checks link failures makes the
    /// cache unsound (link failures would be filtered out of cache keys),
    /// so it must name exactly what the oracle consults.
    const link_attachment* links = nullptr;
};

enum class sampler_kind : std::uint8_t {
    monte_carlo,      ///< §3.2.1 strawman (what INDaaS uses)
    extended_dagger,  ///< §3.2.2, the reCloud default
    antithetic,       ///< antithetic variates (extension; see sampling/antithetic.hpp)
};

enum class assessment_backend_kind : std::uint8_t {
    serial,    ///< single-threaded in-process assessor (the default)
    parallel,  ///< thread-pool backend, deterministic for any worker count
    engine,    ///< MapReduce-style wire-format engine (§3.2.1, Figure 12)
};

struct recloud_options {
    /// X: route-and-check rounds per assessment (§4.1 default 10^4).
    std::size_t assessment_rounds = 10'000;
    sampler_kind sampler = sampler_kind::extended_dagger;
    /// Which assessment backend executes route-and-check (assess/backend.hpp).
    /// `parallel` and `engine` need an oracle that supports clone().
    assessment_backend_kind backend = assessment_backend_kind::serial;
    /// Worker threads for the parallel/engine backends; 0 = one per
    /// hardware thread. Ignored by the serial backend.
    std::size_t assessment_threads = 0;
    /// Rounds per work unit: substream batch (parallel) or serialized batch
    /// (engine). Part of the parallel backend's determinism contract.
    std::size_t assessment_batch_rounds = 1024;
    /// Engine backend recovery: dispatch attempts per batch before the
    /// master degrades to local route-and-check (exec/engine.hpp). Ignored
    /// by the serial/parallel backends.
    std::size_t engine_max_attempts = 3;
    /// Engine backend recovery: per-attempt result deadline; a worker
    /// missing it is treated as a straggler and the batch re-dispatched.
    /// zero = wait forever. Ignored by the serial/parallel backends.
    std::chrono::milliseconds engine_batch_deadline{0};
    /// Round-verdict memoization (assess/verdict_cache.hpp): cache the
    /// verdict per support-filtered failed signature so repeated and
    /// support-disjoint failure patterns skip route-and-check entirely.
    /// Results are bit-identical with the cache on or off — this is purely
    /// a speed knob. The environment variable RECLOUD_VERDICT_CACHE
    /// overrides it ("0"/"off"/"false" disable, anything else enables).
    bool verdict_cache = true;
    /// Bound on distinct cached signatures per cache (per worker for the
    /// parallel/engine backends); the table resets wholesale when full.
    std::size_t verdict_cache_entries = 1 << 16;
    /// Step 3's network-transformation equivalence check.
    bool use_symmetry = true;
    /// §3.3.3: score plans by M = a*reliability + b*utility instead of
    /// reliability alone. Requires workloads in the context.
    bool multi_objective = false;
    objective_weights weights{};
    anti_affinity affinity = anti_affinity::none;
    delta_mode delta = delta_mode::log_ratio;
    /// During the search, assess every candidate plan on the SAME sampled
    /// failure sequences (common random numbers). Plan *comparisons* then
    /// reflect genuine placement differences instead of sampling noise —
    /// essential because true reliability gaps between good plans are often
    /// smaller than a 10^4-round confidence interval. The final plan is
    /// re-assessed on a fresh stream so the reported score carries no
    /// optimization bias.
    bool common_random_numbers = true;
    /// §3.3.3 resource constraints: each deployed instance adds this much
    /// load to its host; candidate plans where any host would exceed a
    /// load of 1.0 are discarded before assessment. 0 disables the check.
    /// Requires workloads in the context when > 0.
    double instance_workload_demand = 0.0;
    std::uint64_t seed = 1;
    /// Deterministic iteration cap for tests (the paper's flow is
    /// time-driven only).
    std::size_t max_iterations = static_cast<std::size_t>(-1);
    /// Record the best-score trace during the search (Figure 9 series).
    bool record_trace = false;
    /// Per-iteration telemetry hook (obs/timeline.hpp). re_cloud enriches
    /// each event with the verdict-cache hit rate before forwarding it.
    /// Observability only — it cannot perturb the search (see
    /// annealing_options::observer).
    obs::search_observer observer{};
};

/// The developer's reliability requirements (§2.2).
struct deployment_request {
    application app;
    double desired_reliability = 1.0;  ///< R_desired
    std::chrono::nanoseconds max_search_time = std::chrono::seconds{30};  ///< Tmax
};

struct deployment_response {
    /// Whether R_desired was reached within Tmax. If false the developer's
    /// "requirements cannot be fulfilled" — `plan` still carries the best
    /// plan found.
    bool fulfilled = false;
    deployment_plan plan;
    assessment_stats stats;  ///< reliability R, variance V, CIW95 of `plan`
    double utility = 0.0;
    double score = 0.0;
    annealing_result search;  ///< full search telemetry
};

class re_cloud {
public:
    re_cloud(const recloud_context& context, const recloud_options& options = {});

    /// Convenience: bind to a fat-tree infrastructure with the specialized
    /// fat-tree routing oracle. The infrastructure must outlive re_cloud.
    re_cloud(fat_tree_infrastructure& infra, const recloud_options& options = {});

    /// The §2.2 workflow: search for a plan fulfilling the request.
    [[nodiscard]] deployment_response find_deployment(const deployment_request& request);

    /// Quantitative assessment of a given plan (§3.2). `rounds == 0` uses
    /// the configured default.
    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds = 0);

    /// Evaluates one plan the way the search does (reliability + utility +
    /// score). Exposed for benches that time single evolve-and-assess steps.
    [[nodiscard]] plan_evaluation evaluate(const application& app,
                                           const deployment_plan& plan);

    [[nodiscard]] const recloud_options& options() const noexcept { return options_; }

    /// The assessment backend executing route-and-check for this instance.
    [[nodiscard]] const assessment_backend& backend() const noexcept {
        return *backend_;
    }

    /// Engine-backend observability (dispatches, retries, re-dispatches,
    /// degradations, bytes moved, per-worker failures), cumulative for this
    /// instance. Null when the backend is serial or parallel.
    [[nodiscard]] const engine_stats* execution_stats() const noexcept;

    /// Verdict-cache observability (rounds, empty-round hits, signature
    /// hits/misses, evictions, support size), cumulative for this instance
    /// and summed across workers. Null when the cache is disabled.
    [[nodiscard]] const verdict_cache_stats* cache_stats() const noexcept {
        return backend_->cache_stats();
    }

    /// One immutable view over everything observable: publishes this
    /// instance's engine and verdict-cache counters into the global metrics
    /// registry as gauges ("engine.stats.*", "cache.stats.*") and returns
    /// the aggregated snapshot — live counters, gauges and histograms from
    /// every instrumented layer, sorted by name. Feed it to
    /// to_json(const obs::telemetry_snapshot&) for export.
    [[nodiscard]] obs::telemetry_snapshot telemetry() const;

private:
    /// Delegation step for the fat-tree convenience constructor: the oracle
    /// must exist before the context referencing it is built.
    re_cloud(std::unique_ptr<fat_tree_routing> oracle,
             fat_tree_infrastructure& infra, const recloud_options& options);

    recloud_context context_;
    recloud_options options_;
    std::unique_ptr<fat_tree_routing> owned_oracle_;  ///< fat-tree convenience ctor
    /// Static support set shared by every backend verdict cache; part of the
    /// same lifetime contract as sampler_ (backends point into it, so it
    /// must be declared before backend_). Engaged iff the cache is on.
    std::optional<verdict_support> support_;
    /// Declaration order is a lifetime contract: every backend keeps a raw
    /// pointer to the sampler, so sampler_ must precede backend_ (members
    /// are destroyed in reverse order — the backend goes first).
    std::unique_ptr<failure_sampler> sampler_;
    std::unique_ptr<assessment_backend> backend_;
    engine_backend* engine_view_ = nullptr;  ///< set iff backend is the engine
    std::optional<symmetry_checker> symmetry_;
    std::optional<workload_utility> utility_;
};

}  // namespace recloud
