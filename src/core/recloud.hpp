// reCloud public facade — the paper's workflow (§2.2):
//
//   1. the developer states requirements: the application structure (N, K
//      per component), a desired reliability score R_desired, and a search
//      budget Tmax;
//   2. the cloud provider searches for a deployment plan (§3.3) whose
//      quantitatively assessed reliability (§3.2) satisfies R_desired;
//   3. the provider returns the plan, or reports that the requirements
//      cannot be fulfilled within Tmax (the best plan found is still
//      returned for inspection).
//
// The provider-side model is an immutable `scenario` snapshot
// (core/scenario.hpp): re_cloud holds a scenario_ptr and reaches routing
// only through per-consumer oracle clones, so any number of re_cloud
// instances (and deployment_service requests) can share one snapshot. For
// the fat-tree setting use make_fat_tree_scenario(); for other
// architectures assemble a scenario_builder around a built_topology +
// bfs_reachability prototype.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "assess/assessor.hpp"
#include "assess/backend.hpp"
#include "core/run_budget.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"
#include "sampling/sampler.hpp"
#include "search/annealing.hpp"
#include "search/neighbor.hpp"
#include "search/objective.hpp"
#include "search/symmetry.hpp"
#include "search/workload.hpp"

namespace recloud {

class engine_backend;  // exec/engine.hpp
struct engine_stats;   // exec/engine.hpp

enum class sampler_kind : std::uint8_t {
    monte_carlo,      ///< §3.2.1 strawman (what INDaaS uses)
    extended_dagger,  ///< §3.2.2, the reCloud default
    antithetic,       ///< antithetic variates (extension; see sampling/antithetic.hpp)
};

enum class assessment_backend_kind : std::uint8_t {
    serial,    ///< single-threaded in-process assessor (the default)
    parallel,  ///< thread-pool backend, deterministic for any worker count
    engine,    ///< MapReduce-style wire-format engine (§3.2.1, Figure 12)
};

/// Where the engine backend's workers live (exec/transport.hpp). Facade
/// mirror of exec's transport_kind so configuring the transport does not
/// pull the transport headers into every recloud.hpp consumer.
enum class engine_transport_kind : std::uint8_t {
    loopback,  ///< in-process thread-pool worker nodes (the historic engine)
    socket,    ///< real recloud_worker processes over Unix-domain sockets
};

struct recloud_options {
    /// X: route-and-check rounds per assessment (§4.1 default 10^4).
    std::size_t assessment_rounds = 10'000;
    sampler_kind sampler = sampler_kind::extended_dagger;
    /// Which assessment backend executes route-and-check (assess/backend.hpp).
    assessment_backend_kind backend = assessment_backend_kind::serial;
    /// Worker threads for the parallel/engine backends; 0 = one per
    /// hardware thread. Ignored by the serial backend.
    std::size_t assessment_threads = 0;
    /// Rounds per work unit: substream batch (parallel) or serialized batch
    /// (engine). Part of the parallel backend's determinism contract.
    std::size_t assessment_batch_rounds = 1024;
    /// Engine backend recovery: dispatch attempts per batch before the
    /// master degrades to local route-and-check (exec/engine.hpp). Ignored
    /// by the serial/parallel backends.
    std::size_t engine_max_attempts = 3;
    /// Engine backend recovery: per-attempt result deadline; a worker
    /// missing it is treated as a straggler and the batch re-dispatched.
    /// zero = wait forever. Ignored by the serial/parallel backends.
    std::chrono::milliseconds engine_batch_deadline{0};
    /// Engine backend transport: loopback (in-process, the default) or real
    /// worker processes over Unix-domain sockets. assessment_stats are
    /// bit-identical across transports; socket adds process isolation and
    /// master-side respawn of crashed workers. Ignored by serial/parallel.
    engine_transport_kind engine_transport = engine_transport_kind::loopback;
    /// Worker executable for the socket transport; empty = auto-resolve
    /// ($RECLOUD_WORKER_BIN, then a recloud_worker next to this binary,
    /// then PATH). Ignored unless engine_transport is socket.
    std::string engine_worker_binary{};
    /// Socket transport: respawn budget per worker slot before the slot is
    /// retired and its batches re-dispatch elsewhere (or degrade to the
    /// master). Ignored by loopback.
    std::size_t engine_max_respawns = 16;
    /// Round-verdict memoization (assess/verdict_cache.hpp): cache the
    /// verdict per support-filtered failed signature so repeated and
    /// support-disjoint failure patterns skip route-and-check entirely.
    /// Results are bit-identical with the cache on or off — this is purely
    /// a speed knob. The environment variable RECLOUD_VERDICT_CACHE
    /// overrides it ("0"/"off"/"false" disable, anything else enables).
    bool verdict_cache = true;
    /// Bound on distinct cached signatures per cache (per worker for the
    /// parallel/engine backends); the table resets wholesale when full.
    std::size_t verdict_cache_entries = 1 << 16;
    /// Cross-plan incremental assessment (assess/verdict_cache.hpp §bind,
    /// DESIGN.md §11): on every plan change the cache keeps memoized
    /// verdicts provably unaffected by the swap delta instead of wiping,
    /// and the serial assessor replays its CRN round journal so the SA
    /// inner loop becomes sublinear in the plan change. Results are
    /// bit-identical on or off — purely a speed knob. Requires (and is
    /// gated on) verdict_cache. The environment variable
    /// RECLOUD_INCREMENTAL overrides it ("0"/"off"/"false" disable,
    /// anything else enables).
    bool incremental = true;
    /// Step 3's network-transformation equivalence check.
    bool use_symmetry = true;
    /// §3.3.3: score plans by M = a*reliability + b*utility instead of
    /// reliability alone. Requires workloads in the scenario.
    bool multi_objective = false;
    objective_weights weights{};
    anti_affinity affinity = anti_affinity::none;
    delta_mode delta = delta_mode::log_ratio;
    /// During the search, assess every candidate plan on the SAME sampled
    /// failure sequences (common random numbers). Plan *comparisons* then
    /// reflect genuine placement differences instead of sampling noise —
    /// essential because true reliability gaps between good plans are often
    /// smaller than a 10^4-round confidence interval. The final plan is
    /// re-assessed on a fresh stream so the reported score carries no
    /// optimization bias. With multiple chains CRN also makes the
    /// inter-chain best-plan comparison noise-free (all chains share the
    /// same failure sequences).
    bool common_random_numbers = true;
    /// §3.3.3 resource constraints: each deployed instance adds this much
    /// load to its host; candidate plans where any host would exceed a
    /// load of 1.0 are discarded before assessment. 0 disables the check.
    /// Requires workloads in the scenario when > 0.
    double instance_workload_demand = 0.0;
    std::uint64_t seed = 1;
    /// Deterministic iteration cap for tests (the paper's flow is
    /// time-driven only).
    std::size_t max_iterations = static_cast<std::size_t>(-1);
    /// K: independent annealing trajectories per search (§3.3 restarts).
    /// Chain 0 reproduces the single-chain trajectory exactly; chains
    /// 1..K-1 start from forked RNG substreams, so growing K only ADDS
    /// trajectories. The best plan across chains wins (ties: lowest chain).
    std::size_t search_chains = 1;
    /// Threads running chains concurrently; 0 = one per hardware thread
    /// (capped at the chain count). The result is bit-identical for any
    /// value — threads only affect wall-clock.
    std::size_t search_threads = 0;
    /// Drive the annealing temperature and budget from the iteration
    /// counter instead of the wall clock (requires a finite
    /// max_iterations). Trajectories become pure functions of the seed —
    /// the determinism mode the multi-chain tests and the deployment
    /// service's reproducible mode rely on. Off = the paper's Eq. 6
    /// wall-clock schedule.
    bool deterministic_schedule = false;
    /// Record the best-score trace during the search (Figure 9 series).
    bool record_trace = false;
    /// Per-iteration telemetry hook (obs/timeline.hpp). re_cloud enriches
    /// each event with the verdict-cache hit rate before forwarding it.
    /// Observability only — it cannot perturb the search (see
    /// annealing_options::observer). With multiple chains events carry the
    /// chain index and the hook may fire from several threads; delivery is
    /// serialized by an internal mutex.
    obs::search_observer observer{};
};

/// The developer's reliability requirements (§2.2).
struct deployment_request {
    application app;
    double desired_reliability = 1.0;  ///< R_desired
    std::chrono::nanoseconds max_search_time = std::chrono::seconds{30};  ///< Tmax
    /// Optional request-lifecycle token (core/run_budget.hpp). When set,
    /// every layer of this search polls it: the SA loops stop between
    /// iterations, the assessment backends abort mid-assessment, and the
    /// search returns its best-so-far plan with
    /// response.outcome == search_outcome::deadline_exceeded. The final
    /// unbiased CRN re-assessment runs UN-armed, so even a preempted
    /// response reports noise-free stats (one bounded assessment of
    /// overshoot past the deadline). Unset = the exact historic behavior.
    run_budget_ptr budget{};
};

struct deployment_response {
    /// Whether R_desired was reached within Tmax. If false the developer's
    /// "requirements cannot be fulfilled" — `plan` still carries the best
    /// plan found.
    bool fulfilled = false;
    /// Three-way lifecycle verdict of the winning chain: fulfilled,
    /// exhausted (budget ran out), or deadline_exceeded (cut short by
    /// request.budget — `plan` is the anytime best-so-far).
    /// fulfilled == (outcome == search_outcome::fulfilled).
    search_outcome outcome = search_outcome::exhausted;
    deployment_plan plan;
    assessment_stats stats;  ///< reliability R, variance V, CIW95 of `plan`
    double utility = 0.0;
    double score = 0.0;
    annealing_result search;  ///< search telemetry of the winning chain
    std::uint32_t winning_chain = 0;  ///< which chain produced `plan`
};

class re_cloud {
public:
    explicit re_cloud(scenario_ptr scenario, const recloud_options& options = {});

    /// Convenience: snapshot a caller-owned fat-tree infrastructure (which
    /// must outlive re_cloud) with the specialized fat-tree routing oracle.
    explicit re_cloud(const fat_tree_infrastructure& infra,
                      const recloud_options& options = {});

    ~re_cloud();  ///< out of line: engine_stats is incomplete here

    /// The §2.2 workflow: search for a plan fulfilling the request.
    [[nodiscard]] deployment_response find_deployment(const deployment_request& request);

    /// Quantitative assessment of a given plan (§3.2). `rounds == 0` uses
    /// the configured default.
    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds = 0);

    /// Evaluates one plan the way the search does (reliability + utility +
    /// score). Exposed for benches that time single evolve-and-assess steps.
    [[nodiscard]] plan_evaluation evaluate(const application& app,
                                           const deployment_plan& plan);

    [[nodiscard]] const recloud_options& options() const noexcept { return options_; }

    /// The snapshot this instance searches against.
    [[nodiscard]] const scenario_ptr& snapshot() const noexcept { return scenario_; }

    /// The main assessment backend executing route-and-check (chain 0 and
    /// every non-search assess()).
    [[nodiscard]] const assessment_backend& backend() const noexcept {
        return *backend_;
    }

    /// Engine-backend observability (dispatches, retries, re-dispatches,
    /// degradations, bytes moved, per-worker failures), cumulative for this
    /// instance and summed across chains. Null when the backend is serial
    /// or parallel. Only read between searches (it sums live counters).
    [[nodiscard]] const engine_stats* execution_stats() const;

    /// Verdict-cache observability (rounds, empty-round hits, signature
    /// hits/misses, evictions, support size), cumulative for this instance
    /// and summed across workers and chains. Null when the cache is
    /// disabled. Only read between searches (it sums live counters).
    [[nodiscard]] const verdict_cache_stats* cache_stats() const;

    /// One immutable view over everything observable: harvests worker
    /// processes first (socket transports ship their registry deltas, cache
    /// counters and trace spans back; loopback no-ops), publishes this
    /// instance's engine and verdict-cache counters into the global metrics
    /// registry as gauges ("engine.stats.*", "cache.stats.*") and returns
    /// the aggregated snapshot — live counters, gauges and histograms from
    /// every instrumented layer plus per-worker provenance entries
    /// ("worker.N.cache.stats.*", "worker.N.trace.dropped"), sorted by
    /// name. Fleet sums match a loopback run of the same seed (DESIGN.md
    /// §12). Feed it to to_json(const obs::telemetry_snapshot&) for export.
    [[nodiscard]] obs::telemetry_snapshot telemetry() const;

private:
    /// Per-chain assessment stack for chains 1..K-1 (chain 0 uses the main
    /// sampler_/backend_ so K=1 is byte-for-byte the single-chain path).
    /// Declaration order inside is the same lifetime contract as the main
    /// members: the backend points into the sampler.
    struct chain_stack {
        std::unique_ptr<reachability_oracle> oracle;  ///< serial backend only
        std::unique_ptr<failure_sampler> sampler;
        std::unique_ptr<assessment_backend> backend;
    };

    [[nodiscard]] chain_stack make_chain_stack(std::uint64_t stream_id) const;
    [[nodiscard]] plan_evaluation evaluate_on(assessment_backend& backend,
                                              const application& app,
                                              const deployment_plan& plan) const;

    scenario_ptr scenario_;
    recloud_options options_;
    /// Private oracle clone feeding the serial backend (parallel/engine
    /// backends clone per worker through the scenario instead).
    std::unique_ptr<reachability_oracle> owned_oracle_;
    /// Static support set shared by every backend verdict cache; part of the
    /// same lifetime contract as sampler_ (backends point into it, so it
    /// must be declared before backend_). Engaged iff the cache is on.
    std::optional<verdict_support> support_;
    /// The resolved cache configuration every backend (main and chain) is
    /// built with; points into support_.
    verdict_cache_options cache_options_{};
    /// Declaration order is a lifetime contract: every backend keeps a raw
    /// pointer to the sampler, so sampler_ must precede backend_ (members
    /// are destroyed in reverse order — the backend goes first).
    std::unique_ptr<failure_sampler> sampler_;
    std::unique_ptr<assessment_backend> backend_;
    /// Chains 1..K-1 (lazily built on the first multi-chain search).
    std::vector<chain_stack> chains_;
    engine_backend* engine_view_ = nullptr;  ///< set iff backend is the engine
    std::optional<symmetry_checker> symmetry_;
    std::optional<workload_utility> utility_;
    /// Aggregation scratch for cache_stats()/execution_stats() across the
    /// main backend and every chain stack.
    mutable verdict_cache_stats aggregated_cache_stats_{};
    mutable std::unique_ptr<engine_stats> aggregated_engine_stats_;
};

}  // namespace recloud
