// Immutable provider-side scenario snapshots — the shared-model layer that
// turns the single-request pipeline into a multi-tenant service.
//
// The paper's workflow (§2.2) is request-driven: many developers submit
// requirements against ONE provider model of the data center. Serving those
// requests concurrently requires that model to be immutable and shareable:
// a `scenario` is a ref-counted snapshot bundling topology, component
// registry (probability tables included), fault-tree forest, link
// attachment, workloads, and a routing-oracle *prototype*. Nothing in a
// frozen scenario can be mutated; per-request/per-worker mutable state
// (round caches, flood marks) lives in oracle clones handed out by
// make_oracle(). Consumers hold `scenario_ptr` (shared_ptr<const scenario>),
// so a snapshot outlives every search, chain, and queued request that uses
// it — replacing the historic `recloud_context` bag of raw pointers around a
// mutable oracle.
//
// Construction is two-phase: a `scenario_builder` collects parts (borrowed
// from the caller or owned by the snapshot), then freeze() validates the
// bundle and returns the immutable handle. validate() enforces the contract
// the old context left to a doc comment: the links the ORACLE consults must
// be exactly the links the scenario names, because symmetry signatures and
// the verdict-cache support set are derived from the scenario's pointer —
// a mismatch silently made cached verdicts unsound.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "faults/probability_model.hpp"
#include "routing/oracle.hpp"
#include "search/workload.hpp"
#include "topology/fat_tree.hpp"
#include "topology/links.hpp"
#include "topology/power.hpp"
#include "util/rng.hpp"

namespace recloud {

struct infrastructure_options {
    power_attachment_options power{};  ///< §4.1: 5 supplies, round-robin
    probability_model_options probabilities{};
    workload_model_options workload{};
    /// Register every physical link as a fallible component (§2.1's
    /// "network connectivity" components). Off by default to match the
    /// paper's §4.1 evaluation setting (hosts/switches/supplies only).
    bool model_link_failures = false;
    link_attachment_options links{};
    std::uint64_t seed = 42;
};

/// Provider-side state for a fat-tree data center. This is a BUILD-TIME
/// bundle: construct it, then freeze it into a scenario (or hand it to
/// re_cloud's convenience constructor, which snapshots it internally).
/// Members hold pointers into sibling members, so the bundle is pinned to
/// its construction address — it can be built in place (build(), the
/// build_shared() heap variant) but never copied or moved.
///
/// The stochastic models (workloads, probabilities) consume the bundle's
/// private rng during construction only; it is deliberately NOT exposed.
/// Request and search-chain seeds must come from forked substreams
/// (substream_seed / failure_sampler::fork) so concurrent searches never
/// contend on — or non-deterministically consume — a shared generator.
class fat_tree_infrastructure {
public:
    static fat_tree_infrastructure build(data_center_scale scale,
                                         const infrastructure_options& options = {});
    static fat_tree_infrastructure build(int k,
                                         const infrastructure_options& options = {});
    /// Heap-constructed variant for scenario ownership: the bundle is built
    /// directly in its final storage (it is not movable).
    static std::shared_ptr<fat_tree_infrastructure> build_shared(
        data_center_scale scale, const infrastructure_options& options = {});
    static std::shared_ptr<fat_tree_infrastructure> build_shared(
        int k, const infrastructure_options& options = {});

    fat_tree_infrastructure(const fat_tree_infrastructure&) = delete;
    fat_tree_infrastructure& operator=(const fat_tree_infrastructure&) = delete;

    [[nodiscard]] const fat_tree& tree() const noexcept { return tree_; }
    [[nodiscard]] const built_topology& topology() const noexcept {
        return tree_.topology();
    }
    [[nodiscard]] const component_registry& registry() const noexcept {
        return registry_;
    }
    [[nodiscard]] component_registry& registry() noexcept { return registry_; }
    [[nodiscard]] const fault_tree_forest& forest() const noexcept { return forest_; }
    [[nodiscard]] fault_tree_forest& forest() noexcept { return forest_; }
    [[nodiscard]] const power_assignment& power() const noexcept { return power_; }
    /// Non-null iff infrastructure_options::model_link_failures was set.
    [[nodiscard]] const link_attachment* links() const noexcept {
        return links_ ? &*links_ : nullptr;
    }
    [[nodiscard]] const workload_map& workloads() const noexcept {
        return workloads_;
    }
    [[nodiscard]] workload_map& workloads() noexcept { return workloads_; }

private:
    fat_tree_infrastructure(fat_tree tree, const infrastructure_options& options);

    fat_tree tree_;
    component_registry registry_;
    fault_tree_forest forest_;
    power_assignment power_;
    std::optional<link_attachment> links_;
    rng random_;  ///< consumed at construction only; never shared out
    workload_map workloads_;
};

class scenario;

/// How every consumer holds a scenario: the snapshot stays alive for as
/// long as any search, chain, queued request, or oracle factory uses it.
using scenario_ptr = std::shared_ptr<const scenario>;

/// One immutable provider-model snapshot. `forest`, `links` and `workloads`
/// are optional (§3.4 limited information; workloads only matter for
/// multi-objective search and resource constraints).
class scenario {
public:
    [[nodiscard]] const built_topology& topology() const noexcept {
        return *topology_;
    }
    [[nodiscard]] const component_registry& registry() const noexcept {
        return *registry_;
    }
    [[nodiscard]] const fault_tree_forest* forest() const noexcept {
        return forest_;
    }
    [[nodiscard]] const link_attachment* links() const noexcept { return links_; }
    [[nodiscard]] const workload_map* workloads() const noexcept {
        return workloads_;
    }
    /// Human-readable label (topology name unless overridden) used in
    /// service telemetry and reports.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Clones the routing-oracle prototype: the ONLY way to reach an oracle
    /// through a scenario, so every consumer gets private mutable routing
    /// state and the snapshot itself stays immutable. Thread-safe (clone()
    /// is const on an immutable prototype).
    [[nodiscard]] std::unique_ptr<reachability_oracle> make_oracle() const;

    /// Checks the bundle invariants (freeze() runs this, so a scenario_ptr
    /// in hand is always valid):
    ///   * topology, registry and oracle prototype are present;
    ///   * the registry covers every topology node;
    ///   * the prototype supports clone() — a scenario must be able to hand
    ///     out per-consumer oracles;
    ///   * the links the oracle consults are exactly `links()` — a link
    ///     attachment the oracle checks but the scenario does not name
    ///     would be filtered out of verdict-cache keys and symmetry
    ///     signatures (the silent unsoundness recloud_context permitted).
    /// Throws std::invalid_argument on violation.
    void validate() const;

private:
    friend class scenario_builder;
    scenario() = default;

    const built_topology* topology_ = nullptr;
    const component_registry* registry_ = nullptr;
    const fault_tree_forest* forest_ = nullptr;
    const link_attachment* links_ = nullptr;
    const workload_map* workloads_ = nullptr;
    const reachability_oracle* oracle_prototype_ = nullptr;
    std::string name_ = "scenario";
    /// Keep-alives for parts the snapshot owns (type-erased); borrowed
    /// parts have no entry and must outlive the scenario.
    std::vector<std::shared_ptr<const void>> owned_;
};

/// Collects scenario parts, then freeze()s them into an immutable snapshot.
/// Every part can be BORROWED (the caller guarantees it outlives the
/// scenario — the pattern of existing stack-built tests) or OWNED (moved
/// into / shared with the snapshot, which then keeps it alive).
class scenario_builder {
public:
    scenario_builder& name(std::string value);

    // -- borrowed parts (caller-managed lifetime) -------------------------
    scenario_builder& topology(const built_topology& topo);
    scenario_builder& registry(const component_registry& registry);
    scenario_builder& forest(const fault_tree_forest& forest);
    scenario_builder& links(const link_attachment& links);
    scenario_builder& workloads(const workload_map& workloads);
    /// The routing-oracle prototype, reached only via scenario::make_oracle
    /// (clone). Must support clone().
    scenario_builder& oracle(const reachability_oracle& prototype);

    // -- owned parts (the snapshot keeps them alive) ----------------------
    scenario_builder& own_registry(std::shared_ptr<const component_registry> r);
    scenario_builder& own_oracle(std::shared_ptr<const reachability_oracle> o);
    /// Generic keep-alive for any object backing borrowed pointers (e.g. a
    /// heap-built fat_tree_infrastructure whose members were borrowed).
    scenario_builder& keep_alive(std::shared_ptr<const void> object);

    /// Validates and returns the immutable snapshot. The builder is left
    /// empty (one builder, one scenario).
    [[nodiscard]] scenario_ptr freeze();

private:
    std::shared_ptr<scenario> draft_{new scenario};
};

/// Fat-tree convenience: builds the §4.1 provider bundle on the heap, wires
/// the specialized closed-form routing oracle over it, and freezes the
/// whole thing into a self-owning snapshot.
[[nodiscard]] scenario_ptr make_fat_tree_scenario(
    data_center_scale scale, const infrastructure_options& options = {});
[[nodiscard]] scenario_ptr make_fat_tree_scenario(
    int k, const infrastructure_options& options = {});

/// Snapshot over a caller-owned infrastructure (borrowed: `infra` must
/// outlive the scenario). The oracle prototype is owned by the snapshot.
[[nodiscard]] scenario_ptr make_fat_tree_scenario(
    const fat_tree_infrastructure& infra);

}  // namespace recloud
