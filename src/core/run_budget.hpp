// Request-lifecycle plane (DESIGN.md §13): one shared cancellation/deadline
// token threaded from deployment_service admission down through the SA loop
// (search/annealing.cpp), the assessment round loops (assess/assessor.cpp,
// assess/backend.cpp) and the execution engine's dispatch waits
// (exec/engine.cpp).
//
// The token carries three independent triggers:
//
//   * an absolute deadline on the monotonic clock (the same clock the Eq. 6
//     search budget reads — util/stopwatch.hpp);
//   * a cooperative cancel flag (caller-driven abort);
//   * a deterministic iteration cut: stop after N generated plans. Checked
//     only at SA iteration boundaries against the plan counter, it never
//     reads the clock — a cut trajectory is a pure function of the seed,
//     which is what the preemption pinning tests rely on.
//
// Determinism contract: an un-armed token (no deadline, no cancel, no cut)
// is pure overhead-free polling — every layer checks a pointer/flag and
// reads nothing else, so trajectories and assessment_stats stay
// bit-identical to a build without the plane. When a wall trigger fires
// mid-assessment the layer throws search_preempted; the catcher DISCARDS
// the partial candidate (partial counts never merge into any result), so
// every completed iteration is bit-identical to an uninterrupted run and
// the search returns its best-so-far plan as an anytime result.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/stopwatch.hpp"

namespace recloud {

/// Thrown by assessment layers (assessor round loops, parallel batches,
/// engine dispatch waits) when the governing run_budget fires mid-flight.
/// Caught by search_chain::run(), which drops the in-flight candidate and
/// finishes with search_outcome::deadline_exceeded.
class search_preempted : public std::runtime_error {
public:
    search_preempted()
        : std::runtime_error{"search preempted by its run budget"} {}
};

/// Cooperative lifecycle token. Shared (via run_budget_ptr) between the
/// controller arming it and any number of worker threads polling it; all
/// members are atomics, so polling is wait-free and arming takes effect on
/// the pollers' next check.
class run_budget {
public:
    using clock = monotonic_clock;

    run_budget() = default;
    run_budget(const run_budget&) = delete;
    run_budget& operator=(const run_budget&) = delete;

    /// Caller-driven abort; sticky.
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /// Arms (or moves) the absolute wall deadline.
    void set_deadline(clock::time_point when) noexcept {
        deadline_ns_.store(when.time_since_epoch().count(),
                           std::memory_order_relaxed);
    }
    void set_deadline_in(std::chrono::nanoseconds from_now) noexcept {
        set_deadline(clock::now() + from_now);
    }
    void clear_deadline() noexcept {
        deadline_ns_.store(no_deadline, std::memory_order_relaxed);
    }
    [[nodiscard]] bool has_deadline() const noexcept {
        return deadline_ns_.load(std::memory_order_relaxed) != no_deadline;
    }
    [[nodiscard]] clock::time_point deadline_point() const noexcept {
        return clock::time_point{std::chrono::nanoseconds{
            deadline_ns_.load(std::memory_order_relaxed)}};
    }
    /// Time left until the deadline, clamped at zero; the full int64 range
    /// when no deadline is armed.
    [[nodiscard]] std::chrono::nanoseconds remaining() const noexcept {
        const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
        if (ns == no_deadline) {
            return std::chrono::nanoseconds{no_deadline};
        }
        const std::int64_t now = clock::now().time_since_epoch().count();
        return std::chrono::nanoseconds{ns > now ? ns - now : 0};
    }

    /// Deterministic cut: trajectories stop once they have generated this
    /// many plans. Never consults the clock.
    void set_iteration_cut(std::uint64_t generated_plans) noexcept {
        iteration_cut_.store(generated_plans, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t iteration_cut() const noexcept {
        return iteration_cut_.load(std::memory_order_relaxed);
    }
    /// True when a trajectory that has generated `generated` plans must
    /// stop — a pure function of the counter.
    [[nodiscard]] bool cut_at(std::uint64_t generated) const noexcept {
        return generated >= iteration_cut_.load(std::memory_order_relaxed);
    }

    /// The wall-side interrupt: cancelled, or an armed deadline has passed.
    /// Reads the clock only when a deadline is armed, so un-armed polling
    /// costs two relaxed loads.
    [[nodiscard]] bool interrupted() const noexcept {
        if (cancelled()) {
            return true;
        }
        const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
        if (ns == no_deadline) {
            return false;
        }
        return clock::now().time_since_epoch().count() >= ns;
    }

private:
    static constexpr std::int64_t no_deadline =
        std::numeric_limits<std::int64_t>::max();

    std::atomic<bool> cancelled_{false};
    std::atomic<std::int64_t> deadline_ns_{no_deadline};
    std::atomic<std::uint64_t> iteration_cut_{
        std::numeric_limits<std::uint64_t>::max()};
};

using run_budget_ptr = std::shared_ptr<run_budget>;

/// The assessment layers' poll: throws search_preempted when `budget`
/// (nullable) has a fired wall trigger.
inline void throw_if_preempted(const run_budget* budget) {
    if (budget != nullptr && budget->interrupted()) {
        throw search_preempted{};
    }
}

}  // namespace recloud
