// Binary serialization used by the MapReduce-style execution engine. The
// paper's distributed route-and-check ships round batches between a master
// and worker nodes; Figure 12 shows that the serialization / transmission /
// deserialization cost dominates for small round counts. To reproduce that
// behaviour the in-process engine really serializes its task and result
// messages through these buffers.
//
// Format: little-endian fixed-width scalars; unsigned integers optionally as
// LEB128 varints; vectors/strings are length-prefixed (varint).
//
// Messages that cross the master/worker boundary are additionally FRAMED
// (frame_message / unframe_message): a fixed header carrying magic, format
// version, payload length and an FNV-1a checksum. A lost byte, a flipped
// bit, or a message from the wrong protocol version then surfaces as a
// serialize_error at the frame boundary instead of being decoded into
// plausible-looking garbage counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace recloud {

/// Error thrown when a reader runs past the end of its buffer or decodes a
/// malformed value.
class serialize_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Appends values to a growable byte buffer.
class byte_writer {
public:
    [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
    [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buffer_); }
    [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

    /// Pre-allocates room for `n` more bytes.
    void reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

    void write_u8(std::uint8_t v);
    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_f64(double v);
    void write_bool(bool v);

    /// LEB128 varint; compact for the small ids that dominate our messages.
    void write_varint(std::uint64_t v);

    void write_string(std::string_view s);

    /// Length-prefixed vector of varint-encoded unsigned integers.
    template <typename T>
        requires std::is_unsigned_v<T>
    void write_uint_vector(std::span<const T> values) {
        write_varint(values.size());
        for (T v : values) {
            write_varint(static_cast<std::uint64_t>(v));
        }
    }

    /// Length-prefixed vector of doubles.
    void write_f64_vector(std::span<const double> values);

private:
    std::vector<std::byte> buffer_;
};

/// Reads values back from a byte span; throws serialize_error on underrun.
class byte_reader {
public:
    explicit byte_reader(std::span<const std::byte> data) noexcept : data_(data) {}

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] bool at_end() const noexcept { return remaining() == 0; }

    [[nodiscard]] std::uint8_t read_u8();
    [[nodiscard]] std::uint32_t read_u32();
    [[nodiscard]] std::uint64_t read_u64();
    [[nodiscard]] double read_f64();
    [[nodiscard]] bool read_bool();
    /// LEB128, at most 10 bytes; rejects encodings with set bits past bit 63.
    [[nodiscard]] std::uint64_t read_varint();
    [[nodiscard]] std::string read_string();

    /// Reads a varint length prefix and validates it against remaining():
    /// a prefix claiming more elements than the remaining bytes could hold
    /// (each element occupying at least `min_element_bytes`) throws before
    /// any allocation, so a hostile length can't drive a huge reserve.
    [[nodiscard]] std::uint64_t read_length_prefix(std::size_t min_element_bytes = 1);

    template <typename T>
        requires std::is_unsigned_v<T>
    [[nodiscard]] std::vector<T> read_uint_vector() {
        const std::uint64_t count = read_length_prefix();
        std::vector<T> values;
        values.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t v = read_varint();
            if (v > std::numeric_limits<T>::max()) {
                throw serialize_error{"uint vector element out of range"};
            }
            values.push_back(static_cast<T>(v));
        }
        return values;
    }

    [[nodiscard]] std::vector<double> read_f64_vector();

private:
    void require(std::size_t n) const;

    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

// ---- message framing ---------------------------------------------------

/// "RCW" + format version byte, little-endian on the wire.
inline constexpr std::uint32_t frame_magic = 0x01574352u;
inline constexpr std::uint8_t frame_version = 1;
/// magic (u32) + version (u8) + payload length (u64) + checksum (u64).
inline constexpr std::size_t frame_header_bytes = 4 + 1 + 8 + 8;

/// FNV-1a 64 over `payload` — cheap, seedless, and plenty to catch the
/// single-bit flips and truncations framing exists to detect (this is an
/// integrity check, not an authenticity one).
[[nodiscard]] std::uint64_t frame_checksum(std::span<const std::byte> payload) noexcept;

/// Wraps `payload` in a validated frame (header above + payload).
[[nodiscard]] std::vector<std::byte> frame_message(std::span<const std::byte> payload);

/// Validates magic, version, exact payload length and checksum; returns a
/// view of the payload *into* `framed` (no copy — the frame must outlive
/// the returned span). Throws serialize_error naming the first mismatch.
[[nodiscard]] std::span<const std::byte> unframe_message(
    std::span<const std::byte> framed);

/// Reassembles complete frames from an arbitrarily segmented byte stream —
/// the receive side of a socket, where read() returns whatever the kernel
/// has: half a header, three frames and a tail, one byte. feed() appends
/// raw bytes; next_frame() pops the next COMPLETE frame (header + payload,
/// ready for unframe_message) or nullopt while bytes are still missing.
///
/// The header is validated as soon as it is complete (magic, version, and
/// payload length against `max_payload`), so a desynchronized or hostile
/// stream throws serialize_error immediately instead of stalling the reader
/// on a phantom huge payload. The checksum is NOT verified here — that
/// stays with unframe_message, keeping corruption detection end-to-end.
class frame_assembler {
public:
    /// Frames claiming payloads beyond `max_payload` poison the stream.
    explicit frame_assembler(std::size_t max_payload = std::size_t{1} << 30);

    void feed(std::span<const std::byte> bytes);
    [[nodiscard]] std::optional<std::vector<std::byte>> next_frame();

    /// Bytes buffered but not yet returned as frames.
    [[nodiscard]] std::size_t buffered() const noexcept {
        return buffer_.size() - consumed_;
    }

private:
    std::vector<std::byte> buffer_;
    std::size_t consumed_ = 0;  ///< dead prefix already returned as frames
    std::size_t max_payload_;
};

}  // namespace recloud
