// Binary serialization used by the MapReduce-style execution engine. The
// paper's distributed route-and-check ships round batches between a master
// and worker nodes; Figure 12 shows that the serialization / transmission /
// deserialization cost dominates for small round counts. To reproduce that
// behaviour the in-process engine really serializes its task and result
// messages through these buffers.
//
// Format: little-endian fixed-width scalars; unsigned integers optionally as
// LEB128 varints; vectors/strings are length-prefixed (varint).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace recloud {

/// Error thrown when a reader runs past the end of its buffer or decodes a
/// malformed value.
class serialize_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Appends values to a growable byte buffer.
class byte_writer {
public:
    [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
    [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buffer_); }
    [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

    void write_u8(std::uint8_t v);
    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_f64(double v);
    void write_bool(bool v);

    /// LEB128 varint; compact for the small ids that dominate our messages.
    void write_varint(std::uint64_t v);

    void write_string(std::string_view s);

    /// Length-prefixed vector of varint-encoded unsigned integers.
    template <typename T>
        requires std::is_unsigned_v<T>
    void write_uint_vector(std::span<const T> values) {
        write_varint(values.size());
        for (T v : values) {
            write_varint(static_cast<std::uint64_t>(v));
        }
    }

    /// Length-prefixed vector of doubles.
    void write_f64_vector(std::span<const double> values);

private:
    std::vector<std::byte> buffer_;
};

/// Reads values back from a byte span; throws serialize_error on underrun.
class byte_reader {
public:
    explicit byte_reader(std::span<const std::byte> data) noexcept : data_(data) {}

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] bool at_end() const noexcept { return remaining() == 0; }

    [[nodiscard]] std::uint8_t read_u8();
    [[nodiscard]] std::uint32_t read_u32();
    [[nodiscard]] std::uint64_t read_u64();
    [[nodiscard]] double read_f64();
    [[nodiscard]] bool read_bool();
    [[nodiscard]] std::uint64_t read_varint();
    [[nodiscard]] std::string read_string();

    template <typename T>
        requires std::is_unsigned_v<T>
    [[nodiscard]] std::vector<T> read_uint_vector() {
        const std::uint64_t count = read_varint();
        check_count(count);
        std::vector<T> values;
        values.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t v = read_varint();
            if (v > std::numeric_limits<T>::max()) {
                throw serialize_error{"uint vector element out of range"};
            }
            values.push_back(static_cast<T>(v));
        }
        return values;
    }

    [[nodiscard]] std::vector<double> read_f64_vector();

private:
    void require(std::size_t n) const;
    /// Rejects counts that could not possibly fit in the remaining bytes
    /// (each element takes >= 1 byte), so corrupt input can't trigger a
    /// huge allocation.
    void check_count(std::uint64_t count) const;

    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

}  // namespace recloud
