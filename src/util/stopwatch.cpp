// stopwatch and deadline are header-only; this translation unit exists so the
// header is compiled standalone at least once (catches missing includes).
#include "util/stopwatch.hpp"
