#include "util/rng.hpp"

#include <cmath>

namespace recloud {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) noexcept {
    // Expand the user seed through splitmix64; this guarantees a non-zero
    // state even for seed == 0 (an all-zero state would be a fixed point).
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64_next(sm);
    }
}

rng::result_type rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() noexcept {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * n;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller transform; u1 is kept away from zero so log() is finite.
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

rng rng::fork() noexcept {
    // Derive the child seed from fresh parent output so sibling forks are
    // decorrelated from each other and from the parent's future stream.
    return rng{(*this)()};
}

}  // namespace recloud
