// Monotonic timing utilities: a stopwatch for measuring elapsed time and a
// deadline for the annealing search's Tmax budget (paper §3.3, Eq. 6).
#pragma once

#include <chrono>

namespace recloud {

/// The one clock every timing plane reads: the Eq. 6 search budget
/// (stopwatch/deadline here) and the request-lifecycle deadlines
/// (core/run_budget.hpp) must agree on "now", or a preempted search could
/// report a Telapsed that disagrees with the deadline that cut it.
using monotonic_clock = std::chrono::steady_clock;

/// Wall-clock stopwatch over the monotonic steady clock.
class stopwatch {
public:
    stopwatch() noexcept : start_(clock::now()) {}

    /// Restarts the stopwatch.
    void reset() noexcept { start_ = clock::now(); }

    [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
        return clock::now() - start_;
    }
    [[nodiscard]] double elapsed_seconds() const noexcept {
        return std::chrono::duration<double>(elapsed()).count();
    }
    [[nodiscard]] double elapsed_ms() const noexcept {
        return std::chrono::duration<double, std::milli>(elapsed()).count();
    }

private:
    using clock = monotonic_clock;
    clock::time_point start_;
};

/// A fixed time budget. The annealing temperature in Eq. 6 is exactly
/// remaining_fraction().
class deadline {
public:
    explicit deadline(std::chrono::nanoseconds budget) noexcept
        : budget_(budget) {}

    [[nodiscard]] bool expired() const noexcept {
        return watch_.elapsed() >= budget_;
    }

    /// (Tmax - Telapsed) / Tmax, clamped to [0, 1].
    [[nodiscard]] double remaining_fraction() const noexcept {
        if (budget_.count() <= 0) {
            return 0.0;
        }
        const double frac = 1.0 - static_cast<double>(watch_.elapsed().count()) /
                                      static_cast<double>(budget_.count());
        if (frac < 0.0) {
            return 0.0;
        }
        return frac > 1.0 ? 1.0 : frac;
    }

    [[nodiscard]] std::chrono::nanoseconds budget() const noexcept { return budget_; }
    [[nodiscard]] double elapsed_seconds() const noexcept {
        return watch_.elapsed_seconds();
    }
    /// Elapsed time clamped to the budget: the Telapsed that timelines and
    /// result JSON report, so a search cut after its budget (scheduler
    /// latency, preemption) can never claim Telapsed > Tmax.
    [[nodiscard]] double elapsed_budgeted_seconds() const noexcept {
        const double elapsed = watch_.elapsed_seconds();
        const double budget = std::chrono::duration<double>(budget_).count();
        return budget > 0.0 && elapsed > budget ? budget : elapsed;
    }

private:
    stopwatch watch_;
    std::chrono::nanoseconds budget_;
};

}  // namespace recloud
