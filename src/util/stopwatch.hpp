// Monotonic timing utilities: a stopwatch for measuring elapsed time and a
// deadline for the annealing search's Tmax budget (paper §3.3, Eq. 6).
#pragma once

#include <chrono>

namespace recloud {

/// Wall-clock stopwatch over the monotonic steady clock.
class stopwatch {
public:
    stopwatch() noexcept : start_(clock::now()) {}

    /// Restarts the stopwatch.
    void reset() noexcept { start_ = clock::now(); }

    [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
        return clock::now() - start_;
    }
    [[nodiscard]] double elapsed_seconds() const noexcept {
        return std::chrono::duration<double>(elapsed()).count();
    }
    [[nodiscard]] double elapsed_ms() const noexcept {
        return std::chrono::duration<double, std::milli>(elapsed()).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// A fixed time budget. The annealing temperature in Eq. 6 is exactly
/// remaining_fraction().
class deadline {
public:
    explicit deadline(std::chrono::nanoseconds budget) noexcept
        : budget_(budget) {}

    [[nodiscard]] bool expired() const noexcept {
        return watch_.elapsed() >= budget_;
    }

    /// (Tmax - Telapsed) / Tmax, clamped to [0, 1].
    [[nodiscard]] double remaining_fraction() const noexcept {
        if (budget_.count() <= 0) {
            return 0.0;
        }
        const double frac = 1.0 - static_cast<double>(watch_.elapsed().count()) /
                                      static_cast<double>(budget_.count());
        if (frac < 0.0) {
            return 0.0;
        }
        return frac > 1.0 ? 1.0 : frac;
    }

    [[nodiscard]] std::chrono::nanoseconds budget() const noexcept { return budget_; }
    [[nodiscard]] double elapsed_seconds() const noexcept {
        return watch_.elapsed_seconds();
    }

private:
    stopwatch watch_;
    std::chrono::nanoseconds budget_;
};

}  // namespace recloud
