// Minimal INI-style configuration parser for the scenario-driven CLI
// (examples/recloud_cli). Supports:
//   * `key = value` pairs,
//   * `[section]` headers (keys become "section.key"),
//   * `#` and `;` comments (full-line or trailing),
//   * typed accessors with defaults and validating `require_*` variants.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace recloud {

class config_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class config {
public:
    /// Parses the given text; throws config_error with a line number on
    /// malformed input.
    [[nodiscard]] static config parse(std::string_view text);

    /// Reads and parses a file; throws config_error if unreadable.
    [[nodiscard]] static config parse_file(const std::string& path);

    [[nodiscard]] bool has(const std::string& key) const {
        return values_.contains(key);
    }
    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
    [[nodiscard]] std::vector<std::string> keys() const;

    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key,
                                       std::int64_t fallback) const;
    /// Like get_int but rejects negative values with config_error — for
    /// counts (rounds, threads, attempts, sizes) where a stray minus sign
    /// would otherwise wrap to a huge unsigned number at the cast.
    [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                         std::uint64_t fallback) const;
    [[nodiscard]] double get_double(const std::string& key, double fallback) const;
    /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
    [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

    /// Like the getters, but throw config_error when the key is missing.
    [[nodiscard]] std::string require_string(const std::string& key) const;
    [[nodiscard]] std::int64_t require_int(const std::string& key) const;

private:
    std::map<std::string, std::string> values_;
};

}  // namespace recloud
