// Deterministic pseudo-random number generation for reCloud.
//
// Every stochastic piece of the system (samplers, annealing, workload and
// failure-probability models) takes an explicit seed so that experiments and
// tests are reproducible. The generator is xoshiro256**, seeded through
// splitmix64 as its authors recommend; it satisfies
// std::uniform_random_bit_generator so the standard <random> distributions
// can be used on top of it when convenient.
#pragma once

#include <cstdint>
#include <limits>

namespace recloud {

/// Splitmix64 step: turns an arbitrary 64-bit state into a well-mixed
/// sequence. Used to expand a single user seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** generator. Small, fast, and of far higher quality than
/// std::minstd; state is 256 bits.
class rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the generator deterministically from a single 64-bit value.
    explicit rng(std::uint64_t seed = 0x7ec10d5eedULL) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit output.
    result_type operator()() noexcept;

    /// Uniform double in [0, 1). Uses the top 53 bits.
    [[nodiscard]] double uniform() noexcept;

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method to
    /// avoid modulo bias.
    [[nodiscard]] std::uint64_t uniform_below(std::uint64_t n) noexcept;

    /// Standard normal draw (Box–Muller, cached second value).
    [[nodiscard]] double normal() noexcept;

    /// Normal draw with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) noexcept;

    /// Forks an independent generator; the child stream is decorrelated from
    /// the parent. Useful to give each worker its own stream.
    [[nodiscard]] rng fork() noexcept;

private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace recloud
