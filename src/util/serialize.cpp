#include "util/serialize.hpp"

namespace recloud {
namespace {

template <typename T>
void append_le(std::vector<std::byte>& buffer, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    buffer.insert(buffer.end(), raw, raw + sizeof(T));
}

}  // namespace

void byte_writer::write_u8(std::uint8_t v) { append_le(buffer_, v); }
void byte_writer::write_u32(std::uint32_t v) { append_le(buffer_, v); }
void byte_writer::write_u64(std::uint64_t v) { append_le(buffer_, v); }
void byte_writer::write_f64(double v) { append_le(buffer_, v); }
void byte_writer::write_bool(bool v) { write_u8(v ? 1 : 0); }

void byte_writer::write_varint(std::uint64_t v) {
    while (v >= 0x80) {
        write_u8(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    write_u8(static_cast<std::uint8_t>(v));
}

void byte_writer::write_string(std::string_view s) {
    write_varint(s.size());
    const auto* data = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), data, data + s.size());
}

void byte_writer::write_f64_vector(std::span<const double> values) {
    write_varint(values.size());
    for (double v : values) {
        write_f64(v);
    }
}

void byte_reader::require(std::size_t n) const {
    if (remaining() < n) {
        throw serialize_error{"byte_reader: buffer underrun"};
    }
}

void byte_reader::check_count(std::uint64_t count) const {
    if (count > remaining()) {
        throw serialize_error{"byte_reader: implausible element count"};
    }
}

std::uint8_t byte_reader::read_u8() {
    require(1);
    const auto v = static_cast<std::uint8_t>(data_[pos_]);
    ++pos_;
    return v;
}

std::uint32_t byte_reader::read_u32() {
    require(sizeof(std::uint32_t));
    std::uint32_t v;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
}

std::uint64_t byte_reader::read_u64() {
    require(sizeof(std::uint64_t));
    std::uint64_t v;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
}

double byte_reader::read_f64() {
    require(sizeof(double));
    double v;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
}

bool byte_reader::read_bool() {
    const std::uint8_t v = read_u8();
    if (v > 1) {
        throw serialize_error{"byte_reader: malformed bool"};
    }
    return v == 1;
}

std::uint64_t byte_reader::read_varint() {
    std::uint64_t result = 0;
    int shift = 0;
    for (;;) {
        const std::uint8_t byte = read_u8();
        if (shift == 63 && (byte & 0x7f) > 1) {
            throw serialize_error{"byte_reader: varint overflow"};
        }
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            return result;
        }
        shift += 7;
        if (shift > 63) {
            throw serialize_error{"byte_reader: varint too long"};
        }
    }
}

std::string byte_reader::read_string() {
    const std::uint64_t size = read_varint();
    check_count(size);
    require(size);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
    pos_ += size;
    return s;
}

std::vector<double> byte_reader::read_f64_vector() {
    const std::uint64_t count = read_varint();
    check_count(count);
    std::vector<double> values;
    values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        values.push_back(read_f64());
    }
    return values;
}

}  // namespace recloud
