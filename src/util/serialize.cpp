#include "util/serialize.hpp"

#include <bit>

namespace recloud {
namespace {

/// Appends an unsigned integer in explicit little-endian byte order. The
/// format is defined on the WIRE, not by the host: frames now cross a real
/// process/socket boundary, so the encoding must not depend on what
/// std::memcpy of a host integer happens to produce.
template <typename T>
    requires std::is_unsigned_v<T>
void append_le(std::vector<std::byte>& buffer, T value) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        buffer.push_back(static_cast<std::byte>(
            static_cast<std::uint8_t>(value >> (8 * i))));
    }
}

/// Reads sizeof(T) little-endian bytes into an unsigned integer.
template <typename T>
    requires std::is_unsigned_v<T>
[[nodiscard]] T load_le(const std::byte* data) noexcept {
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        value |= static_cast<T>(static_cast<std::uint8_t>(data[i]))
                 << (8 * i);
    }
    return value;
}

}  // namespace

void byte_writer::write_u8(std::uint8_t v) { append_le(buffer_, v); }
void byte_writer::write_u32(std::uint32_t v) { append_le(buffer_, v); }
void byte_writer::write_u64(std::uint64_t v) { append_le(buffer_, v); }
void byte_writer::write_f64(double v) {
    append_le(buffer_, std::bit_cast<std::uint64_t>(v));
}
void byte_writer::write_bool(bool v) { write_u8(v ? 1 : 0); }

void byte_writer::write_varint(std::uint64_t v) {
    while (v >= 0x80) {
        write_u8(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    write_u8(static_cast<std::uint8_t>(v));
}

void byte_writer::write_string(std::string_view s) {
    write_varint(s.size());
    const auto* data = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), data, data + s.size());
}

void byte_writer::write_f64_vector(std::span<const double> values) {
    write_varint(values.size());
    for (double v : values) {
        write_f64(v);
    }
}

void byte_reader::require(std::size_t n) const {
    if (remaining() < n) {
        throw serialize_error{"byte_reader: buffer underrun"};
    }
}

std::uint64_t byte_reader::read_length_prefix(std::size_t min_element_bytes) {
    const std::uint64_t count = read_varint();
    // Divide instead of multiplying: count * min_element_bytes could wrap.
    const std::uint64_t plausible =
        remaining() / (min_element_bytes == 0 ? 1 : min_element_bytes);
    if (count > plausible) {
        throw serialize_error{"byte_reader: implausible element count"};
    }
    return count;
}

std::uint8_t byte_reader::read_u8() {
    require(1);
    const auto v = static_cast<std::uint8_t>(data_[pos_]);
    ++pos_;
    return v;
}

std::uint32_t byte_reader::read_u32() {
    require(sizeof(std::uint32_t));
    const std::uint32_t v = load_le<std::uint32_t>(data_.data() + pos_);
    pos_ += sizeof(v);
    return v;
}

std::uint64_t byte_reader::read_u64() {
    require(sizeof(std::uint64_t));
    const std::uint64_t v = load_le<std::uint64_t>(data_.data() + pos_);
    pos_ += sizeof(v);
    return v;
}

double byte_reader::read_f64() {
    require(sizeof(double));
    const double v =
        std::bit_cast<double>(load_le<std::uint64_t>(data_.data() + pos_));
    pos_ += sizeof(double);
    return v;
}

bool byte_reader::read_bool() {
    const std::uint8_t v = read_u8();
    if (v > 1) {
        throw serialize_error{"byte_reader: malformed bool"};
    }
    return v == 1;
}

std::uint64_t byte_reader::read_varint() {
    // A uint64 needs at most 10 LEB128 bytes (9*7 + 1 bits); the 10th byte
    // may only contribute bit 63, so any other set bit there encodes a
    // value past 64 bits. Both malformations are rejected explicitly.
    std::uint64_t result = 0;
    for (int i = 0; i < 10; ++i) {
        const std::uint8_t byte = read_u8();
        const std::uint64_t bits = byte & 0x7f;
        if (i == 9 && bits > 1) {
            throw serialize_error{"byte_reader: varint overflow"};
        }
        result |= bits << (7 * i);
        if ((byte & 0x80) == 0) {
            return result;
        }
    }
    throw serialize_error{"byte_reader: varint too long"};
}

std::string byte_reader::read_string() {
    const std::uint64_t size = read_length_prefix();
    require(size);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
    pos_ += size;
    return s;
}

std::vector<double> byte_reader::read_f64_vector() {
    const std::uint64_t count = read_length_prefix(sizeof(double));
    std::vector<double> values;
    values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        values.push_back(read_f64());
    }
    return values;
}

std::uint64_t frame_checksum(std::span<const std::byte> payload) noexcept {
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
    for (const std::byte b : payload) {
        hash ^= static_cast<std::uint64_t>(b);
        hash *= 0x00000100000001b3ULL;  // FNV-1a 64 prime
    }
    return hash;
}

std::vector<std::byte> frame_message(std::span<const std::byte> payload) {
    byte_writer header;
    header.reserve(frame_header_bytes + payload.size());
    header.write_u32(frame_magic);
    header.write_u8(frame_version);
    header.write_u64(payload.size());
    header.write_u64(frame_checksum(payload));
    std::vector<std::byte> framed = header.take();
    framed.insert(framed.end(), payload.begin(), payload.end());
    return framed;
}

frame_assembler::frame_assembler(std::size_t max_payload)
    : max_payload_(max_payload) {}

void frame_assembler::feed(std::span<const std::byte> bytes) {
    // Compact lazily: only when the dead prefix dominates the buffer, so
    // feeding byte-by-byte stays O(n) amortized.
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::byte>> frame_assembler::next_frame() {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < frame_header_bytes) {
        return std::nullopt;
    }
    // Validate the header as soon as it is complete: a desynchronized or
    // hostile stream must fail fast instead of making the reader wait for
    // a phantom multi-exabyte payload.
    byte_reader header{std::span<const std::byte>{buffer_.data() + consumed_,
                                                  frame_header_bytes}};
    if (header.read_u32() != frame_magic) {
        throw serialize_error{"frame_assembler: bad magic (stream desync)"};
    }
    if (header.read_u8() != frame_version) {
        throw serialize_error{"frame_assembler: unsupported version"};
    }
    const std::uint64_t length = header.read_u64();
    if (length > max_payload_) {
        throw serialize_error{"frame_assembler: payload exceeds limit"};
    }
    const std::size_t total = frame_header_bytes + static_cast<std::size_t>(length);
    if (available < total) {
        return std::nullopt;  // wait for more bytes
    }
    std::vector<std::byte> frame(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_),
                                 buffer_.begin() +
                                     static_cast<std::ptrdiff_t>(consumed_ + total));
    consumed_ += total;
    if (consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    }
    return frame;
}

std::span<const std::byte> unframe_message(std::span<const std::byte> framed) {
    byte_reader reader{framed};
    if (framed.size() < frame_header_bytes) {
        throw serialize_error{"frame: truncated header"};
    }
    if (reader.read_u32() != frame_magic) {
        throw serialize_error{"frame: bad magic"};
    }
    if (reader.read_u8() != frame_version) {
        throw serialize_error{"frame: unsupported version"};
    }
    const std::uint64_t length = reader.read_u64();
    const std::uint64_t checksum = reader.read_u64();
    if (length != reader.remaining()) {
        throw serialize_error{"frame: payload length mismatch"};
    }
    const std::span<const std::byte> payload = framed.subspan(frame_header_bytes);
    if (frame_checksum(payload) != checksum) {
        throw serialize_error{"frame: checksum mismatch"};
    }
    return payload;
}

}  // namespace recloud
