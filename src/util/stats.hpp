// Statistics helpers used across the assessment pipeline: streaming
// mean/variance (Welford), the paper's confidence-interval computation
// (Eqs. 1-3 of the reCloud paper), and small numeric utilities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace recloud {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable; O(1) memory regardless of the number of observations.
class running_stats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept;
    /// Population variance (divides by n). Matches Var[L] in Eq. 2.
    [[nodiscard]] double variance() const noexcept;
    /// Sample variance (divides by n-1).
    [[nodiscard]] double sample_variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;

    /// Merges another accumulator into this one (parallel reduction).
    void merge(const running_stats& other) noexcept;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Assessment statistics for a Bernoulli result list L = {d_1..d_n} where
/// d_i = 1 iff the deployment plan was reliable in round i (paper §3.2.2).
struct assessment_stats {
    std::size_t rounds = 0;       ///< n
    std::size_t reliable = 0;     ///< number of rounds with d_i = 1
    double reliability = 0.0;     ///< R = sum(d_i)/n           (Eq. 1)
    double variance = 0.0;        ///< V = Var[L]/n             (Eq. 2)
    double ciw95 = 0.0;           ///< CIW95 = 4*sqrt(V)        (Eq. 3)
};

/// Computes Eqs. 1-3 from the count of reliable rounds. For a 0/1 list,
/// Var[L] = R*(1-R), so only the counts are needed.
[[nodiscard]] assessment_stats make_assessment_stats(std::size_t reliable_rounds,
                                                     std::size_t total_rounds) noexcept;

/// Rounds to the given number of decimal places (the paper rounds failure
/// probabilities to 4 decimals, §4.1).
[[nodiscard]] double round_to_decimals(double x, int decimals) noexcept;

/// Clamps x into [lo, hi].
[[nodiscard]] double clamp(double x, double lo, double hi) noexcept;

/// Mean of a span.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Population variance of a span.
[[nodiscard]] double variance_of(std::span<const double> xs) noexcept;

}  // namespace recloud
