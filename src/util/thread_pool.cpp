#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "obs/trace.hpp"

namespace recloud {
namespace {

/// OS-level thread name for debuggers, TSan reports and `perf`. Linux
/// truncates to 15 chars + NUL; other platforms are a no-op.
void set_os_thread_name(const std::string& name) {
    (void)name;
#if defined(__linux__)
    char buffer[16];
    const std::size_t n = std::min(name.size(), sizeof(buffer) - 1);
    name.copy(buffer, n);
    buffer[n] = '\0';
    pthread_setname_np(pthread_self(), buffer);
#endif
}

}  // namespace

thread_pool::thread_pool(std::size_t threads, const char* name_prefix) {
    if (threads == 0) {
        throw std::invalid_argument{"thread_pool needs at least one thread"};
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back(
            [this, name = std::string{name_prefix} + "-" + std::to_string(i)] {
                worker_loop(std::move(name));
            });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard lock{mutex_};
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void thread_pool::worker_loop(std::string name) {
    set_os_thread_name(name);
    obs::tracer::global().set_current_thread_name(name);
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock{mutex_};
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping_ and nothing left to drain
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
    if (count == 0) {
        return;
    }
    // Chunk into ~4 tasks per worker instead of one packaged_task per index:
    // enough slack for load balancing across uneven iterations without the
    // per-index allocation + future + queue traffic drowning small bodies.
    const std::size_t chunks = std::min(count, size() * 4);
    const std::size_t base = count / chunks;
    const std::size_t extra = count % chunks;  // first `extra` chunks get +1
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t end = begin + base + (c < extra ? 1 : 0);
        futures.push_back(submit([&fn, begin, end] {
            for (std::size_t i = begin; i < end; ++i) {
                fn(i);
            }
        }));
        begin = end;
    }
    for (auto& future : futures) {
        future.get();  // propagates the first task exception per chunk
    }
}

}  // namespace recloud
