#include "util/thread_pool.hpp"

#include <stdexcept>

namespace recloud {

thread_pool::thread_pool(std::size_t threads) {
    if (threads == 0) {
        throw std::invalid_argument{"thread_pool needs at least one thread"};
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard lock{mutex_};
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock{mutex_};
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping_ and nothing left to drain
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        futures.push_back(submit([&fn, i] { fn(i); }));
    }
    for (auto& future : futures) {
        future.get();  // propagates any task exception
    }
}

}  // namespace recloud
