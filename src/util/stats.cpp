#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace recloud {

void running_stats::add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double running_stats::mean() const noexcept {
    return count_ == 0 ? 0.0 : mean_;
}

double running_stats::variance() const noexcept {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double running_stats::sample_variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept {
    return std::sqrt(variance());
}

void running_stats::merge(const running_stats& other) noexcept {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
}

assessment_stats make_assessment_stats(std::size_t reliable_rounds,
                                       std::size_t total_rounds) noexcept {
    assessment_stats s;
    s.rounds = total_rounds;
    s.reliable = reliable_rounds;
    if (total_rounds == 0) {
        return s;
    }
    const double n = static_cast<double>(total_rounds);
    s.reliability = static_cast<double>(reliable_rounds) / n;
    // For a 0/1 list, Var[L] = R*(1-R) exactly (population variance).
    const double var_l = s.reliability * (1.0 - s.reliability);
    s.variance = var_l / n;               // Eq. 2
    s.ciw95 = 4.0 * std::sqrt(s.variance);  // Eq. 3
    return s;
}

double round_to_decimals(double x, int decimals) noexcept {
    const double scale = std::pow(10.0, decimals);
    return std::round(x * scale) / scale;
}

double clamp(double x, double lo, double hi) noexcept {
    return std::min(std::max(x, lo), hi);
}

double mean_of(std::span<const double> xs) noexcept {
    running_stats s;
    for (double x : xs) {
        s.add(x);
    }
    return s.mean();
}

double variance_of(std::span<const double> xs) noexcept {
    running_stats s;
    for (double x : xs) {
        s.add(x);
    }
    return s.variance();
}

}  // namespace recloud
