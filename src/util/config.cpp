#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace recloud {
namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
        s.remove_suffix(1);
    }
    return s;
}

std::string lower(std::string_view s) {
    std::string out{s};
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/// Strips a trailing comment starting at an unquoted # or ;.
std::string_view strip_comment(std::string_view line) {
    const std::size_t pos = line.find_first_of("#;");
    return pos == std::string_view::npos ? line : line.substr(0, pos);
}

}  // namespace

config config::parse(std::string_view text) {
    config result;
    std::string section;
    std::size_t line_number = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        ++line_number;
        const std::size_t end = text.find('\n', start);
        std::string_view line = end == std::string_view::npos
                                    ? text.substr(start)
                                    : text.substr(start, end - start);
        start = end == std::string_view::npos ? text.size() + 1 : end + 1;

        line = trim(strip_comment(line));
        if (line.empty()) {
            continue;
        }
        if (line.front() == '[') {
            if (line.back() != ']' || line.size() < 3) {
                throw config_error{"config: malformed section at line " +
                                   std::to_string(line_number)};
            }
            section = std::string{trim(line.substr(1, line.size() - 2))};
            if (section.empty()) {
                throw config_error{"config: empty section name at line " +
                                   std::to_string(line_number)};
            }
            continue;
        }
        const std::size_t equals = line.find('=');
        if (equals == std::string_view::npos) {
            throw config_error{"config: expected key = value at line " +
                               std::to_string(line_number)};
        }
        const std::string key{trim(line.substr(0, equals))};
        const std::string value{trim(line.substr(equals + 1))};
        if (key.empty()) {
            throw config_error{"config: empty key at line " +
                               std::to_string(line_number)};
        }
        const std::string full_key = section.empty() ? key : section + "." + key;
        result.values_[full_key] = value;
    }
    return result;
}

config config::parse_file(const std::string& path) {
    std::ifstream input{path};
    if (!input) {
        throw config_error{"config: cannot read " + path};
    }
    std::ostringstream buffer;
    buffer << input.rdbuf();
    return parse(buffer.str());
}

std::vector<std::string> config::keys() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_) {
        out.push_back(key);
    }
    return out;
}

std::string config::get_string(const std::string& key,
                               const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t config::get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
        return fallback;
    }
    try {
        std::size_t consumed = 0;
        const std::int64_t value = std::stoll(it->second, &consumed);
        if (consumed != it->second.size()) {
            throw std::invalid_argument{""};
        }
        return value;
    } catch (const std::exception&) {
        throw config_error{"config: '" + key + "' is not an integer: " +
                           it->second};
    }
}

std::uint64_t config::get_uint(const std::string& key,
                               std::uint64_t fallback) const {
    if (!has(key)) {
        return fallback;
    }
    const std::int64_t value = get_int(key, 0);
    if (value < 0) {
        throw config_error{"config: '" + key + "' must be >= 0, got " +
                           std::to_string(value)};
    }
    return static_cast<std::uint64_t>(value);
}

double config::get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
        return fallback;
    }
    try {
        std::size_t consumed = 0;
        const double value = std::stod(it->second, &consumed);
        if (consumed != it->second.size()) {
            throw std::invalid_argument{""};
        }
        return value;
    } catch (const std::exception&) {
        throw config_error{"config: '" + key + "' is not a number: " + it->second};
    }
}

bool config::get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
        return fallback;
    }
    const std::string v = lower(it->second);
    if (v == "true" || v == "yes" || v == "on" || v == "1") {
        return true;
    }
    if (v == "false" || v == "no" || v == "off" || v == "0") {
        return false;
    }
    throw config_error{"config: '" + key + "' is not a boolean: " + it->second};
}

std::string config::require_string(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
        throw config_error{"config: missing required key '" + key + "'"};
    }
    return it->second;
}

std::int64_t config::require_int(const std::string& key) const {
    if (!has(key)) {
        throw config_error{"config: missing required key '" + key + "'"};
    }
    return get_int(key, 0);
}

}  // namespace recloud
