// A small fixed-size thread pool. Used by the MapReduce-style execution
// engine (src/exec) to host worker nodes, and by benches that parallelize
// independent assessments.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace recloud {

class thread_pool {
public:
    /// Spawns `threads` workers. `threads == 0` is rejected. Workers are
    /// named "<name_prefix>-N" (OS thread name where the platform allows,
    /// truncated to its 15-char limit, plus the tracer's thread metadata) so
    /// traces, TSan reports and `perf` output identify pool threads.
    explicit thread_pool(std::size_t threads,
                         const char* name_prefix = "recloud-wkr");

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Drains outstanding tasks and joins all workers.
    ~thread_pool();

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueues a task; the returned future yields the task's result.
    template <typename F>
    [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
        using result_t = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<result_t()>>(
            std::forward<F>(task));
        std::future<result_t> future = packaged->get_future();
        {
            const std::lock_guard lock{mutex_};
            queue_.emplace_back([packaged] { (*packaged)(); });
        }
        cv_.notify_one();
        return future;
    }

    /// Runs fn(i) for i in [0, count) across the pool and waits for all.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop(std::string name);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

}  // namespace recloud
