#include "assess/assessor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {

assessment_stats assess_deployment(failure_sampler& sampler, round_state& rs,
                                   reachability_oracle& oracle,
                                   const application& app,
                                   const deployment_plan& plan,
                                   std::size_t rounds, verdict_cache* cache) {
    RECLOUD_SPAN("assess.deployment");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    requirement_evaluator evaluator{app, plan};
    result_accumulator results;
    std::vector<component_id> failed;
    if (cache != nullptr) {
        cache->bind(app, plan);
    }
    for (std::size_t round = 0; round < rounds; ++round) {
        sampler.next_round(failed);
        results.add(cached_reliable_in_round(cache, failed, rs, oracle, plan,
                                             evaluator));
    }
    return results.stats();
}

assessment_stats assess_until_ciw(failure_sampler& sampler, round_state& rs,
                                  reachability_oracle& oracle,
                                  const application& app,
                                  const deployment_plan& plan,
                                  const adaptive_assess_options& options,
                                  verdict_cache* cache) {
    if (options.target_ciw <= 0.0) {
        throw std::invalid_argument{"assess_until_ciw: target must be > 0"};
    }
    RECLOUD_SPAN("assess.until_ciw");
    requirement_evaluator evaluator{app, plan};
    result_accumulator results;
    std::vector<component_id> failed;
    if (cache != nullptr) {
        cache->bind(app, plan);
    }
    const auto run_rounds = [&](std::size_t rounds) {
        RECLOUD_COUNTER_ADD("assess.rounds", rounds);
        for (std::size_t round = 0; round < rounds; ++round) {
            sampler.next_round(failed);
            results.add(cached_reliable_in_round(cache, failed, rs, oracle,
                                                 plan, evaluator));
        }
    };

    run_rounds(std::min(std::max<std::size_t>(options.initial_rounds, 1),
                        options.max_rounds));
    for (;;) {
        const assessment_stats stats = results.stats();
        if (stats.ciw95 <= options.target_ciw ||
            results.rounds() >= options.max_rounds) {
            return stats;
        }
        // Predict the total rounds needed from the current estimate, then
        // run the shortfall (at least as many as already done, so the
        // prediction error of early noisy estimates cannot stall progress).
        const std::size_t predicted =
            rounds_for_target_ciw(options.target_ciw, stats.reliability);
        const std::size_t want = std::max(predicted, 2 * results.rounds());
        const std::size_t next = std::min(want, options.max_rounds);
        run_rounds(next - results.rounds());
    }
}

reliability_assessor::reliability_assessor(
    std::size_t component_count, const fault_tree_forest* forest,
    reachability_oracle& oracle, failure_sampler& sampler,
    const verdict_cache_options& cache_options)
    : rs_(component_count, forest), oracle_(&oracle), sampler_(&sampler) {
    if (cache_options.enabled && cache_options.support != nullptr) {
        cache_.emplace(*cache_options.support, cache_options.max_entries);
    }
}

assessment_stats reliability_assessor::assess(const application& app,
                                              const deployment_plan& plan,
                                              std::size_t rounds) {
    RECLOUD_SPAN("assess.deployment");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    requirement_evaluator evaluator{app, plan};
    result_accumulator results;
    verdict_cache* cache = cache_ ? &*cache_ : nullptr;
    if (cache != nullptr) {
        cache->bind(app, plan);
    }
    for (std::size_t round = 0; round < rounds; ++round) {
        sampler_->next_round(failed_scratch_);
        results.add(cached_reliable_in_round(cache, failed_scratch_, rs_,
                                             *oracle_, plan, evaluator));
    }
    return results.stats();
}

}  // namespace recloud
