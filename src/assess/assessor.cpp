#include "assess/assessor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace recloud {
namespace {

/// Rounds between run_budget polls in the assessment inner loops: frequent
/// enough to bound preemption latency to a sliver of route-and-check work,
/// sparse enough that the clock read vanishes in the noise. An un-armed
/// poll (budget == nullptr) is a single pointer test.
constexpr std::size_t budget_poll_stride = 256;

}  // namespace

assessment_stats assess_deployment(failure_sampler& sampler, round_state& rs,
                                   reachability_oracle& oracle,
                                   const application& app,
                                   const deployment_plan& plan,
                                   std::size_t rounds, verdict_cache* cache,
                                   const run_budget* budget) {
    RECLOUD_SPAN("assess.deployment");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    requirement_evaluator evaluator{app, plan};
    result_accumulator results;
    std::vector<component_id> failed;
    if (cache != nullptr) {
        cache->bind(app, plan);
    }
    for (std::size_t round = 0; round < rounds; ++round) {
        if (round % budget_poll_stride == 0) {
            throw_if_preempted(budget);
        }
        sampler.next_round(failed);
        results.add(cached_reliable_in_round(cache, failed, rs, oracle, plan,
                                             evaluator));
    }
    return results.stats();
}

assessment_stats assess_until_ciw(failure_sampler& sampler, round_state& rs,
                                  reachability_oracle& oracle,
                                  const application& app,
                                  const deployment_plan& plan,
                                  const adaptive_assess_options& options,
                                  verdict_cache* cache,
                                  const run_budget* budget) {
    if (options.target_ciw <= 0.0) {
        throw std::invalid_argument{"assess_until_ciw: target must be > 0"};
    }
    RECLOUD_SPAN("assess.until_ciw");
    requirement_evaluator evaluator{app, plan};
    result_accumulator results;
    std::vector<component_id> failed;
    if (cache != nullptr) {
        cache->bind(app, plan);
    }
    const auto run_rounds = [&](std::size_t rounds) {
        RECLOUD_COUNTER_ADD("assess.rounds", rounds);
        for (std::size_t round = 0; round < rounds; ++round) {
            if (round % budget_poll_stride == 0) {
                throw_if_preempted(budget);
            }
            sampler.next_round(failed);
            results.add(cached_reliable_in_round(cache, failed, rs, oracle,
                                                 plan, evaluator));
        }
    };

    run_rounds(std::min(std::max<std::size_t>(options.initial_rounds, 1),
                        options.max_rounds));
    for (;;) {
        const assessment_stats stats = results.stats();
        if (stats.ciw95 <= options.target_ciw ||
            results.rounds() >= options.max_rounds) {
            return stats;
        }
        // Predict the total rounds needed from the current estimate, then
        // run the shortfall (at least as many as already done, so the
        // prediction error of early noisy estimates cannot stall progress).
        const std::size_t predicted =
            rounds_for_target_ciw(options.target_ciw, stats.reliability);
        const std::size_t want = std::max(predicted, 2 * results.rounds());
        const std::size_t next = std::min(want, options.max_rounds);
        run_rounds(next - results.rounds());
    }
}

reliability_assessor::reliability_assessor(
    std::size_t component_count, const fault_tree_forest* forest,
    reachability_oracle& oracle, failure_sampler& sampler,
    const verdict_cache_options& cache_options)
    : rs_(component_count, forest), oracle_(&oracle), sampler_(&sampler) {
    if (cache_options.enabled && cache_options.support != nullptr) {
        cache_.emplace(*cache_options.support, cache_options.max_entries,
                       cache_options.cross_plan);
    }
}

namespace {

std::uint64_t hash_ids(std::span<const component_id> ids) noexcept {
    std::uint64_t hash = 1469598103934665603ULL;
    for (const component_id id : ids) {
        hash ^= static_cast<std::uint64_t>(id);
        hash *= 1099511628211ULL;
    }
    return hash;
}

}  // namespace

void reliability_assessor::begin_journal(std::uint64_t seed,
                                         std::uint64_t app_fingerprint,
                                         std::size_t rounds) {
    journal_valid_ = false;
    journal_seed_ = seed;
    journal_app_ = app_fingerprint;
    journal_rounds_ = rounds;
    journal_keys_.clear();
    journal_groups_.clear();
    journal_round_group_.clear();
    journal_round_group_.reserve(rounds);
    journal_residue_index_.clear();
    journal_index_.clear();
}

void reliability_assessor::record_round(std::uint32_t round,
                                        const verdict_cache& cache) {
    // Group the round by its support-filtered signature. last_key() is the
    // sorted filtered key of the lookup the seam just performed — valid on
    // hits, misses, and the empty fast path alike.
    const std::span<const component_id> key = cache.last_key();
    const std::uint64_t hash = hash_ids(key);
    std::vector<std::uint32_t>& bucket = journal_index_[hash];
    std::uint32_t group = static_cast<std::uint32_t>(journal_groups_.size());
    for (const std::uint32_t candidate : bucket) {
        const journal_group& g = journal_groups_[candidate];
        if (g.key_length == key.size() &&
            std::equal(key.begin(), key.end(),
                       journal_keys_.begin() + g.key_begin)) {
            group = candidate;
            break;
        }
    }
    if (group == journal_groups_.size()) {
        journal_group g;
        g.key_begin = static_cast<std::uint32_t>(journal_keys_.size());
        g.key_length = static_cast<std::uint32_t>(key.size());
        journal_keys_.insert(journal_keys_.end(), key.begin(), key.end());
        journal_groups_.push_back(g);
        bucket.push_back(group);
    }
    ++journal_groups_[group].multiplicity;
    journal_round_group_.push_back(group);

    // Off-support residue, inverted: component -> the rounds it failed in
    // while outside the recording plan's support. Replay probes this with
    // the new binding's support additions only. Duplicate raw occurrences
    // stay duplicated so a merged replay key matches the full-pass key
    // exactly.
    for (const component_id id : failed_scratch_) {
        if (!cache.in_support(id)) {
            journal_residue_index_[id].push_back(round);
        }
    }
}

bool reliability_assessor::replay_journal(const application& app,
                                          const deployment_plan& plan,
                                          verdict_cache* cache,
                                          requirement_evaluator& evaluator,
                                          const run_budget* budget,
                                          assessment_stats* out) {
    // Pass 1 (no judging): which recorded rounds are dirty under the new
    // plan — some off-support residue entered the new support (it belongs
    // to the swapped-in host or its dependencies)? Only the binding's
    // support additions can differ between two bindings of the same app
    // shape, so probing the inverted residue index with them finds every
    // dirty round in O(|swap delta|).
    dirty_pairs_.clear();
    for (const component_id id : cache->bound_support_additions()) {
        const auto it = journal_residue_index_.find(id);
        if (it == journal_residue_index_.end()) {
            continue;
        }
        for (const std::uint32_t round : it->second) {
            dirty_pairs_.emplace_back(round, id);
        }
    }
    if (dirty_pairs_.size() > journal_rounds_ / 4) {
        // Pathological churn (e.g. a plan jump that moved many hosts):
        // grouping no longer pays — re-record from the fresh stream.
        // (Pairs over-count rounds with several entered residues; that only
        // makes the bail more conservative.)
        return false;
    }
    std::sort(dirty_pairs_.begin(), dirty_pairs_.end());
    dirty_per_group_.assign(journal_groups_.size(), 0);
    dirty_rounds_.clear();
    dirty_pool_.clear();
    for (std::size_t i = 0; i < dirty_pairs_.size();) {
        const std::uint32_t round = dirty_pairs_[i].first;
        const auto begin = static_cast<std::uint32_t>(dirty_pool_.size());
        for (; i < dirty_pairs_.size() && dirty_pairs_[i].first == round;
             ++i) {
            dirty_pool_.push_back(dirty_pairs_[i].second);
        }
        const std::uint32_t group = journal_round_group_[round];
        ++dirty_per_group_[group];
        dirty_rounds_.push_back(
            {group, begin,
             static_cast<std::uint32_t>(dirty_pool_.size()) - begin});
    }
    if (dirty_rounds_.size() > journal_rounds_ / 4) {
        return false;
    }
    RECLOUD_COUNTER_INC("assess.journal_replays");

    // Pass 2: judge once per group for the clean multiplicity, then each
    // dirty round individually with its residue merged into the group key
    // (the seam's lookup filters and sorts, so plain concatenation is
    // enough; components the new support dropped are filtered there too).
    // A preempt mid-replay is safe to propagate: the journal was only read
    // and the stream untouched (debt is added by the caller on success).
    result_accumulator results;
    for (std::size_t g = 0; g < journal_groups_.size(); ++g) {
        if (g % budget_poll_stride == 0) {
            throw_if_preempted(budget);
        }
        const journal_group& group = journal_groups_[g];
        const std::uint32_t clean = group.multiplicity - dirty_per_group_[g];
        if (clean == 0) {
            continue;
        }
        const std::span<const component_id> key{
            journal_keys_.data() + group.key_begin, group.key_length};
        const bool verdict = cached_reliable_in_round(cache, key, rs_,
                                                      *oracle_, plan,
                                                      evaluator);
        results.merge(verdict ? clean : 0, clean);
    }
    for (const dirty_round& dirty : dirty_rounds_) {
        const journal_group& group = journal_groups_[dirty.group];
        merged_scratch_.assign(
            journal_keys_.begin() + group.key_begin,
            journal_keys_.begin() + group.key_begin + group.key_length);
        merged_scratch_.insert(merged_scratch_.end(),
                               dirty_pool_.begin() + dirty.begin,
                               dirty_pool_.begin() + dirty.begin +
                                   dirty.length);
        results.add(cached_reliable_in_round(cache, merged_scratch_, rs_,
                                             *oracle_, plan, evaluator));
    }
    (void)app;
    *out = results.stats();
    return true;
}

void reliability_assessor::settle_stream_debt() {
    while (replay_debt_rounds_ > 0) {
        sampler_->next_round(failed_scratch_);
        --replay_debt_rounds_;
    }
}

assessment_stats reliability_assessor::assess(const application& app,
                                              const deployment_plan& plan,
                                              std::size_t rounds,
                                              const run_budget* budget) {
    RECLOUD_SPAN("assess.deployment");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    requirement_evaluator evaluator{app, plan};
    verdict_cache* cache = cache_ ? &*cache_ : nullptr;
    const std::optional<std::uint64_t> fresh_reset = pending_reset_seed_;
    pending_reset_seed_.reset();
    if (!fresh_reset.has_value()) {
        settle_stream_debt();  // continue the stream where off-mode would be
    }
    if (cache != nullptr) {
        cache->bind(app, plan);
    }
    const bool incremental = cache != nullptr && cache->cross_plan();
    const std::uint64_t app_fingerprint =
        incremental ? application_fingerprint(app) : 0;
    if (incremental && fresh_reset.has_value() && journal_valid_ &&
        *fresh_reset == journal_seed_ && rounds == journal_rounds_ &&
        app_fingerprint == journal_app_) {
        assessment_stats replayed;
        if (replay_journal(app, plan, cache, evaluator, budget, &replayed)) {
            replay_debt_rounds_ += rounds;
            return replayed;
        }
    }
    const bool record = incremental && fresh_reset.has_value() && rounds > 0;
    if (record) {
        // A preempt below leaves the half-recorded journal invalid
        // (journal_valid_ only flips back after a full pass).
        begin_journal(*fresh_reset, app_fingerprint, rounds);
    }
    result_accumulator results;
    for (std::size_t round = 0; round < rounds; ++round) {
        if (round % budget_poll_stride == 0) {
            throw_if_preempted(budget);
        }
        sampler_->next_round(failed_scratch_);
        results.add(cached_reliable_in_round(cache, failed_scratch_, rs_,
                                             *oracle_, plan, evaluator));
        if (record) {
            record_round(static_cast<std::uint32_t>(round), *cache);
        }
    }
    if (record) {
        journal_valid_ = true;
    }
    return results.stats();
}

}  // namespace recloud
