// Blast-radius / component-criticality analysis.
//
// For a deployed application, rank infrastructure components by how much
// reliability the deployment loses if that component is down: the
// conditional reliability R(plan | c failed) is assessed with a
// forced-failure sampler, using common random numbers across candidates so
// the ranking reflects impact rather than sampling noise.
//
// This operationalizes the paper's motivation stories (§1): "the power
// supply and the storage service were the shared dependencies that caused
// correlated failures" — criticality analysis finds those components
// *before* they take the application down.
#pragma once

#include <cstddef>
#include <vector>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"
#include "sampling/sampler.hpp"
#include "util/stats.hpp"

namespace recloud {

struct criticality_entry {
    component_id component = invalid_node;
    /// R(plan | component forced down).
    double conditional_reliability = 0.0;
    /// Baseline R minus conditional R: the reliability this single
    /// component's failure would cost. Can be ~0 for components the plan
    /// does not depend on, and is clamped at >= 0 (sampling noise).
    double impact = 0.0;
};

struct criticality_report {
    assessment_stats baseline;
    /// Sorted by impact, highest first.
    std::vector<criticality_entry> entries;
};

struct criticality_options {
    std::size_t rounds = 10'000;
    std::uint64_t seed = 1;
};

/// Assesses the baseline and each candidate's conditional reliability.
/// `sampler` is reset per candidate (common random numbers). `forest` may
/// be nullptr.
[[nodiscard]] criticality_report analyze_criticality(
    failure_sampler& sampler, const fault_tree_forest* forest,
    std::size_t component_count, reachability_oracle& oracle,
    const application& app, const deployment_plan& plan,
    const std::vector<component_id>& candidates,
    const criticality_options& options = {});

}  // namespace recloud
