#include "assess/backend.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include "app/requirement_eval.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/result_stats.hpp"

namespace recloud {
namespace {

/// Per-task tally a worker hands back to the reducer.
struct batch_counts {
    std::size_t rounds = 0;
    std::size_t reliable = 0;
};

}  // namespace

assessment_stats assessment_backend::assess_until_ciw(
    const application& app, const deployment_plan& plan,
    const adaptive_assess_options& options) {
    if (options.target_ciw <= 0.0) {
        throw std::invalid_argument{"assess_until_ciw: target must be > 0"};
    }
    // Same prediction loop as the serial free function (assessor.cpp), built
    // on the backend's assess(): run an initial burst, then repeatedly
    // predict the total rounds needed and run the shortfall.
    result_accumulator results;
    const auto run_rounds = [&](std::size_t rounds) {
        const assessment_stats chunk = assess(app, plan, rounds);
        results.merge(chunk.reliable, chunk.rounds);
    };
    run_rounds(std::min(std::max<std::size_t>(options.initial_rounds, 1),
                        options.max_rounds));
    for (;;) {
        throw_if_preempted(budget_);  // between prediction batches
        const assessment_stats stats = results.stats();
        if (stats.ciw95 <= options.target_ciw ||
            results.rounds() >= options.max_rounds) {
            return stats;
        }
        const std::size_t predicted =
            rounds_for_target_ciw(options.target_ciw, stats.reliability);
        const std::size_t want = std::max(predicted, 2 * results.rounds());
        const std::size_t next = std::min(want, options.max_rounds);
        run_rounds(next - results.rounds());
    }
}

serial_backend::serial_backend(std::size_t component_count,
                               const fault_tree_forest* forest,
                               reachability_oracle& oracle,
                               failure_sampler& sampler,
                               const verdict_cache_options& cache_options)
    : assessor_(component_count, forest, oracle, sampler, cache_options),
      sampler_(&sampler),
      oracle_(&oracle) {}

assessment_stats serial_backend::assess(const application& app,
                                        const deployment_plan& plan,
                                        std::size_t rounds) {
    return assessor_.assess(app, plan, rounds, budget_);
}

assessment_stats serial_backend::assess_until_ciw(
    const application& app, const deployment_plan& plan,
    const adaptive_assess_options& options) {
    // The CIW loop drives the sampler directly: pay back any rounds a
    // journal replay skipped and drop the fresh-reset flag so a later
    // assess() cannot mistake the advanced stream for a reset one.
    assessor_.settle_stream_debt();
    assessor_.invalidate_stream_reset();
    return recloud::assess_until_ciw(*sampler_, assessor_.state(), *oracle_, app,
                                     plan, options, assessor_.cache(), budget_);
}

void serial_backend::reset_stream(std::uint64_t seed) {
    sampler_->reset(seed);
    assessor_.note_stream_reset(seed);
}

parallel_backend::parallel_backend(std::size_t component_count,
                                   const fault_tree_forest* forest,
                                   oracle_factory make_oracle,
                                   failure_sampler& sampler,
                                   const parallel_backend_options& options)
    : sampler_(&sampler),
      options_(options),
      pool_(options.threads != 0 ? options.threads
                                 : std::max(1u, std::thread::hardware_concurrency())) {
    if (options_.batch_rounds == 0) {
        throw std::invalid_argument{"parallel_backend: batch_rounds must be >= 1"};
    }
    if (sampler_->fork(0) == nullptr) {
        throw std::invalid_argument{
            "parallel_backend: sampler does not support substreams (fork)"};
    }
    contexts_.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) {
        std::unique_ptr<reachability_oracle> oracle = make_oracle();
        if (oracle == nullptr) {
            throw std::invalid_argument{
                "parallel_backend: oracle factory returned nullptr"};
        }
        contexts_.push_back(std::make_unique<worker_context>(
            component_count, forest, std::move(oracle),
            options_.verdict_cache));
    }
}

assessment_stats parallel_backend::assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds) {
    RECLOUD_SPAN("backend.parallel.assess");
    RECLOUD_COUNTER_ADD("assess.rounds", rounds);
    ++epoch_;
    const std::size_t batch_rounds = options_.batch_rounds;
    const std::size_t batches = (rounds + batch_rounds - 1) / batch_rounds;
    const std::size_t workers = pool_.size();

    // One task per worker; worker w judges batches w, w+workers, ... Batch
    // b's rounds come from substream (epoch, b) no matter which worker runs
    // it, and the per-batch counts are summed — addition commutes, so the
    // schedule cannot affect the result.
    //
    // Lifecycle: workers poll the armed budget between batches; the first
    // to see it fire raises `aborted` so siblings stop at their next batch
    // boundary too. Every future still completes (the master must not
    // outrun tasks holding references to this frame), then the whole
    // partial tally is discarded by throwing search_preempted.
    std::atomic<bool> aborted{false};
    const run_budget* budget = budget_;
    std::vector<std::future<batch_counts>> futures;
    futures.reserve(workers);
    for (std::size_t w = 0; w < workers && w < batches; ++w) {
        futures.push_back(pool_.submit([this, &app, &plan, rounds, batch_rounds,
                                        batches, workers, w, budget,
                                        &aborted]() -> batch_counts {
            worker_context& context = *contexts_[w];
            requirement_evaluator evaluator{app, plan};
            verdict_cache* cache = context.cache ? &*context.cache : nullptr;
            if (cache != nullptr) {
                cache->bind(app, plan);
            }
            std::vector<component_id> failed;
            batch_counts counts;
            for (std::size_t b = w; b < batches; b += workers) {
                if (budget != nullptr &&
                    (aborted.load(std::memory_order_relaxed) ||
                     budget->interrupted())) {
                    aborted.store(true, std::memory_order_relaxed);
                    break;
                }
                RECLOUD_SPAN("assess.batch");
                RECLOUD_COUNTER_INC("assess.batches");
                const std::unique_ptr<failure_sampler> substream =
                    sampler_->fork(substream_id(epoch_, b));
                const std::size_t begin = b * batch_rounds;
                const std::size_t count = std::min(batch_rounds, rounds - begin);
                for (std::size_t i = 0; i < count; ++i) {
                    substream->next_round(failed);
                    ++counts.rounds;
                    if (cached_reliable_in_round(cache, failed, context.rs,
                                                 *context.oracle, plan,
                                                 evaluator)) {
                        ++counts.reliable;
                    }
                }
            }
            return counts;
        }));
    }

    result_accumulator results;
    for (auto& future : futures) {
        const batch_counts counts = future.get();
        results.merge(counts.reliable, counts.rounds);
    }
    if (aborted.load(std::memory_order_relaxed)) {
        throw search_preempted{};
    }
    return results.stats();
}

void parallel_backend::reset_stream(std::uint64_t seed) {
    sampler_->reset(seed);
    epoch_ = 0;
}

const verdict_cache_stats* parallel_backend::cache_stats() const noexcept {
    if (!options_.verdict_cache.enabled ||
        options_.verdict_cache.support == nullptr) {
        return nullptr;
    }
    cache_stats_ = {};
    for (const std::unique_ptr<worker_context>& context : contexts_) {
        if (context->cache) {
            cache_stats_.accumulate(context->cache->stats());
        }
    }
    return &cache_stats_;
}

}  // namespace recloud
