// Exact reliability by exhaustive enumeration.
//
// The two-terminal reliability problem is NP-hard (paper §3.2.1), but for
// *tiny* infrastructures it is perfectly feasible to enumerate every failure
// combination of the components that can fail and sum the probabilities of
// the reliable ones. The paper has no ground truth ("it is extremely hard,
// if not impossible, to get the ground-truth reliability", §4.2.2) — this
// module gives the test suite one: samplers and oracles are validated
// against exact values.
#pragma once

#include <cstddef>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "faults/component_registry.hpp"
#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"

namespace recloud {

/// Maximum number of fallible components exact_reliability accepts
/// (2^24 combinations ~ a second of work).
inline constexpr std::size_t exact_reliability_max_components = 24;

/// Exact reliability of `plan` for `app`: the total probability mass of
/// component failure combinations in which the plan is reliable.
/// Enumerates all 2^m subsets of the m components with probability > 0;
/// throws std::invalid_argument if m exceeds the limit above.
/// `forest` may be nullptr.
[[nodiscard]] double exact_reliability(const component_registry& registry,
                                       const fault_tree_forest* forest,
                                       reachability_oracle& oracle,
                                       const application& app,
                                       const deployment_plan& plan);

}  // namespace recloud
