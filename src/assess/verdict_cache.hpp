// Round-verdict memoization for the route-and-check hot loop.
//
// A round's verdict ("is the plan reliable under this failed set?") is a
// pure function of the RAW sampled failed set restricted to the plan's
// *support*: the components whose failure can possibly influence routing,
// fault-tree reasoning, or the requirement check. Everything else — hosts
// no instance is placed on and that no packet can transit — is noise the
// sampler happens to produce. With realistic failure probabilities
// (10^-3..10^-5) the overwhelming majority of rounds therefore carry an
// empty or previously-seen support-filtered failed set, and the full BFS
// flood + requirement fixpoint can be replaced by a hash probe.
//
// Three layers:
//   1. empty-round fast path — the all-alive verdict is computed once per
//      (application, plan) binding and returned without touching the
//      oracle;
//   2. support filtering — sampled failures outside the support are
//      dropped from the cache key, collapsing many distinct raw rounds
//      into one signature;
//   3. signature -> verdict table — open addressing over an FNV-1a hash of
//      the sorted filtered set, with the EXACT key stored alongside (hash
//      collisions are compared away, so cache-on is provably
//      verdict-identical to cache-off), bounded size with an epoch-based
//      wholesale reset, and hit/miss/evict counters.
//
// Thread-safety: none. Each assessment worker owns its own verdict_cache
// (the immutable verdict_support may be shared); verdicts are pure, so
// per-worker caches cannot perturb assessment_stats for any worker count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "app/requirement_eval.hpp"
#include "faults/fault_tree.hpp"
#include "routing/oracle.hpp"
#include "topology/graph.hpp"
#include "topology/links.hpp"

namespace recloud {

/// The plan-independent part of the support set, computed once per
/// infrastructure and shared (immutably) by every worker's cache:
///   * every non-host routing node (switches and the external node — any
///     of them can sit on a path between plan hosts);
///   * multi-homed hosts (degree > 1: BCube/DCell servers relay traffic;
///     a degree-1 host is a leaf no path can transit);
///   * every registered link component;
///   * the fault-tree dependencies (leaves) of all of the above.
/// Plan hosts and THEIR fault-tree dependencies are added per binding by
/// verdict_cache::bind.
///
/// Soundness requires `links` to name every link attachment the routing
/// oracle consults (recloud_context::links); a link the oracle checks but
/// the support omits would let a link failure be filtered out of the key.
class verdict_support {
public:
    verdict_support(const built_topology& topo, std::size_t component_count,
                    const fault_tree_forest* forest,
                    const link_attachment* links);

    [[nodiscard]] std::size_t component_count() const noexcept {
        return member_.size();
    }
    [[nodiscard]] bool contains_static(component_id id) const noexcept {
        return member_[id] != 0;
    }
    [[nodiscard]] std::size_t static_size() const noexcept { return size_; }
    [[nodiscard]] const fault_tree_forest* forest() const noexcept {
        return forest_;
    }
    [[nodiscard]] std::span<const std::uint8_t> membership() const noexcept {
        return member_;
    }

    /// Attachment components of a host: its adjacent routing nodes, the
    /// link components of its incident edges, and the fault-tree
    /// dependencies of all of those — everything besides the host itself
    /// whose failure can detach the host's instances from the network. The
    /// cross-plan delta for SEMI verdict retention is exactly this set for
    /// every changed host (see round_class). Empty for non-host nodes.
    [[nodiscard]] std::span<const component_id> host_attachment(
        node_id host) const noexcept {
        if (host + 1 >= attach_begin_.size()) {
            return {};
        }
        return {attach_pool_.data() + attach_begin_[host],
                attach_begin_[host + 1] - attach_begin_[host]};
    }

private:
    const fault_tree_forest* forest_;
    std::vector<std::uint8_t> member_;  ///< 1 iff statically in the support
    std::size_t size_ = 0;
    std::vector<std::uint32_t> attach_begin_;  ///< by node id, CSR offsets
    std::vector<component_id> attach_pool_;
};

/// Observability counters for one cache (or an aggregate over workers).
struct verdict_cache_stats {
    std::uint64_t rounds = 0;      ///< lookups (rounds routed through the cache)
    std::uint64_t empty_hits = 0;  ///< empty-filtered fast-path returns
    std::uint64_t hits = 0;        ///< signature-table hits
    std::uint64_t misses = 0;      ///< full route-and-check runs
    std::uint64_t insertions = 0;  ///< entries stored
    std::uint64_t evictions = 0;   ///< wholesale table resets (capacity)
    std::uint64_t rebinds = 0;     ///< plan/application changes (warm + cold)
    std::uint64_t warm_rebinds = 0;  ///< cross-plan rebinds that kept entries
    std::uint64_t cold_rebinds = 0;  ///< rebinds that epoch-wiped the table
    std::uint64_t cross_plan_hits = 0;  ///< hits served by retained entries
    std::uint64_t retained_entries = 0;  ///< entries kept across warm rebinds
    std::uint64_t support_size = 0;  ///< of the current binding (not summed)

    /// Rounds answered without route-and-check.
    [[nodiscard]] std::uint64_t saved_rounds() const noexcept {
        return empty_hits + hits;
    }
    [[nodiscard]] double hit_rate() const noexcept {
        return rounds == 0 ? 0.0
                           : static_cast<double>(saved_rounds()) /
                                 static_cast<double>(rounds);
    }

    /// Sums counters; support_size is carried over (workers share a plan).
    void accumulate(const verdict_cache_stats& other) noexcept {
        rounds += other.rounds;
        empty_hits += other.empty_hits;
        hits += other.hits;
        misses += other.misses;
        insertions += other.insertions;
        evictions += other.evictions;
        rebinds += other.rebinds;
        warm_rebinds += other.warm_rebinds;
        cold_rebinds += other.cold_rebinds;
        cross_plan_hits += other.cross_plan_hits;
        retained_entries += other.retained_entries;
        support_size = other.support_size;
    }
};

/// How a backend should build its per-worker caches. `support` must be
/// non-null (and outlive the backend) when `enabled`.
struct verdict_cache_options {
    bool enabled = false;
    std::size_t max_entries = 1 << 16;  ///< per worker, before a reset
    const verdict_support* support = nullptr;
    /// Cross-plan incremental mode: rebinding to a different plan of the
    /// same application keeps every CLEAN entry whose key is disjoint from
    /// the swap delta instead of epoch-wiping the table (see bind()).
    bool cross_plan = false;
};

class verdict_cache {
public:
    explicit verdict_cache(const verdict_support& support,
                           std::size_t max_entries = 1 << 16,
                           bool cross_plan = false);

    /// Binds the cache to an (application, plan) pair. Rebinding the same
    /// pair keeps every entry warm; an application-shape change resets the
    /// table and the empty-round verdict and recomputes the plan part of
    /// the support.
    ///
    /// A PLAN change behaves two ways. Default: epoch-wipe (cold rebind).
    /// In cross-plan mode the cache self-diffs the old and new host lists
    /// slot by slot — candidate plans under simulated annealing differ in
    /// exactly one slot, but the diff is exact for any change, including
    /// rejected-candidate sequences and permutations — and computes the
    /// swap delta: every host that moved in or out of a slot plus its
    /// fault-tree dependencies. It then retains each entry that (a) was
    /// stored from a CLEAN round (oracle::classify_round — the verdict is a
    /// pure function of slot-host aliveness) and (b) has a key disjoint
    /// from the delta, so the aliveness vector the verdict encodes is
    /// unchanged. SEMI rounds (verdict a pure function of slot-wise
    /// attachment-effective aliveness — e.g. only edge switches failed) are
    /// retained under the stronger condition that the key also misses every
    /// attachment component of a changed host (verdict_support::
    /// host_attachment). Exact-key safety is preserved: retained entries only
    /// ever answer lookups whose support-filtered key matches verbatim, so
    /// a wrong verdict can never be served — at worst a retainable entry is
    /// dropped and re-judged (warm rebind falls back to the epoch-wipe when
    /// nothing survives or the key arena outgrows its soft limit).
    void bind(const application& app, const deployment_plan& plan);

    struct lookup_result {
        bool hit = false;
        bool verdict = false;
    };

    /// Filters `failed` against the support and probes the table. On a miss
    /// the caller must route-and-check and hand the verdict to store()
    /// before the next lookup. Requires bind().
    [[nodiscard]] lookup_result lookup(std::span<const component_id> failed);

    /// Completes the miss of the immediately preceding lookup(). `cls`
    /// marks how the oracle classified the round: `clean` entries survive
    /// plan swaps whose core delta misses their key, `semi` entries
    /// additionally require the changed hosts' attachment components to
    /// miss it (see round_class). Only consulted in cross-plan mode;
    /// `unclean` is always safe.
    void store(bool verdict, round_class cls = round_class::unclean);

    /// Whether cross-plan retention is on — callers use this to skip the
    /// oracle's cleanliness classification entirely when it is not.
    [[nodiscard]] bool cross_plan() const noexcept { return cross_plan_; }

    [[nodiscard]] const verdict_cache_stats& stats() const noexcept {
        return stats_;
    }
    [[nodiscard]] std::size_t support_size() const noexcept {
        return support_size_;
    }
    /// Membership of the current binding (static support + plan additions).
    [[nodiscard]] bool in_support(component_id id) const noexcept {
        return member_[id] != 0;
    }
    /// The components the current bind() added beyond the static support
    /// (plan hosts + their fault-tree dependencies), deduplicated. Exactly
    /// the ids for which in_support() can differ between two bindings of
    /// the same application shape — the journal replay probes only these.
    [[nodiscard]] std::span<const component_id> bound_support_additions()
        const noexcept {
        return bound_additions_;
    }
    [[nodiscard]] std::size_t entries() const noexcept { return size_; }
    /// The support-filtered sorted key of the last lookup (test hook).
    [[nodiscard]] std::span<const component_id> last_key() const noexcept {
        return filtered_;
    }

private:
    struct slot {
        std::uint64_t hash = 0;
        std::uint32_t epoch = 0;  ///< generation that wrote the slot
        std::uint32_t key_begin = 0;
        std::uint32_t key_length = 0;
        std::uint8_t verdict = 0;
        std::uint8_t flags = 0;  ///< slot_dead | slot_clean | slot_semi | ...
    };
    static constexpr std::uint8_t slot_dead = 1;      ///< tombstone
    static constexpr std::uint8_t slot_clean = 2;     ///< clean round
    static constexpr std::uint8_t slot_retained = 4;  ///< survived a rebind
    static constexpr std::uint8_t slot_semi = 8;      ///< semi-clean round

    // Swap-delta kill levels (values of delta_member_, bitwise): a core
    // delta component (changed host or a dependency of one) invalidates
    // clean AND semi entries; an attachment component of a changed host
    // invalidates semi entries only — clean rounds have no attachment
    // failures at all, so their verdicts cannot depend on those.
    static constexpr std::uint8_t delta_kills_semi = 1;
    static constexpr std::uint8_t delta_kills_clean = 2;

    void reset_table() noexcept;
    /// Warm (cross-plan) rebind: tombstones every entry whose key meets the
    /// swap delta or whose round was not clean; survivors stay probeable.
    void warm_rebind(const deployment_plan& plan);
    [[nodiscard]] std::size_t probe(std::uint64_t hash,
                                    lookup_result* found) const;
    /// Key-arena growth bound across warm rebinds (retained keys pin arena
    /// prefixes, tombstoned ones leave garbage); crossing it downgrades the
    /// next rebind to a cold wipe, which clears the arena.
    [[nodiscard]] std::size_t key_pool_soft_limit() const noexcept {
        return std::max<std::size_t>(max_entries_ * 16, 1024);
    }

    const verdict_support* support_;
    std::size_t max_entries_;
    bool cross_plan_ = false;
    std::size_t mask_;  ///< capacity - 1 (power of two)
    std::vector<slot> slots_;
    std::vector<component_id> key_pool_;  ///< arena for stored keys
    /// Indices of the live slots, exactly one entry per live slot: store()
    /// is the only transition to live, warm_rebind() the only one to dead,
    /// reset_table() clears everything — so a rebind sweeps O(live) slots
    /// instead of the whole table.
    std::vector<std::uint32_t> live_slots_;

    std::vector<std::uint8_t> member_;  ///< static support + plan additions
    std::size_t support_size_ = 0;
    std::vector<component_id> bound_additions_;  ///< see accessor

    // Swap-delta scratch for warm rebinds (component_count bytes, cleared
    // via delta_list_ after every use).
    std::vector<std::uint8_t> delta_member_;
    std::vector<component_id> delta_list_;

    // Binding identity.
    bool bound_ = false;
    std::vector<node_id> bound_hosts_;
    std::uint64_t bound_app_fingerprint_ = 0;

    std::uint32_t epoch_ = 1;  ///< current table generation
    std::size_t size_ = 0;     ///< live entries
    std::size_t dead_count_ = 0;  ///< tombstones (live + dead bounds probes)

    bool empty_valid_ = false;
    bool empty_verdict_ = false;
    round_class empty_class_ = round_class::unclean;

    // State carried from a missing lookup() to its store().
    std::vector<component_id> filtered_;
    std::uint64_t pending_hash_ = 0;
    std::size_t pending_slot_ = 0;
    bool pending_empty_ = false;
    bool pending_store_ = false;

    verdict_cache_stats stats_;
};

/// Structural fingerprint of an application (replica counts + requirement
/// shape). The cache keys binding identity on it; the assessor's round
/// journal reuses the same identity.
[[nodiscard]] std::uint64_t application_fingerprint(
    const application& app) noexcept;

/// Judges one round through an optional cache: on a hit the oracle is never
/// touched; on a miss (or without a cache) the usual round setup +
/// route-and-check runs, passing the plan hosts as the oracle's query-target
/// hint (bfs_reachability uses it to stop flooding early). In cross-plan
/// mode a miss additionally asks the oracle to classify the round's
/// cleanliness so the stored verdict can survive future plan swaps. The
/// single seam every backend's round loop goes through.
inline bool cached_reliable_in_round(verdict_cache* cache,
                                     std::span<const component_id> failed,
                                     round_state& rs,
                                     reachability_oracle& oracle,
                                     const deployment_plan& plan,
                                     requirement_evaluator& evaluator) {
    if (cache != nullptr) {
        const verdict_cache::lookup_result cached = cache->lookup(failed);
        if (cached.hit) {
            return cached.verdict;
        }
    }
    rs.begin_round(failed);
    oracle.begin_round(rs, std::span<const node_id>{plan.hosts});
    const bool verdict = evaluator.reliable_in_round(oracle, rs);
    if (cache != nullptr) {
        const round_class cls = cache->cross_plan()
                                    ? oracle.classify_round(failed)
                                    : round_class::unclean;
        cache->store(verdict, cls);
    }
    return verdict;
}

}  // namespace recloud
