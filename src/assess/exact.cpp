#include "assess/exact.hpp"

#include <stdexcept>
#include <vector>

#include "app/requirement_eval.hpp"
#include "faults/round_state.hpp"

namespace recloud {

double exact_reliability(const component_registry& registry,
                         const fault_tree_forest* forest,
                         reachability_oracle& oracle, const application& app,
                         const deployment_plan& plan) {
    std::vector<component_id> fallible;
    for (component_id id = 0; id < registry.size(); ++id) {
        if (registry.probability(id) > 0.0) {
            fallible.push_back(id);
        }
    }
    if (fallible.size() > exact_reliability_max_components) {
        throw std::invalid_argument{
            "exact_reliability: too many fallible components to enumerate"};
    }

    round_state rs{registry.size(), forest};
    requirement_evaluator evaluator{app, plan};

    double reliability = 0.0;
    const std::uint64_t combinations = std::uint64_t{1} << fallible.size();
    std::vector<component_id> failed;
    for (std::uint64_t mask = 0; mask < combinations; ++mask) {
        failed.clear();
        double probability = 1.0;
        for (std::size_t i = 0; i < fallible.size(); ++i) {
            const double p = registry.probability(fallible[i]);
            if (mask & (std::uint64_t{1} << i)) {
                failed.push_back(fallible[i]);
                probability *= p;
            } else {
                probability *= 1.0 - p;
            }
        }
        rs.begin_round(failed);
        oracle.begin_round(rs);
        if (evaluator.reliable_in_round(oracle, rs)) {
            reliability += probability;
        }
    }
    return reliability;
}

}  // namespace recloud
