#include "assess/downtime.hpp"

#include "util/stats.hpp"

namespace recloud {

double annual_downtime_hours(double reliability) noexcept {
    return (1.0 - clamp(reliability, 0.0, 1.0)) * hours_per_year;
}

double reliability_for_downtime(double downtime_hours) noexcept {
    return 1.0 - clamp(downtime_hours, 0.0, hours_per_year) / hours_per_year;
}

}  // namespace recloud
