// Reliability <-> annual downtime conversions.
//
// The paper quotes both forms ("99.62% reliability, i.e. 33.3 hours
// downtime per year") and notes that a developer may specify acceptable
// annual downtime which "can then be translated to R_desired" (§2.2).
#pragma once

namespace recloud {

inline constexpr double hours_per_year = 365.0 * 24.0;

/// Annual downtime hours implied by a reliability score.
[[nodiscard]] double annual_downtime_hours(double reliability) noexcept;

/// The reliability score required to stay within the given annual downtime.
[[nodiscard]] double reliability_for_downtime(double downtime_hours) noexcept;

}  // namespace recloud
