// Reliability assessment of a deployment plan (paper §3.2): sample failure
// states for X rounds, run route-and-check per round, and aggregate the
// result list into R, V and CIW95 (Eqs. 1-3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "app/requirement_eval.hpp"
#include "assess/verdict_cache.hpp"
#include "faults/round_state.hpp"
#include "routing/oracle.hpp"
#include "sampling/result_stats.hpp"
#include "sampling/sampler.hpp"

namespace recloud {

/// Runs `rounds` sampling + route-and-check rounds for one plan.
/// `rs` carries the fault-tree forest; `oracle` must match the topology the
/// plan deploys into. The sampler continues its stream (it is NOT reset), so
/// consecutive assessments use fresh randomness. `cache` may be nullptr;
/// when given it is bound to (app, plan) here and memoizes round verdicts —
/// the returned stats are bit-identical either way.
[[nodiscard]] assessment_stats assess_deployment(failure_sampler& sampler,
                                                 round_state& rs,
                                                 reachability_oracle& oracle,
                                                 const application& app,
                                                 const deployment_plan& plan,
                                                 std::size_t rounds,
                                                 verdict_cache* cache = nullptr);

/// Adaptive-precision assessment: keeps sampling until the 95% confidence
/// interval width (Eq. 3) drops to `target_ciw` or `max_rounds` is reached.
/// Useful when a developer wants a guaranteed error bound rather than a
/// fixed round budget (§4.2.4 motivates exactly this: "some application
/// developers may want even higher accuracy").
struct adaptive_assess_options {
    double target_ciw = 1e-3;
    std::size_t initial_rounds = 1000;
    std::size_t max_rounds = 1'000'000;
};

[[nodiscard]] assessment_stats assess_until_ciw(failure_sampler& sampler,
                                                round_state& rs,
                                                reachability_oracle& oracle,
                                                const application& app,
                                                const deployment_plan& plan,
                                                const adaptive_assess_options& options,
                                                verdict_cache* cache = nullptr);

/// Reusable assessment context: owns the scratch state (round_state,
/// evaluator caches, optional verdict cache) so the annealing search can
/// assess hundreds of plans without reallocating. Not thread-safe; create
/// one per thread.
class reliability_assessor {
public:
    /// `forest` may be nullptr (no dependency information, §3.4).
    /// When `cache_options.enabled` and `cache_options.support` are set, a
    /// private verdict cache memoizes round verdicts across the assessor's
    /// lifetime (it survives plan changes via epoch reset, so annealing
    /// re-visits of a plan stay cold but correctness never depends on it).
    reliability_assessor(std::size_t component_count,
                         const fault_tree_forest* forest,
                         reachability_oracle& oracle, failure_sampler& sampler,
                         const verdict_cache_options& cache_options = {});

    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds);

    [[nodiscard]] round_state& state() noexcept { return rs_; }

    /// Cumulative cache counters; nullptr when the cache is disabled.
    [[nodiscard]] const verdict_cache_stats* cache_stats() const noexcept {
        return cache_ ? &cache_->stats() : nullptr;
    }

    /// The owned verdict cache, or nullptr when disabled — for callers that
    /// drive the round loop themselves (serial assess_until_ciw).
    [[nodiscard]] verdict_cache* cache() noexcept {
        return cache_ ? &*cache_ : nullptr;
    }

private:
    round_state rs_;
    reachability_oracle* oracle_;
    failure_sampler* sampler_;
    std::optional<verdict_cache> cache_;
    std::vector<component_id> failed_scratch_;
};

}  // namespace recloud
