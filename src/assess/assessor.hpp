// Reliability assessment of a deployment plan (paper §3.2): sample failure
// states for X rounds, run route-and-check per round, and aggregate the
// result list into R, V and CIW95 (Eqs. 1-3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "app/application.hpp"
#include "app/deployment.hpp"
#include "app/requirement_eval.hpp"
#include "assess/verdict_cache.hpp"
#include "core/run_budget.hpp"
#include "faults/round_state.hpp"
#include "routing/oracle.hpp"
#include "sampling/result_stats.hpp"
#include "sampling/sampler.hpp"

namespace recloud {

/// Runs `rounds` sampling + route-and-check rounds for one plan.
/// `rs` carries the fault-tree forest; `oracle` must match the topology the
/// plan deploys into. The sampler continues its stream (it is NOT reset), so
/// consecutive assessments use fresh randomness. `cache` may be nullptr;
/// when given it is bound to (app, plan) here and memoizes round verdicts —
/// the returned stats are bit-identical either way. `budget` (nullable) is
/// polled every few hundred rounds; when it fires the partial tally is
/// discarded and search_preempted thrown (core/run_budget.hpp).
[[nodiscard]] assessment_stats assess_deployment(failure_sampler& sampler,
                                                 round_state& rs,
                                                 reachability_oracle& oracle,
                                                 const application& app,
                                                 const deployment_plan& plan,
                                                 std::size_t rounds,
                                                 verdict_cache* cache = nullptr,
                                                 const run_budget* budget = nullptr);

/// Adaptive-precision assessment: keeps sampling until the 95% confidence
/// interval width (Eq. 3) drops to `target_ciw` or `max_rounds` is reached.
/// Useful when a developer wants a guaranteed error bound rather than a
/// fixed round budget (§4.2.4 motivates exactly this: "some application
/// developers may want even higher accuracy").
struct adaptive_assess_options {
    double target_ciw = 1e-3;
    std::size_t initial_rounds = 1000;
    std::size_t max_rounds = 1'000'000;
};

[[nodiscard]] assessment_stats assess_until_ciw(failure_sampler& sampler,
                                                round_state& rs,
                                                reachability_oracle& oracle,
                                                const application& app,
                                                const deployment_plan& plan,
                                                const adaptive_assess_options& options,
                                                verdict_cache* cache = nullptr,
                                                const run_budget* budget = nullptr);

/// Reusable assessment context: owns the scratch state (round_state,
/// evaluator caches, optional verdict cache) so the annealing search can
/// assess hundreds of plans without reallocating. Not thread-safe; create
/// one per thread.
class reliability_assessor {
public:
    /// `forest` may be nullptr (no dependency information, §3.4).
    /// When `cache_options.enabled` and `cache_options.support` are set, a
    /// private verdict cache memoizes round verdicts across the assessor's
    /// lifetime (it survives plan changes via epoch reset, so annealing
    /// re-visits of a plan stay cold but correctness never depends on it).
    reliability_assessor(std::size_t component_count,
                         const fault_tree_forest* forest,
                         reachability_oracle& oracle, failure_sampler& sampler,
                         const verdict_cache_options& cache_options = {});

    /// `budget` (nullable) is polled every few hundred rounds of the main
    /// loop and of a journal replay; when it fires, search_preempted
    /// propagates with all internal state safe: a partially-recorded
    /// journal stays invalid, a partially-replayed one stays valid and
    /// unconsumed (no debt was added), and the partial tally is discarded.
    [[nodiscard]] assessment_stats assess(const application& app,
                                          const deployment_plan& plan,
                                          std::size_t rounds,
                                          const run_budget* budget = nullptr);

    /// CRN notification: the owning backend's reset_stream(seed) calls this
    /// right after resetting the sampler. The NEXT assess() then knows it
    /// replays a deterministic stream identified by `seed` and may (a)
    /// record a round journal of that stream or (b) replay a previously
    /// recorded one without touching the sampler at all — the core of
    /// cross-plan incremental assessment. The flag is consumed by one
    /// assess(); un-reset streams never record or replay.
    void note_stream_reset(std::uint64_t seed) noexcept {
        pending_reset_seed_ = seed;
        replay_debt_rounds_ = 0;  // the reset realigned the stream
    }

    /// Drops a pending reset notification — called by any stream consumer
    /// that advances the sampler outside assess() (assess_until_ciw), so a
    /// later assess() cannot mistake the advanced stream for a fresh one.
    void invalidate_stream_reset() noexcept { pending_reset_seed_.reset(); }

    /// A journal replay answers without consuming the sampler stream; the
    /// skipped rounds are tracked as a debt here. Any consumer about to
    /// advance the stream WITHOUT a preceding reset must settle the debt
    /// first (fast-forward the sampler), so stream positions stay
    /// bit-identical to incremental-off no matter how assessments and
    /// resets interleave. A reset clears the debt — it realigns the stream.
    void settle_stream_debt();

    [[nodiscard]] round_state& state() noexcept { return rs_; }

    /// Cumulative cache counters; nullptr when the cache is disabled.
    [[nodiscard]] const verdict_cache_stats* cache_stats() const noexcept {
        return cache_ ? &cache_->stats() : nullptr;
    }

    /// The owned verdict cache, or nullptr when disabled — for callers that
    /// drive the round loop themselves (serial assess_until_ciw).
    [[nodiscard]] verdict_cache* cache() noexcept {
        return cache_ ? &*cache_ : nullptr;
    }

private:
    // --- CRN round journal -------------------------------------------
    // One full pass over a freshly-reset stream records, per round, the
    // support-filtered signature (deduplicated into groups) and an inverted
    // index from each raw component that fell OUTSIDE the support of the
    // recording plan to the rounds it failed in. A later assess() of the
    // SAME stream for a DIFFERENT plan then skips sampling entirely: the
    // new binding's support additions (plan hosts + deps — the only ids
    // whose support membership can differ) probe the index, so finding the
    // dirty rounds costs O(|swap delta|) instead of a scan over every
    // recorded residue. Clean rounds are judged once per group; dirty ones
    // individually with their entered residue merged into the key. Every
    // verdict still flows through cached_reliable_in_round, so the replayed
    // stats are bit-identical to the full pass by the same
    // support-filtering invariant the cache itself rests on.
    struct journal_group {
        std::uint32_t key_begin = 0;
        std::uint32_t key_length = 0;
        std::uint32_t multiplicity = 0;
    };
    struct dirty_round {
        std::uint32_t group = 0;
        std::uint32_t begin = 0;
        std::uint32_t length = 0;
    };

    void begin_journal(std::uint64_t seed, std::uint64_t app_fingerprint,
                       std::size_t rounds);
    void record_round(std::uint32_t round, const verdict_cache& cache);
    /// Replays the journal for `plan`; returns false (without judging
    /// anything) when the dirty fraction is too high — the caller then runs
    /// and re-records a full pass over the freshly-reset stream.
    [[nodiscard]] bool replay_journal(const application& app,
                                      const deployment_plan& plan,
                                      verdict_cache* cache,
                                      requirement_evaluator& evaluator,
                                      const run_budget* budget,
                                      assessment_stats* out);

    round_state rs_;
    reachability_oracle* oracle_;
    failure_sampler* sampler_;
    std::optional<verdict_cache> cache_;
    std::vector<component_id> failed_scratch_;

    std::optional<std::uint64_t> pending_reset_seed_;
    std::uint64_t replay_debt_rounds_ = 0;
    bool journal_valid_ = false;
    std::uint64_t journal_seed_ = 0;
    std::uint64_t journal_app_ = 0;
    std::size_t journal_rounds_ = 0;
    std::vector<component_id> journal_keys_;          ///< group-key arena
    std::vector<journal_group> journal_groups_;
    std::vector<std::uint32_t> journal_round_group_;  ///< per round
    std::unordered_map<component_id, std::vector<std::uint32_t>>
        journal_residue_index_;  ///< off-support component -> its rounds
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        journal_index_;  ///< key hash -> candidate group ids (exact-checked)

    // Replay scratch.
    std::vector<std::pair<std::uint32_t, component_id>> dirty_pairs_;
    std::vector<std::uint32_t> dirty_per_group_;
    std::vector<dirty_round> dirty_rounds_;
    std::vector<component_id> dirty_pool_;
    std::vector<component_id> merged_scratch_;
};

}  // namespace recloud
